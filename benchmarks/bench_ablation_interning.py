"""Ablation D — the path-interning design choice.

DESIGN.md: "π(o) look-ups are O(1) … prefix tests run on small
interned tuples, never on the instance."  This ablation runs Fig. 3's
steered walk twice — once steering on interned pids (the shipped
``meet2``), once steering on raw :class:`Path` tuples
(``meet2_pathcmp``) — over pair workloads on both stores.  Deep stores
amplify the difference: every raw comparison touches O(depth) labels.
"""

from __future__ import annotations

import pytest

from repro.baselines.path_steering import meet2_pathcmp
from repro.bench.report import render_table
from repro.bench.timing import measure
from repro.core.meet_pair import meet2
from repro.datasets.randomtree import random_oid_pairs

from conftest import write_report

PAIR_COUNT = 300


@pytest.fixture(scope="module")
def workloads(dblp_bench_store, multimedia_bench):
    multimedia_store, _planted = multimedia_bench
    return {
        "dblp (shallow, wide)": (
            dblp_bench_store,
            random_oid_pairs(dblp_bench_store, PAIR_COUNT, seed=7),
        ),
        "multimedia (deep)": (
            multimedia_store,
            random_oid_pairs(multimedia_store, PAIR_COUNT, seed=7),
        ),
    }


@pytest.mark.parametrize("dataset", ["dblp (shallow, wide)", "multimedia (deep)"])
def test_interned_pids(benchmark, workloads, dataset):
    store, pairs = workloads[dataset]
    benchmark(lambda: [meet2(store, a, b) for a, b in pairs])


@pytest.mark.parametrize("dataset", ["dblp (shallow, wide)", "multimedia (deep)"])
def test_raw_path_comparison(benchmark, workloads, dataset):
    store, pairs = workloads[dataset]
    benchmark(lambda: [meet2_pathcmp(store, a, b) for a, b in pairs])


def test_ablation_interning_report(benchmark, workloads):
    def sweep():
        rows = []
        for name, (store, pairs) in workloads.items():
            expected = [meet2(store, a, b) for a, b in pairs]
            assert [meet2_pathcmp(store, a, b) for a, b in pairs] == expected
            interned = measure(
                lambda s=store, p=pairs: [meet2(s, a, b) for a, b in p],
                repeats=3,
            )
            raw = measure(
                lambda s=store, p=pairs: [meet2_pathcmp(s, a, b) for a, b in p],
                repeats=3,
            )
            rows.append(
                [
                    name,
                    f"{interned.median_ms:.2f}",
                    f"{raw.median_ms:.2f}",
                    f"{raw.median_ms / interned.median_ms:.2f}×",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["store", "interned pids ms", "raw paths ms", "slowdown"],
        rows,
        title=(
            "Ablation D — steering on interned pids vs raw path tuples "
            f"({PAIR_COUNT} pairs)"
        ),
    )
    write_report("ablation_interning", table)
