"""Figure 6: combining meet and full-text search, time vs distance.

Paper setup: a multimedia feature-detector database; a typical
two-term query; x-axis = distance (edges) between the two hits,
y-axis = elapsed time; two lines: "fulltext only" and "fulltext and
meet".  The finding: total time is dominated by the full-text search
(1207 ms on their box) while the meet adds ~2 ms and "scales well with
respect to distance" — two nearly parallel lines, a whisker apart.

Here the two marker terms of each planted distance are searched with
the scan path (the paper's full-text search is a string scan — that is
what made it expensive) and the meet is computed pairwise.  The
benchmark rows regenerate the figure's two series; the summary report
prints them plus an ASCII rendering.
"""

from __future__ import annotations

import pytest

from repro.bench.report import Series, render_ascii_plot, render_table
from repro.bench.timing import measure
from repro.core.meet_pair import meet2_traced

from conftest import FIGURE6_DISTANCES, write_report


def fulltext_hits(store, engine, term):
    return sorted(engine.search.scan(term).oids())


@pytest.mark.parametrize("distance", FIGURE6_DISTANCES)
def test_fulltext_only(benchmark, multimedia_bench, multimedia_bench_engine, distance):
    """One Figure 6 point of the 'fulltext only' line."""
    store, planted = multimedia_bench
    terma, termb = planted[distance]
    engine = multimedia_bench_engine

    def run():
        fulltext_hits(store, engine, terma)
        fulltext_hits(store, engine, termb)

    benchmark(run)


@pytest.mark.parametrize("distance", FIGURE6_DISTANCES)
def test_fulltext_and_meet(
    benchmark, multimedia_bench, multimedia_bench_engine, distance
):
    """One Figure 6 point of the 'fulltext and meet' line."""
    store, planted = multimedia_bench
    terma, termb = planted[distance]
    engine = multimedia_bench_engine

    def run():
        hits_a = fulltext_hits(store, engine, terma)
        hits_b = fulltext_hits(store, engine, termb)
        return meet2_traced(store, hits_a[0], hits_b[0])

    result = benchmark(run)
    assert result.joins == distance


def test_figure6_report(benchmark, multimedia_bench, multimedia_bench_engine):
    """Regenerate the full figure: both series over all distances."""
    store, planted = multimedia_bench
    engine = multimedia_bench_engine

    def sweep():
        rows = []
        fulltext_series = Series("fulltext only")
        combined_series = Series("fulltext and meet")
        for distance in FIGURE6_DISTANCES:
            terma, termb = planted[distance]
            fulltext = measure(
                lambda: (
                    fulltext_hits(store, engine, terma),
                    fulltext_hits(store, engine, termb),
                ),
                repeats=3,
            )

            def combined():
                hits_a = fulltext_hits(store, engine, terma)
                hits_b = fulltext_hits(store, engine, termb)
                meet2_traced(store, hits_a[0], hits_b[0])

            total = measure(combined, repeats=3)
            meet_only = measure(
                lambda ha=fulltext_hits(store, engine, terma),
                hb=fulltext_hits(store, engine, termb): meet2_traced(
                    store, ha[0], hb[0]
                ),
                repeats=5,
            )
            fulltext_series.add(distance, fulltext.median_ms)
            combined_series.add(distance, total.median_ms)
            rows.append(
                [
                    distance,
                    f"{fulltext.median_ms:.3f}",
                    f"{total.median_ms:.3f}",
                    f"{meet_only.median_ms:.4f}",
                ]
            )
        return rows, fulltext_series, combined_series

    rows, fulltext_series, combined_series = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )

    table = render_table(
        ["distance", "fulltext ms", "fulltext+meet ms", "meet alone ms"],
        rows,
        title="Figure 6 — combining meet and fulltext search",
    )
    plot = render_ascii_plot(
        [fulltext_series, combined_series],
        title="Figure 6 (elapsed ms vs distance in edges)",
        x_label="distance (edges)",
        y_label="elapsed ms",
    )
    write_report("figure6", table + "\n\n" + plot)

    # Shape assertions (the paper's qualitative findings):
    # 1. total time is dominated by the full-text search …
    for (_d, ft, total, meet) in rows:
        assert float(meet) < float(ft)
    # 2. … and the meet stays cheap across the whole distance range.
    meets = [float(r[3]) for r in rows]
    fulltexts = [float(r[1]) for r in rows]
    assert max(meets) < 0.25 * (sum(fulltexts) / len(fulltexts))
