"""Shared fixtures and reporting helpers for the benchmark suite.

Datasets are bench-scale (larger than the unit-test fixtures, still
laptop-friendly).  Every figure/table bench also renders its series to
``benchmarks/out/<name>.txt`` so the regenerated experiment artefacts
survive the run (EXPERIMENTS.md quotes them).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import NearestConceptEngine
from repro.datasets import (
    DblpConfig,
    MultimediaConfig,
    dblp_document,
    multimedia_with_markers,
)
from repro.monet import monet_transform

OUT_DIR = Path(__file__).parent / "out"

#: Figure 6 sweep: the paper's x-axis is 0..20 edges.
FIGURE6_DISTANCES = list(range(0, 21, 2))

#: Figure 7 year intervals, widening 1999 back to 1984.
FIGURE7_FIRST_YEARS = [1999, 1998, 1996, 1994, 1992, 1990, 1988, 1986, 1985, 1984]


def write_report(name: str, text: str) -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[report written to {path}]")
    return path


@pytest.fixture(scope="session")
def dblp_bench_store():
    """~75k-node synthetic DBLP: 75 papers per instalment, 16 years."""
    config = DblpConfig(papers_per_proceedings=75, articles_per_year=10)
    store = monet_transform(dblp_document(config))
    return store


@pytest.fixture(scope="session")
def dblp_bench_engine(dblp_bench_store):
    return NearestConceptEngine(dblp_bench_store, case_sensitive=True)


@pytest.fixture(scope="session")
def multimedia_bench():
    """Multimedia corpus with marker pairs planted at 0..20 edges."""
    doc, planted = multimedia_with_markers(
        FIGURE6_DISTANCES, MultimediaConfig(items=120, seed=1999)
    )
    store = monet_transform(doc)
    return store, planted


@pytest.fixture(scope="session")
def multimedia_bench_engine(multimedia_bench):
    store, _planted = multimedia_bench
    return NearestConceptEngine(store)
