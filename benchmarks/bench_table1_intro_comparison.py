"""Table I: the intro's path-expression answer vs the meet answer.

§1 of the paper shows the regular-path-expression query returning four
rows (article, institute, bibliography, bibliography) on the Figure 1
document where only the article row is wanted; §3.2 re-runs it with
``meet`` and gets exactly the article.  This bench regenerates the
comparison on Figure 1 and then scales the document up to show the
"combinatorial explosion of the result size" the baseline suffers —
the meet output stays flat.
"""

from __future__ import annotations

import pytest

from repro.baselines.pathexpr_baseline import witness_pair_answers
from repro.bench.report import render_table
from repro.core import NearestConceptEngine
from repro.datamodel.builder import DocumentBuilder
from repro.datasets import figure1_document
from repro.fulltext import SearchEngine
from repro.monet import monet_transform

from conftest import write_report


def scaled_bibliography(articles: int):
    """Figure 1's shape with `articles` Bit articles, all year 1999."""
    builder = DocumentBuilder("bibliography")
    builder.down("institute")
    for index in range(articles):
        builder.down("article", key=f"K{index}")
        builder.down("author")
        builder.leaf("firstname", "Ben")
        builder.leaf("lastname", "Bit")
        builder.up()
        builder.leaf("title", f"Paper number {index}")
        builder.leaf("year", "1999")
        builder.up()
    builder.up()
    return builder.build(first_oid=1)


@pytest.fixture(scope="module")
def figure1_setup():
    store = monet_transform(figure1_document())
    return store, SearchEngine(store), NearestConceptEngine(store)


def test_baseline_answer(benchmark, figure1_setup):
    store, search, _engine = figure1_setup
    rows = benchmark(lambda: witness_pair_answers(store, search, "Bit", "1999"))
    assert len(rows) == 5


def test_meet_answer(benchmark, figure1_setup):
    _store, _search, engine = figure1_setup
    concepts = benchmark(lambda: engine.nearest_concepts("Bit", "1999"))
    assert len(concepts) == 1
    assert concepts[0].tag == "article"


@pytest.mark.parametrize("articles", [2, 8, 32, 128])
def test_baseline_explosion(benchmark, articles):
    """Baseline rows grow ~quadratically with matching articles."""
    store = monet_transform(scaled_bibliography(articles))
    search = SearchEngine(store)
    rows = benchmark(lambda: witness_pair_answers(store, search, "Bit", "1999"))
    assert len(rows) >= articles * articles  # every witness pair answers


@pytest.mark.parametrize("articles", [2, 8, 32, 128])
def test_meet_stays_minimal(benchmark, articles):
    """Meet answers grow linearly: one concept per article."""
    store = monet_transform(scaled_bibliography(articles))
    engine = NearestConceptEngine(store)
    concepts = benchmark(lambda: engine.nearest_concepts("Bit", "1999"))
    assert len(concepts) == articles
    assert all(c.tag == "article" for c in concepts)


def test_table1_report(benchmark, figure1_setup):
    store, search, engine = figure1_setup

    def build():
        rows = []
        baseline = witness_pair_answers(store, search, "Bit", "1999")
        meets = engine.nearest_concepts("Bit", "1999")
        rows.append(
            [
                "figure-1 document",
                len(baseline),
                "article, institute×2, bibliography×2",
                len(meets),
                "article",
            ]
        )
        for articles in (8, 64):
            big_store = monet_transform(scaled_bibliography(articles))
            big_search = SearchEngine(big_store)
            big_engine = NearestConceptEngine(big_store)
            big_baseline = witness_pair_answers(
                big_store, big_search, "Bit", "1999"
            )
            big_meets = big_engine.nearest_concepts("Bit", "1999")
            rows.append(
                [
                    f"scaled ({articles} articles)",
                    len(big_baseline),
                    "(ancestor closure per witness pair)",
                    len(big_meets),
                    f"{articles} articles",
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = render_table(
        ["document", "baseline rows", "baseline content", "meet rows", "meet content"],
        rows,
        title=(
            "Table I — regular path expressions (intro, §1) vs the meet "
            "query (§3.2)\n(paper prints 4 baseline rows on Figure 1; our "
            "exact witness-pair closure has 5 — same redundancy shape)"
        ),
    )
    write_report("table1", table)

    # Shape: baseline strictly dominates the meet everywhere.
    for row in rows:
        assert row[1] > row[3]
