#!/usr/bin/env python
"""Bench: ``SteeredBackend`` vs ``IndexedBackend`` across workloads.

Runnable directly (CI smoke: ``python benchmarks/bench_backends.py
--quick``); no pytest required.  Two datasets bracket the trade-off:

* **random** — the largest dataset the suite materializes: a deep
  random tree (tens of thousands of nodes, ~100k distinct paths).
  Per-query steered walks pay O(depth) per hit and the schema roll-up
  scans the huge path summary per query; the Euler-RMQ index answers
  in O(1) per pair / O(m log m) per roll-up.  **Indexed wins.**
* **dblp** — the paper's §5 corpus scaled up: wide but shallow
  (depth ≈ 6) with a ~70-entry path summary.  This is the regime the
  paper designed for: steered walks are already near-optimal, so the
  index only pays off on the pairwise batch.  The bench keeps this
  dataset honest rather than cherry-picking.

Workloads per dataset:

* ``build``       — one-off Euler-RMQ index construction cost;
* ``meet_many``   — batched pairwise meets over uniform OID pairs
  (the ranking hot path: thousands of hit-pairs, one index);
* ``nc_batch``    — full ``nearest_concepts_batch`` pipelines (search
  → roll-up → restrict → rank) over two-term queries.

Output: a fixed-width table (also written to
``benchmarks/out/bench_backends.txt``) with per-backend wall times and
the indexed-over-steered speedup, plus the machine-readable
``BENCH_backends.json`` trajectory artefact (same envelope as
``bench_query_serving.py``; override the path with ``--json``).
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path
from typing import Callable, List, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.report import render_table, write_json_report
from repro.core.backends import IndexedBackend, SteeredBackend
from repro.core.engine import NearestConceptEngine
from repro.core.lca_index import LcaIndex, clear_lca_index_cache
from repro.datasets import DblpConfig, dblp_document
from repro.datasets.randomtree import random_document, random_oid_pairs
from repro.datasets.textpool import TECH_NOUNS
from repro.monet.transform import monet_transform

OUT_PATH = Path(__file__).parent / "out" / "bench_backends.txt"
JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_backends.json"


def _time(task: Callable[[], object]) -> float:
    start = time.perf_counter()
    task()
    return time.perf_counter() - start


def _best_of(task: Callable[[], object], repeat: int) -> float:
    return min(_time(task) for _ in range(repeat))


def _random_queries(
    words: Sequence[str], count: int, seed: int = 0
) -> List[Tuple[str, str]]:
    rng = random.Random(seed)
    return [tuple(rng.sample(list(words), 2)) for _ in range(count)]


def bench_dataset(
    name: str,
    store,
    queries: List[Tuple[str, str]],
    pair_count: int,
    repeat: int,
    case_sensitive: bool = False,
) -> List[dict]:
    rows: List[dict] = []
    pairs = random_oid_pairs(store, pair_count, seed=1)

    build = _best_of(lambda: LcaIndex(store), repeat)
    rows.append(
        {
            "dataset": name,
            "workload": "build",
            "indexed_seconds": round(build, 6),
        }
    )

    clear_lca_index_cache()
    steered = SteeredBackend(store)
    indexed = IndexedBackend(store)
    indexed.index  # build once outside the timed region (cached after)

    steered_time = _best_of(lambda: steered.meet_many(pairs), repeat)
    indexed_time = _best_of(lambda: indexed.meet_many(pairs), repeat)
    rows.append(
        {
            "dataset": name,
            "workload": f"meet_many[{pair_count}]",
            "steered_seconds": round(steered_time, 6),
            "indexed_seconds": round(indexed_time, 6),
            "speedup": round(steered_time / indexed_time, 2),
        }
    )

    batch_times = {}
    for backend_name in ("steered", "indexed"):
        engine = NearestConceptEngine(
            store, case_sensitive=case_sensitive, backend=backend_name
        )
        engine.term_hits(queries[0][0])  # warm the full-text index
        batch_times[backend_name] = _best_of(
            lambda: engine.nearest_concepts_batch(queries, limit=5), repeat
        )
    rows.append(
        {
            "dataset": name,
            "workload": f"nc_batch[{len(queries)}]",
            "steered_seconds": round(batch_times["steered"], 6),
            "indexed_seconds": round(batch_times["indexed"], 6),
            "speedup": round(batch_times["steered"] / batch_times["indexed"], 2),
        }
    )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: tiny sizes, 1 repeat"
    )
    parser.add_argument("--nodes", type=int, default=60_000,
                        help="random-tree size (the largest dataset)")
    parser.add_argument("--pairs", type=int, default=20_000)
    parser.add_argument("--queries", type=int, default=150)
    parser.add_argument("--repeat", type=int, default=2)
    parser.add_argument("--json", type=Path, default=JSON_PATH, metavar="PATH",
                        help=f"JSON artefact path (default: {JSON_PATH.name})")
    args = parser.parse_args(argv)

    if args.quick:
        args.nodes, args.pairs, args.queries, args.repeat = 3_000, 2_000, 20, 1

    rows: List[dict] = []

    random_store = monet_transform(
        random_document(42, nodes=args.nodes, max_children=3)
    )
    print(
        f"random: {random_store.node_count} nodes, "
        f"{len(random_store.summary) - 1} paths", file=sys.stderr
    )
    rows += bench_dataset(
        "random",
        random_store,
        _random_queries(list(TECH_NOUNS)[:12], args.queries),
        args.pairs,
        args.repeat,
    )

    dblp_config = (
        DblpConfig(papers_per_proceedings=8, articles_per_year=4)
        if args.quick
        else DblpConfig(papers_per_proceedings=60, articles_per_year=40)
    )
    dblp_store = monet_transform(dblp_document(dblp_config))
    print(f"dblp: {dblp_store.node_count} nodes", file=sys.stderr)
    years = [str(year) for year in dblp_config.years()]
    venues = ["ICDE", "VLDB", "SIGMOD"]
    rng = random.Random(3)
    dblp_queries = [
        (rng.choice(venues), rng.choice(years)) for _ in range(args.queries)
    ]
    rows += bench_dataset(
        "dblp", dblp_store, dblp_queries, args.pairs, args.repeat,
        case_sensitive=True,
    )

    def _cell(row: dict, field: str, fmt: str) -> str:
        value = row.get(field)
        return "-" if value is None else fmt.format(value)

    table = render_table(
        ["dataset", "workload", "steered[s]", "indexed[s]", "speedup"],
        [
            [
                row["dataset"],
                row["workload"],
                _cell(row, "steered_seconds", "{:.3f}"),
                _cell(row, "indexed_seconds", "{:.3f}"),
                _cell(row, "speedup", "{:.2f}x"),
            ]
            for row in rows
        ],
        title="meet backends: steered walks vs Euler-RMQ index",
    )
    print(table)
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(table + "\n", encoding="utf-8")
    written = write_json_report(
        args.json,
        "backends",
        {
            "quick": args.quick,
            "nodes": args.nodes,
            "pairs": args.pairs,
            "queries": args.queries,
            "repeat": args.repeat,
        },
        rows,
    )
    print(f"[report written to {OUT_PATH} and {written}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
