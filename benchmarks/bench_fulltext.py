"""Ablation C — full-text dominance: the §5 "negligible cost" claim.

"The costs of these operators are negligible if they are used in
combination with a relatively selective full-text search."  This bench
puts numbers to it on the DBLP store: index build, token search, scan
search, and the meet over a realistic query — the meet is orders of
magnitude below the scan-based full-text search the paper used.
"""

from __future__ import annotations

import pytest

from repro.bench.report import render_table
from repro.bench.timing import measure
from repro.core.meet_general import meet_tagged
from repro.fulltext.index import FullTextIndex
from repro.fulltext.search import SearchEngine

from conftest import write_report


def test_index_build(benchmark, dblp_bench_store):
    benchmark.pedantic(
        lambda: FullTextIndex(dblp_bench_store, case_sensitive=True),
        rounds=3,
        iterations=1,
    )


def test_token_search(benchmark, dblp_bench_engine):
    benchmark(lambda: dblp_bench_engine.index.search("ICDE"))


def test_scan_search(benchmark, dblp_bench_engine):
    """The paper's full-text search was a string scan — the 1207 ms."""
    benchmark(lambda: dblp_bench_engine.search.scan("ICDE"))


def test_meet_after_search(benchmark, dblp_bench_store, dblp_bench_engine):
    tagged = [
        ("ICDE", oid) for oid in dblp_bench_engine.term_hits("ICDE").oids()
    ] + [
        ("1995", oid) for oid in dblp_bench_engine.term_hits("1995").oids()
    ]
    benchmark(lambda: meet_tagged(dblp_bench_store, tagged))


def test_full_pipeline(benchmark, dblp_bench_engine):
    benchmark(
        lambda: dblp_bench_engine.nearest_concepts(
            "ICDE", "1995", exclude_root=True
        )
    )


def test_fulltext_report(benchmark, dblp_bench_store, dblp_bench_engine):
    store = dblp_bench_store
    engine = dblp_bench_engine

    def sweep():
        build = measure(
            lambda: FullTextIndex(store, case_sensitive=True), repeats=1
        )
        token = measure(lambda: engine.index.search("ICDE"), repeats=5)
        scan = measure(lambda: engine.search.scan("ICDE"), repeats=3)
        tagged = [
            ("ICDE", oid) for oid in engine.term_hits("ICDE").oids()
        ] + [("1995", oid) for oid in engine.term_hits("1995").oids()]
        meet = measure(lambda: meet_tagged(store, tagged), repeats=3)
        pipeline = measure(
            lambda: engine.nearest_concepts("ICDE", "1995", exclude_root=True),
            repeats=3,
        )
        return [
            ["index build (once)", f"{build.median_ms:.1f}"],
            ["token search 'ICDE'", f"{token.median_ms:.4f}"],
            ["scan search 'ICDE' (paper-style)", f"{scan.median_ms:.1f}"],
            [f"meet over {len(tagged)} hits", f"{meet.median_ms:.2f}"],
            ["full pipeline (2 terms + meet + rank)", f"{pipeline.median_ms:.2f}"],
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["operation", "median ms"],
        rows,
        title=(
            "Ablation C — full-text vs meet cost on the DBLP store "
            "(§5: the meet is a cheap add-on to an existing search engine)"
        ),
    )
    write_report("ablation_fulltext", table)

    scan_ms = float(rows[2][1])
    meet_ms = float(rows[3][1])
    assert meet_ms < scan_ms  # the §5 dominance claim
