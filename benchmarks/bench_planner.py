#!/usr/bin/env python
"""Bench: value-index probes vs scans, and prepared vs ad-hoc queries.

Two questions, answered on the bundled datasets up to the ~84k-node
random tree:

* **Access paths** — for equality and range predicates, how much does
  the planner's value-index probe buy over the forced string-relation
  scan (``force_scan=True``), with the fulltext-postings ``contains``
  path alongside for scale?  Before anything is timed, every query is
  executed down both paths and the rows asserted byte-identical — the
  planner's correctness contract, restated here so a broken probe can
  never post a good number.
* **Prepared statements** — for a parameterized template executed with
  a stream of distinct bindings, how does plan-once/bind-per-call
  (``execute_template``) compare to parsing and planning every call?
  Both streams are checked row-identical first.

Output: a fixed-width table (``benchmarks/out/bench_planner.txt``)
plus the machine-readable ``BENCH_planner.json`` trajectory artefact
at the repo root (CI smoke: ``--quick``).
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.report import render_table, write_json_report
from repro.datasets import PlaysConfig, figure1_document, plays_document
from repro.datasets.randomtree import random_document
from repro.monet.transform import monet_transform
from repro.query.executor import QueryProcessor
from repro.query.parser import parse_query
from repro.valueindex import get_value_index

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = Path(__file__).parent / "out" / "bench_planner.txt"
JSON_PATH = REPO_ROOT / "BENCH_planner.json"

TEMPLATE = "select $a from # $a where $a = $v"


def _time(task: Callable[[], object]) -> float:
    start = time.perf_counter()
    task()
    return time.perf_counter() - start


def _best_of(task: Callable[[], object], repeat: int) -> float:
    return min(_time(task) for _ in range(repeat))


def _sample_values(store, rng: random.Random, count: int) -> List[str]:
    values = sorted(
        {
            value
            for _pid, relation in store.string_relations()
            for _oid, value in relation
            if value and "'" not in value
        }
    )
    return [rng.choice(values) for _ in range(count)]


def bench_dataset(
    name: str, store, rng: random.Random, queries: int, repeat: int
) -> List[Dict[str, object]]:
    values = _sample_values(store, rng, queries)
    midpoint = sorted(values)[len(values) // 2]
    eq_texts = [
        f"select $a from # $a where $a = '{value}'" for value in values
    ]
    range_texts = [
        f"select $a from # $a where $a >= '{midpoint}' and $a <= '{value}'"
        for value in values
    ]
    contains_texts = [
        f"select $a from # $a where $a contains '{value.split()[0]}'"
        for value in values
        if value.split() and value.split()[0].isalnum()
    ] or [f"select $a from # $a where $a contains '{values[0]}'"]

    planner = QueryProcessor(store, None)
    scanner = QueryProcessor(store, None, force_scan=True)
    get_value_index(store)  # probes timed warm, like a served snapshot

    # Differential gate: identical rows down both paths, every query.
    for text in eq_texts + range_texts:
        planned, scanned = planner.execute(text), scanner.execute(text)
        assert planned.rows == scanned.rows, (name, text)

    rows: List[Dict[str, object]] = []

    def run(texts: List[str], processor: QueryProcessor) -> Callable:
        return lambda: [processor.execute(text) for text in texts]

    workloads = [
        ("eq probe", run(eq_texts, planner)),
        ("eq scan", run(eq_texts, scanner)),
        ("range probe", run(range_texts, planner)),
        ("range scan", run(range_texts, scanner)),
        ("contains fulltext", run(contains_texts, planner)),
    ]
    seconds: Dict[str, float] = {}
    for label, task in workloads:
        seconds[label] = _best_of(task, repeat)
        rows.append(
            {
                "dataset": name,
                "workload": label,
                "queries": queries,
                "qps": queries / seconds[label],
                "speedup_vs_scan": None,
            }
        )
    for kind in ("eq", "range"):
        probe = next(r for r in rows if r["workload"] == f"{kind} probe")
        probe["speedup_vs_scan"] = (
            seconds[f"{kind} scan"] / seconds[f"{kind} probe"]
        )

    # Prepared vs ad-hoc: same binding stream, no result cache.
    template = parse_query(TEMPLATE)
    prepared_processor = QueryProcessor(store, None)
    adhoc_processor = QueryProcessor(store, None)
    bindings = [{"v": value} for value in values]
    for binding in bindings[: min(8, len(bindings))]:
        prepared = prepared_processor.execute_template(
            template, text=TEMPLATE, bindings=binding
        )
        adhoc = adhoc_processor.execute(TEMPLATE, bindings=binding)
        assert prepared.rows == adhoc.rows, (name, binding)

    prepared_seconds = _best_of(
        lambda: [
            prepared_processor.execute_template(
                template, text=TEMPLATE, bindings=binding
            )
            for binding in bindings
        ],
        repeat,
    )
    adhoc_seconds = _best_of(
        lambda: [
            adhoc_processor.execute(TEMPLATE, bindings=binding)
            for binding in bindings
        ],
        repeat,
    )
    rows.append(
        {
            "dataset": name,
            "workload": "execute prepared",
            "queries": queries,
            "qps": queries / prepared_seconds,
            "speedup_vs_scan": None,
            "speedup_vs_adhoc": adhoc_seconds / prepared_seconds,
        }
    )
    rows.append(
        {
            "dataset": name,
            "workload": "execute ad-hoc",
            "queries": queries,
            "qps": queries / adhoc_seconds,
            "speedup_vs_scan": None,
        }
    )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: tiny sizes, 1 repeat"
    )
    parser.add_argument("--nodes", type=int, default=60_000,
                        help="random-tree element budget "
                             "(60k elements -> the 84k-node store)")
    parser.add_argument("--queries", type=int, default=36)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--json", type=Path, default=JSON_PATH, metavar="PATH",
                        help=f"JSON artefact path (default: {JSON_PATH.name})")
    args = parser.parse_args(argv)

    if args.quick:
        args.nodes, args.queries, args.repeat = 3_000, 12, 1

    rng = random.Random(29)
    rows: List[Dict[str, object]] = []

    rows += bench_dataset(
        "figure1",
        monet_transform(figure1_document()),
        rng,
        args.queries,
        args.repeat,
    )

    plays_store = monet_transform(
        plays_document(
            PlaysConfig(plays=2 if args.quick else 8)
        )
    )
    print(f"plays: {plays_store.node_count} nodes", file=sys.stderr)
    rows += bench_dataset("plays", plays_store, rng, args.queries, args.repeat)

    random_store = monet_transform(
        random_document(42, nodes=args.nodes, max_children=3)
    )
    print(f"random: {random_store.node_count} nodes", file=sys.stderr)
    rows += bench_dataset(
        "random", random_store, rng, args.queries, args.repeat
    )

    table = render_table(
        ["dataset", "workload", "queries", "qps", "speedup"],
        [
            [
                row["dataset"],
                row["workload"],
                row["queries"],
                f"{row['qps']:.0f}",
                (
                    f"{row['speedup_vs_scan']:.2f}x vs scan"
                    if row.get("speedup_vs_scan")
                    else (
                        f"{row['speedup_vs_adhoc']:.2f}x vs ad-hoc"
                        if row.get("speedup_vs_adhoc")
                        else "-"
                    )
                ),
            ]
            for row in rows
        ],
        title="planner access paths and prepared execution",
    )
    print(table)
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(table + "\n", encoding="utf-8")

    write_json_report(
        args.json,
        "planner",
        {
            "quick": args.quick,
            "nodes": args.nodes,
            "queries": args.queries,
            "repeat": args.repeat,
        },
        rows,
    )
    print(f"wrote {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
