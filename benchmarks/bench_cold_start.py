#!/usr/bin/env python
"""Bench: cold-start time-to-first-query — parse+rebuild vs snapshot.

The snapshot store's whole claim is that a warm start is O(bytes): no
XML parse, no Monet transform, no Euler tour, no tokenization.  This
bench measures **time-to-first-query** on every bundled dataset along
the two start paths:

* ``parse``    — XML text → :func:`repro.datamodel.parser.parse_document`
  → :func:`repro.monet.transform.monet_transform` → engine (indexed
  backend) → one ``nearest_concepts`` query; the full-text and
  Euler-RMQ indexes are built inside the timed region, exactly what a
  fresh process pays today.
* ``snapshot`` — :func:`repro.snapshot.read_snapshot` (checksum pass +
  column rebinds, caches seeded) → engine → the same query, with zero
  index constructions (asserted via the cache build counters).

A differential check asserts both paths return byte-identical ranked
answers for every probe query before anything is timed.  Snapshot
build time and bundle size are reported alongside (the build is paid
once at ingest, not per start).

Output: a fixed-width table (``benchmarks/out/bench_cold_start.txt``)
plus the machine-readable ``BENCH_cold_start.json`` trajectory
artefact at the repo root (CI smoke: ``--quick``).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.report import render_table, write_json_report
from repro.core.lca_index import clear_lca_index_cache, lca_index_cache_info
from repro.datamodel.parser import parse_document
from repro.datamodel.serializer import serialize
from repro.datasets import (
    DblpConfig,
    MultimediaConfig,
    PlaysConfig,
    dblp_document,
    figure1_document,
    multimedia_document,
    plays_document,
)
from repro.datasets.randomtree import random_document
from repro.fulltext.index import (
    clear_fulltext_index_cache,
    fulltext_index_cache_info,
)
from repro.monet.transform import monet_transform
from repro.snapshot import read_snapshot, write_snapshot

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = Path(__file__).parent / "out" / "bench_cold_start.txt"
JSON_PATH = REPO_ROOT / "BENCH_cold_start.json"

LIMIT = 5


def _time(task: Callable[[], object]) -> float:
    start = time.perf_counter()
    task()
    return time.perf_counter() - start


def _best_of(task: Callable[[], object], repeat: int) -> float:
    return min(_time(task) for _ in range(repeat))


def _clear_caches() -> None:
    clear_fulltext_index_cache()
    clear_lca_index_cache()


def _first_query_parse(xml_text: str, terms: Sequence[str]) -> list:
    """The parse+rebuild start path, end to end."""
    from repro.core.engine import NearestConceptEngine

    store = monet_transform(parse_document(xml_text, first_oid=1))
    engine = NearestConceptEngine(store, backend="indexed")
    return engine.nearest_concepts(*terms, limit=LIMIT)


def _first_query_snapshot(bundle: Path, terms: Sequence[str]) -> list:
    """The snapshot start path, end to end."""
    snapshot = read_snapshot(bundle)
    return snapshot.engine().nearest_concepts(*terms, limit=LIMIT)


def _check_differential(
    name: str, xml_text: str, bundle: Path, queries: Sequence[Sequence[str]]
) -> None:
    """Both start paths must produce identical ranked answers, and the
    snapshot path must perform zero index constructions."""
    for terms in queries:
        _clear_caches()
        parsed = _first_query_parse(xml_text, terms)
        _clear_caches()
        loaded = _first_query_snapshot(bundle, terms)
        if parsed != loaded:
            raise AssertionError(
                f"differential failure on {name}/{terms!r}: parse and "
                f"snapshot start paths disagree"
            )
        if (
            lca_index_cache_info().builds != 0
            or fulltext_index_cache_info().builds != 0
        ):
            raise AssertionError(
                f"snapshot start path on {name} rebuilt an index "
                f"(lca builds={lca_index_cache_info().builds}, "
                f"fulltext builds={fulltext_index_cache_info().builds})"
            )


def bench_dataset(
    name: str,
    document,
    queries: List[Tuple[str, str]],
    workdir: Path,
    repeat: int,
) -> Dict[str, object]:
    xml_text = serialize(document)
    # Snapshot the store the parse path would build (serialization can
    # normalize e.g. whitespace, so the in-memory document differs).
    store = monet_transform(parse_document(xml_text, first_oid=1))
    bundle = workdir / f"{name}.snap"
    build_seconds = _time(lambda: write_snapshot(store, bundle))
    size = bundle.stat().st_size
    print(
        f"{name}: {store.node_count} nodes, bundle {size / 1024:.0f} KiB",
        file=sys.stderr,
    )

    _check_differential(name, xml_text, bundle, queries)

    terms = queries[0]

    def run_parse() -> None:
        _clear_caches()
        _first_query_parse(xml_text, terms)

    def run_snapshot() -> None:
        _clear_caches()
        _first_query_snapshot(bundle, terms)

    parse_seconds = _best_of(run_parse, repeat)
    snapshot_seconds = _best_of(run_snapshot, repeat)
    return {
        "dataset": name,
        "workload": "cold_start",
        "nodes": store.node_count,
        "xml_bytes": len(xml_text.encode("utf-8")),
        "snapshot_bytes": size,
        "snapshot_build_seconds": round(build_seconds, 6),
        "parse_seconds": round(parse_seconds, 6),
        "snapshot_seconds": round(snapshot_seconds, 6),
        "speedup": round(parse_seconds / snapshot_seconds, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: tiny sizes, 1 repeat"
    )
    parser.add_argument("--nodes", type=int, default=60_000,
                        help="random-tree size (the largest dataset)")
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--json", type=Path, default=JSON_PATH, metavar="PATH",
                        help=f"JSON artefact path (default: {JSON_PATH.name})")
    args = parser.parse_args(argv)

    if args.quick:
        args.nodes, args.repeat = 3_000, 1

    rows: List[Dict[str, object]] = []
    with tempfile.TemporaryDirectory(prefix="bench-cold-start-") as tmp:
        workdir = Path(tmp)
        rows.append(
            bench_dataset(
                "figure1",
                figure1_document(),
                [("Bit", "1999"), ("Bob", "Byte")],
                workdir,
                args.repeat,
            )
        )
        plays_config = (
            PlaysConfig(plays=2, acts_per_play=2, scenes_per_act=2)
            if args.quick
            else PlaysConfig(plays=6, acts_per_play=4, scenes_per_act=4)
        )
        rows.append(
            bench_dataset(
                "plays",
                plays_document(plays_config),
                [("crown", "ghost"), ("love", "storm")],
                workdir,
                args.repeat,
            )
        )
        dblp_config = (
            DblpConfig(papers_per_proceedings=8, articles_per_year=4)
            if args.quick
            else DblpConfig(papers_per_proceedings=60, articles_per_year=40)
        )
        rows.append(
            bench_dataset(
                "dblp",
                dblp_document(dblp_config),
                [("ICDE", "1999"), ("VLDB", "1994")],
                workdir,
                args.repeat,
            )
        )
        rows.append(
            bench_dataset(
                "multimedia",
                multimedia_document(
                    MultimediaConfig(items=10 if args.quick else 120)
                ),
                [("wavelet", "texture"), ("motion", "region")],
                workdir,
                args.repeat,
            )
        )
        rows.append(
            bench_dataset(
                "random",
                random_document(42, nodes=args.nodes, max_children=3),
                [("wavelet", "texture"), ("histogram", "contour")],
                workdir,
                args.repeat,
            )
        )

    table = render_table(
        [
            "dataset",
            "nodes",
            "parse ttfq",
            "snapshot ttfq",
            "speedup",
            "bundle",
        ],
        [
            [
                row["dataset"],
                row["nodes"],
                f"{row['parse_seconds'] * 1000:.1f} ms",
                f"{row['snapshot_seconds'] * 1000:.1f} ms",
                f"{row['speedup']:.2f}x",
                f"{row['snapshot_bytes'] / 1024:.0f} KiB",
            ]
            for row in rows
        ],
        title="cold start: parse+rebuild vs snapshot-load time-to-first-query",
    )
    print(table)
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(table + "\n", encoding="utf-8")
    written = write_json_report(
        args.json,
        "cold_start",
        {
            "quick": args.quick,
            "nodes": args.nodes,
            "repeat": args.repeat,
            "limit": LIMIT,
            "backend": "indexed",
        },
        rows,
    )
    print(f"[report written to {OUT_PATH} and {written}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
