"""Ablation A — the design choice behind Fig. 3: path-steered walking.

Compares the paper's ⪯-steered parent walk (meet₂) against:

* ``naive_lca``     — materialize one full root path, probe the other;
* ``lockstep_lca``  — depth-equalize, then climb in lock-step;
* ``EulerTourLCA``  — O(1) queries after O(n log n) indexing;
* ``tarjan_offline``— near-linear batch answering (needs all pairs
  up front, which interactive querying does not have).

The point the paper makes implicitly: the steered walk costs O(d) per
query with *zero* preprocessing beyond the Monet transform, and d is
exactly the ranking signal §4 wants anyway.  The index builds pay off
only under enormous query volumes.
"""

from __future__ import annotations

import pytest

from repro.baselines.euler_rmq import EulerTourLCA
from repro.baselines.naive_lca import lockstep_lca, naive_lca
from repro.baselines.tarjan import tarjan_offline_lca
from repro.bench.report import render_table
from repro.core.meet_pair import meet2
from repro.datasets.randomtree import random_oid_pairs

from conftest import write_report

PAIR_COUNT = 400


@pytest.fixture(scope="module")
def workload(dblp_bench_store):
    pairs = random_oid_pairs(dblp_bench_store, PAIR_COUNT, seed=42)
    return dblp_bench_store, pairs


def test_meet2_steered(benchmark, workload):
    store, pairs = workload
    benchmark(lambda: [meet2(store, a, b) for a, b in pairs])


def test_naive_ancestor_set(benchmark, workload):
    store, pairs = workload
    benchmark(lambda: [naive_lca(store, a, b) for a, b in pairs])


def test_lockstep(benchmark, workload):
    store, pairs = workload
    benchmark(lambda: [lockstep_lca(store, a, b) for a, b in pairs])


def test_euler_rmq_queries_only(benchmark, workload):
    store, pairs = workload
    index = EulerTourLCA(store)
    benchmark(lambda: [index.lca(a, b) for a, b in pairs])


def test_euler_rmq_build(benchmark, workload):
    store, _pairs = workload
    benchmark.pedantic(lambda: EulerTourLCA(store), rounds=3, iterations=1)


def test_tarjan_offline_batch(benchmark, workload):
    store, pairs = workload
    benchmark(lambda: tarjan_offline_lca(store, pairs))


def test_ablation_lca_report(benchmark, workload):
    """All strategies agree; summarize per-query and build costs."""
    from repro.bench.timing import measure

    store, pairs = workload
    index = EulerTourLCA(store)

    expected = [naive_lca(store, a, b) for a, b in pairs]
    assert [meet2(store, a, b) for a, b in pairs] == expected
    assert [lockstep_lca(store, a, b) for a, b in pairs] == expected
    assert [index.lca(a, b) for a, b in pairs] == expected
    assert tarjan_offline_lca(store, pairs) == expected

    def row(name, fn, build_ms):
        timing = measure(fn, repeats=3)
        return [
            name,
            f"{timing.median_ms:.2f}",
            f"{timing.median_ms / len(pairs) * 1000:.2f}",
            build_ms,
        ]

    build = measure(lambda: EulerTourLCA(store), repeats=1)
    rows = benchmark.pedantic(
        lambda: [
            row("meet2 (steered walk)", lambda: [meet2(store, a, b) for a, b in pairs], "0"),
            row("naive ancestor-set", lambda: [naive_lca(store, a, b) for a, b in pairs], "0"),
            row("lockstep", lambda: [lockstep_lca(store, a, b) for a, b in pairs], "0"),
            row("euler+rmq (indexed)", lambda: [index.lca(a, b) for a, b in pairs], f"{build.median_ms:.0f}"),
            row("tarjan (offline batch)", lambda: tarjan_offline_lca(store, pairs), "0"),
        ],
        rounds=1,
        iterations=1,
    )
    table = render_table(
        ["strategy", f"{len(pairs)} queries ms", "µs/query", "index build ms"],
        rows,
        title="Ablation A — pairwise LCA strategies on the DBLP store",
    )
    write_report("ablation_lca", table)
