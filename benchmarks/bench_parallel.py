#!/usr/bin/env python
"""Bench: sharded scatter-gather serving — serial vs process pool.

PR 5's execution layer shards a collection into independent stores and
runs per-shard work either in-process (``SerialExecutor``) or on a
``ProcessPoolExecutor`` whose workers mmap their shard bundles once
(``ParallelExecutor``).  This bench prices that choice on the largest
bundled dataset (the 84k-node random tree, indexed backend), all
regimes uncached and differentially checked first:

* ``mono-inproc``      — monolithic ``Database.nearest``, one thread
  (the PR 4 ceiling).
* ``serial-conc8``     — sharded, serial executor, 8 request threads
  (GIL-bound: the merge and the shard work share one interpreter).
* ``parallel-conc8``   — sharded, 4 pool workers, 8 request threads:
  compute crosses the GIL into worker processes.
* ``http-seq``         — monolithic over HTTP, one persistent client
  (PR 4's single-client baseline: the number conc8 must beat).
* ``http-par-conc8``   — the parallel database behind the HTTP server,
  8 concurrent clients.

**Hardware note**: process pools buy wall-clock only where there are
cores.  The JSON artefact records ``cpu_count``; on a single-core
container the parallel rows measure scatter overhead (expect ≈ 1x or
below), while the same artefact on an N-core box shows the pool
scaling toward min(workers, cores).  The differential check and the
zero-rebuild assertion hold regardless.

Output: ``benchmarks/out/bench_parallel.txt`` plus the machine-readable
``BENCH_parallel.json`` trajectory artefact (CI smoke: ``--quick``).
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import Database, DatabaseOptions, NearestRequest, ReproServer
from repro.bench.report import render_table, write_json_report
from repro.datamodel.serializer import serialize
from repro.datasets.randomtree import random_document
from repro.datasets.textpool import TECH_NOUNS
from repro.monet.transform import monet_transform
from repro.snapshot import Catalog

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = Path(__file__).parent / "out" / "bench_parallel.txt"
JSON_PATH = REPO_ROOT / "BENCH_parallel.json"

LIMIT = 5


def _time(task: Callable[[], object]) -> float:
    start = time.perf_counter()
    task()
    return time.perf_counter() - start


def _best_of(task: Callable[[], object], repeat: int) -> float:
    return min(_time(task) for _ in range(repeat))


def _concurrent(
    database: Database,
    queries: Sequence[Tuple[str, str]],
    threads: int,
) -> None:
    def worker(index: int) -> None:
        for position in range(index, len(queries), threads):
            database.nearest(
                NearestRequest(terms=queries[position], limit=LIMIT)
            )

    if threads == 1:
        worker(0)
        return
    with ThreadPoolExecutor(max_workers=threads) as pool:
        list(pool.map(worker, range(threads)))


class _Client:
    def __init__(self, host: str, port: int):
        self.connection = http.client.HTTPConnection(host, port)

    def nearest(self, terms: Sequence[str]) -> Dict[str, object]:
        self.connection.request(
            "POST",
            "/v1/nearest",
            body=json.dumps({"terms": list(terms), "limit": LIMIT}),
            headers={"Content-Type": "application/json"},
        )
        response = self.connection.getresponse()
        body = response.read()
        if response.status != 200:
            raise AssertionError(
                f"HTTP {response.status} for {terms!r}: {body[:200]!r}"
            )
        return json.loads(body)

    def close(self) -> None:
        self.connection.close()


def _run_http(
    server: ReproServer, queries: Sequence[Tuple[str, str]], clients: int
) -> None:
    pool_clients = [_Client(server.host, server.port) for _ in range(clients)]
    try:
        def worker(index: int) -> None:
            client = pool_clients[index]
            for position in range(index, len(queries), clients):
                client.nearest(queries[position])

        if clients == 1:
            worker(0)
            return
        with ThreadPoolExecutor(max_workers=clients) as pool:
            list(pool.map(worker, range(clients)))
    finally:
        for client in pool_clients:
            client.close()


def _check_differential(
    monolithic: Database,
    candidates: Dict[str, Database],
    queries: Sequence[Tuple[str, str]],
) -> None:
    """Sharded answers must be byte-identical before anything is timed."""
    for terms in queries:
        expected = list(
            monolithic.nearest(NearestRequest(terms=terms, limit=LIMIT)).answers
        )
        for name, database in candidates.items():
            actual = list(
                database.nearest(NearestRequest(terms=terms, limit=LIMIT)).answers
            )
            if actual != expected:
                raise AssertionError(
                    f"differential failure: {name} diverged on {terms!r}"
                )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: tiny sizes, 1 repeat")
    parser.add_argument("--nodes", type=int, default=60_000,
                        help="random-tree size (the largest dataset)")
    parser.add_argument("--queries", type=int, default=160)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--repeat", type=int, default=2)
    parser.add_argument("--json", type=Path, default=JSON_PATH, metavar="PATH",
                        help=f"JSON artefact path (default: {JSON_PATH.name})")
    args = parser.parse_args(argv)

    if args.quick:
        args.nodes, args.queries, args.repeat = 3_000, 24, 1
        args.shards, args.workers = 2, 2

    rng = random.Random(17)
    document = random_document(42, nodes=args.nodes, max_children=3)

    import tempfile

    workdir = Path(tempfile.mkdtemp(prefix="repro-bench-parallel-"))
    xml = workdir / "random.xml"
    xml.write_text(serialize(document), encoding="utf-8")
    # The monolithic reference parses the same serialized XML the
    # catalog ingests, so OID numbering matches bundle-loaded shards.
    from repro.datamodel.parser import parse_document

    store = monet_transform(
        parse_document(xml.read_text(encoding="utf-8"), first_oid=1)
    )
    print(
        f"random: {store.node_count} nodes, {len(store.summary) - 1} paths, "
        f"cpu_count={os.cpu_count()}",
        file=sys.stderr,
    )
    words = list(TECH_NOUNS)[:12]
    queries = [tuple(rng.sample(words, 2)) for _ in range(args.queries)]
    catalog = workdir / "catalog"
    build_started = time.perf_counter()
    Catalog(catalog).ingest("random", xml, shards=args.shards)
    build_seconds = time.perf_counter() - build_started
    print(
        f"sharded snapshot: {args.shards} bundles in {build_seconds:.1f}s",
        file=sys.stderr,
    )

    uncached = DatabaseOptions(backend="indexed", cache=None)
    monolithic = Database(store, options=uncached)
    serial = Database.open(
        options=uncached, snapshot="random", catalog=catalog
    )
    parallel = Database.open(
        options=uncached,
        snapshot="random",
        catalog=catalog,
        workers=args.workers,
    )

    rows: List[Dict[str, object]] = []

    def add_row(workload: str, clients: int, seconds: float) -> None:
        rows.append(
            {
                "dataset": "random",
                "workload": workload,
                "clients": clients,
                "queries": len(queries),
                "seconds": round(seconds, 6),
                "qps": round(len(queries) / seconds, 2),
            }
        )

    try:
        _check_differential(
            monolithic,
            {"serial": serial, "parallel": parallel},
            queries[: min(len(queries), 16)],
        )
        print("differential check passed", file=sys.stderr)

        add_row(
            "mono-inproc", 1,
            _best_of(lambda: _concurrent(monolithic, queries, 1), args.repeat),
        )
        add_row(
            f"serial-conc{args.clients}", args.clients,
            _best_of(
                lambda: _concurrent(serial, queries, args.clients), args.repeat
            ),
        )
        add_row(
            f"parallel-conc{args.clients}", args.clients,
            _best_of(
                lambda: _concurrent(parallel, queries, args.clients),
                args.repeat,
            ),
        )

        with ReproServer(monolithic, port=0) as server:
            add_row(
                "http-seq", 1,
                _best_of(lambda: _run_http(server, queries, 1), args.repeat),
            )
        with ReproServer(parallel, port=0) as server:
            # The bench process built indexes of its own (the reference
            # engine, the snapshot writes); zero rebuilds is a *delta*
            # claim over the serving window, workers included.
            before = server.stats()["index_builds"]
            add_row(
                f"http-par-conc{args.clients}", args.clients,
                _best_of(
                    lambda: _run_http(server, queries, args.clients),
                    args.repeat,
                ),
            )
            after = server.stats()["index_builds"]
            if after != before:
                raise AssertionError(
                    f"rebuilds during serving: {before} -> {after}"
                )
    finally:
        parallel.close()
        serial.close()

    by_name = {row["workload"]: row["qps"] for row in rows}
    serial_qps = by_name[f"serial-conc{args.clients}"]
    http_seq_qps = by_name["http-seq"]
    for row in rows:
        row["vs_serial"] = round(row["qps"] / serial_qps, 3)
    summary = {
        "parallel_vs_serial": round(
            by_name[f"parallel-conc{args.clients}"] / serial_qps, 3
        ),
        "http_conc_vs_single_client": round(
            by_name[f"http-par-conc{args.clients}"] / http_seq_qps, 3
        ),
        "snapshot_build_seconds": round(build_seconds, 3),
        "zero_rebuilds": True,
    }

    table = render_table(
        ["dataset", "workload", "clients", "queries", "qps", "vs serial-conc"],
        [
            [
                row["dataset"],
                row["workload"],
                row["clients"],
                row["queries"],
                f"{row['qps']:.0f}",
                f"{row['vs_serial']:.2f}x",
            ]
            for row in rows
        ],
        title=(
            f"Sharded serving: serial vs {args.workers}-worker pool "
            f"(nearest, indexed, uncached, cpu_count={os.cpu_count()})"
        ),
    )
    print(table)
    print(f"summary: {summary}")
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(table + "\n", encoding="utf-8")
    written = write_json_report(
        args.json,
        "parallel",
        {
            "quick": args.quick,
            "nodes": args.nodes,
            "queries": args.queries,
            "shards": args.shards,
            "workers": args.workers,
            "clients": args.clients,
            "repeat": args.repeat,
            "backend": "indexed",
            "limit": LIMIT,
            "cpu_count": os.cpu_count(),
            "summary": summary,
        },
        rows,
    )
    print(f"[report written to {OUT_PATH} and {written}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
