#!/usr/bin/env python
"""Bench: end-to-end ``nearest_concepts`` serving throughput.

Measures queries/sec of the paper's headline pipeline (full-text hits
→ tagged Fig. 5 roll-up → §4 restrict/rank) in the three serving
regimes a query server actually sees, across the bundled datasets:

* ``cold``    — first contact: every derived structure (full-text
  index, Euler-RMQ LCA index) is built inside the timed region, then
  the query stream is answered once.  Amortized cost of a cold start.
* ``batched`` — steady state without repeats: warm indexes, cold
  results; the distinct-query stream is answered via
  ``nearest_concepts_batch``.  This is the allocation-light hot path.
* ``warm``    — steady state with repeats: the generation-keyed
  result cache answers a previously seen stream.

Every regime is also measured against an emulated **pre-optimization
baseline** that reconstructs the previous hot path from retained
reference code: a ``Posting`` object materialized per matching
association, the by-pid regrouping rebuilt per term, the distinct-OID
set built from posting objects, the per-OID ``set[(token, oid)]``
roll-up (``IndexedBackend._meet_tagged_sets``), and no result cache.
The tail of the pipeline (restrict → annotate → rank) is shared code,
so the speedup isolates exactly what this repo changed.

A differential check asserts baseline and optimized pipelines return
identical ranked answers for every query before anything is timed.

Output: a fixed-width table (``benchmarks/out/bench_query_serving.txt``)
plus the machine-readable ``BENCH_query_serving.json`` trajectory
artefact at the repo root (CI smoke: ``--quick``).
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import kernels
from repro.bench.report import render_table, write_json_report
from repro.core.backends import BACKEND_NAMES
from repro.core.engine import NearestConcept, NearestConceptEngine
from repro.core.lca_index import clear_lca_index_cache
from repro.datasets import (
    DblpConfig,
    MultimediaConfig,
    dblp_document,
    figure1_document,
    multimedia_document,
)
from repro.datasets.randomtree import random_document
from repro.datasets.textpool import TECH_NOUNS
from repro.fulltext.index import clear_fulltext_index_cache
from repro.monet.transform import monet_transform

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = Path(__file__).parent / "out" / "bench_query_serving.txt"
JSON_PATH = REPO_ROOT / "BENCH_query_serving.json"


def _time(task: Callable[[], object]) -> float:
    start = time.perf_counter()
    task()
    return time.perf_counter() - start


def _best_of(task: Callable[[], object], repeat: int) -> float:
    return min(_time(task) for _ in range(repeat))


# ---------------------------------------------------------------------------
# The emulated pre-optimization serving path (see module docstring).
# ---------------------------------------------------------------------------

def baseline_nearest_concepts(
    engine: NearestConceptEngine, terms: Sequence[str], limit: int
) -> List[NearestConcept]:
    """One query the way the hot path used to run.

    Materializes a :class:`~repro.fulltext.index.Posting` per matching
    association, regroups by pid with fresh dicts, builds the OID set
    from the posting objects, and rolls up with per-OID token sets.
    The (unchanged) annotate/rank tail is reused from the engine.
    """
    tagged: List[Tuple[str, int]] = []
    for term in terms:
        hits = engine.term_hits(term)
        postings = hits.postings  # a Posting object per association
        grouped: Dict[int, List[int]] = {}
        for posting in postings:
            grouped.setdefault(posting.pid, []).append(posting.oid)
        for oid in {posting.oid for posting in postings}:
            tagged.append((term, oid))
    results = engine.backend._meet_tagged_sets(tagged)
    concepts = [engine._annotate(result) for result in results]
    concepts.sort(key=NearestConcept.sort_key)
    return concepts[:limit]


def baseline_batch(
    engine: NearestConceptEngine,
    queries: Sequence[Tuple[str, str]],
    limit: int,
) -> List[List[NearestConcept]]:
    return [baseline_nearest_concepts(engine, terms, limit) for terms in queries]


# ---------------------------------------------------------------------------
# Workloads.
# ---------------------------------------------------------------------------

LIMIT = 5


def _check_differential(
    store, queries, case_sensitive: bool, backend: str
) -> None:
    """Baseline and optimized pipelines must agree before timing."""
    optimized = NearestConceptEngine(
        store, case_sensitive=case_sensitive, backend=backend
    )
    reference = NearestConceptEngine(
        store, case_sensitive=case_sensitive, backend="indexed"
    )
    for terms in queries:
        fast = optimized.nearest_concepts(*terms, limit=LIMIT)
        slow = baseline_nearest_concepts(reference, terms, LIMIT)
        if fast != slow:
            raise AssertionError(
                f"differential failure on {terms!r}: optimized and "
                f"baseline pipelines disagree"
            )


def bench_dataset(
    name: str,
    store,
    queries: List[Tuple[str, str]],
    repeat: int,
    case_sensitive: bool = False,
    backend: str = "indexed",
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    _check_differential(
        store, queries[: min(len(queries), 25)], case_sensitive, backend
    )

    def fresh_engine(cache=None) -> NearestConceptEngine:
        return NearestConceptEngine(
            store,
            case_sensitive=case_sensitive,
            backend=backend,
            cache=cache,
        )

    def run_cold() -> None:
        clear_fulltext_index_cache()
        clear_lca_index_cache()
        store.invalidate_caches()
        engine = fresh_engine()
        for terms in queries:
            engine.nearest_concepts(*terms, limit=LIMIT)

    def run_cold_baseline() -> None:
        clear_fulltext_index_cache()
        clear_lca_index_cache()
        store.invalidate_caches()
        engine = fresh_engine()
        baseline_batch(engine, queries, LIMIT)

    def add_row(workload: str, seconds: float, baseline_seconds: float) -> None:
        rows.append(
            {
                "dataset": name,
                "workload": workload,
                "queries": len(queries),
                "seconds": round(seconds, 6),
                "qps": round(len(queries) / seconds, 2),
                "baseline_seconds": round(baseline_seconds, 6),
                "baseline_qps": round(len(queries) / baseline_seconds, 2),
                "speedup": round(baseline_seconds / seconds, 2),
            }
        )

    # cold: derived-structure builds inside the timed region.
    add_row(
        "cold",
        _best_of(run_cold, repeat),
        _best_of(run_cold_baseline, repeat),
    )

    # batched: warm indexes, cold results.
    engine = fresh_engine()
    engine.nearest_concepts(*queries[0], limit=LIMIT)  # warm the indexes
    batched = _best_of(
        lambda: engine.nearest_concepts_batch(queries, limit=LIMIT), repeat
    )
    batched_baseline = _best_of(
        lambda: baseline_batch(engine, queries, LIMIT), repeat
    )
    add_row("batched", batched, batched_baseline)

    # warm: the result cache answers a repeated stream; the baseline
    # (no cache existed) recomputes every repeat.
    caching = fresh_engine(cache=max(len(queries) * 2, 64))
    caching.nearest_concepts_batch(queries, limit=LIMIT)  # populate
    warm = _best_of(
        lambda: caching.nearest_concepts_batch(queries, limit=LIMIT), repeat
    )
    add_row("warm", warm, batched_baseline)
    info = caching.cache_info()
    rows[-1]["cache_hit_rate"] = round(info.hit_rate, 4)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: tiny sizes, 1 repeat"
    )
    parser.add_argument("--nodes", type=int, default=60_000,
                        help="random-tree size (the largest dataset)")
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--backend", choices=BACKEND_NAMES, default="indexed",
                        help="meet backend serving the optimized pipeline "
                        "(vector = the NumPy batch-kernel tier)")
    parser.add_argument("--json", type=Path, default=JSON_PATH, metavar="PATH",
                        help=f"JSON artefact path (default: {JSON_PATH.name})")
    args = parser.parse_args(argv)

    if args.quick:
        args.nodes, args.queries, args.repeat = 3_000, 30, 1

    rng = random.Random(17)
    rows: List[Dict[str, object]] = []

    figure1_store = monet_transform(figure1_document())
    figure1_queries = [
        ("Bit", "1999"), ("Bob", "Byte"), ("Hack", "1999"), ("Ben", "Bit"),
    ] * max(1, args.queries // 4)
    rows += bench_dataset(
        "figure1",
        figure1_store,
        figure1_queries[: args.queries],
        args.repeat,
        backend=args.backend,
    )

    dblp_config = (
        DblpConfig(papers_per_proceedings=8, articles_per_year=4)
        if args.quick
        else DblpConfig(papers_per_proceedings=60, articles_per_year=40)
    )
    dblp_store = monet_transform(dblp_document(dblp_config))
    print(f"dblp: {dblp_store.node_count} nodes", file=sys.stderr)
    years = [str(year) for year in dblp_config.years()]
    dblp_queries = [
        (rng.choice(["ICDE", "VLDB", "SIGMOD"]), rng.choice(years))
        for _ in range(args.queries)
    ]
    rows += bench_dataset(
        "dblp",
        dblp_store,
        dblp_queries,
        args.repeat,
        case_sensitive=True,
        backend=args.backend,
    )

    multimedia_store = monet_transform(
        multimedia_document(MultimediaConfig(items=10 if args.quick else 120))
    )
    print(f"multimedia: {multimedia_store.node_count} nodes", file=sys.stderr)
    words = list(TECH_NOUNS)
    multimedia_queries = [
        tuple(rng.sample(words, 2)) for _ in range(args.queries)
    ]
    rows += bench_dataset(
        "multimedia",
        multimedia_store,
        multimedia_queries,
        args.repeat,
        backend=args.backend,
    )

    random_store = monet_transform(
        random_document(42, nodes=args.nodes, max_children=3)
    )
    print(
        f"random: {random_store.node_count} nodes, "
        f"{len(random_store.summary) - 1} paths", file=sys.stderr
    )
    random_queries = [
        tuple(rng.sample(words[:12], 2)) for _ in range(args.queries)
    ]
    rows += bench_dataset(
        "random",
        random_store,
        random_queries,
        args.repeat,
        backend=args.backend,
    )

    table = render_table(
        ["dataset", "workload", "queries", "qps", "baseline qps", "speedup"],
        [
            [
                row["dataset"],
                row["workload"],
                row["queries"],
                f"{row['qps']:.0f}",
                f"{row['baseline_qps']:.0f}",
                f"{row['speedup']:.2f}x",
            ]
            for row in rows
        ],
        title="query serving: optimized hot path vs emulated pre-optimization baseline",
    )
    print(table)
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(table + "\n", encoding="utf-8")
    written = write_json_report(
        args.json,
        "query_serving",
        {
            "quick": args.quick,
            "nodes": args.nodes,
            "queries": args.queries,
            "repeat": args.repeat,
            "backend": args.backend,
            "kernel_tier": kernels.active_tier(args.backend),
            "limit": LIMIT,
        },
        rows,
    )
    print(f"[report written to {OUT_PATH} and {written}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
