"""Figure 7: the DBLP case study — meet time vs output cardinality.

Paper setup: full-text search for "ICDE" and every year of an interval
[y, 1999]; the meet (meet_X with the document root excluded) computes
the publications; the interval widens from 1999 back to 1984.  The
x-axis is the cardinality of the output set (up to ~1200), the y-axis
the elapsed time of the meet alone ("the time the full-text search
takes is not included in this figure"), and the finding is a ~linear
scaling — plus a flat step near 1100 because "there was no ICDE in
1985".

Our synthetic DBLP has 75 ICDE papers per year over 1984–1999 minus
1985 → 1125 publications at full widening, matching the paper's ~1200
scale.  The benchmark parameterizes by the interval start; the report
regenerates the (cardinality, time) series.
"""

from __future__ import annotations

import pytest

from repro.bench.report import Series, render_ascii_plot, render_table
from repro.bench.timing import measure
from repro.core.meet_general import meet_tagged
from repro.core.restrictions import resolve_pids

from conftest import FIGURE7_FIRST_YEARS, write_report


def gather_inputs(store, engine, first_year):
    """The full-text phase: tagged hits for ICDE and every year."""
    tagged = []
    for oid in engine.term_hits("ICDE").oids():
        tagged.append(("ICDE", oid))
    for year in range(first_year, 2000):
        term = str(year)
        for oid in engine.term_hits(term).oids():
            tagged.append((term, oid))
    return tagged


def run_meet(store, tagged, excluded):
    results = meet_tagged(store, tagged)
    return [r for r in results if store.pid_of(r.oid) not in excluded]


@pytest.mark.parametrize("first_year", FIGURE7_FIRST_YEARS)
def test_meet_after_fulltext(
    benchmark, dblp_bench_store, dblp_bench_engine, first_year
):
    """One Figure 7 point: meet cost for the interval [first_year, 1999].

    The full-text phase runs once outside the timed region, exactly as
    in the paper ("the time the full-text search takes is not included
    in this figure").
    """
    store = dblp_bench_store
    tagged = gather_inputs(store, dblp_bench_engine, first_year)
    excluded = resolve_pids(store, ["dblp"])

    results = benchmark(lambda: run_meet(store, tagged, excluded))
    assert results  # the meet finds the publications


def test_figure7_report(benchmark, dblp_bench_store, dblp_bench_engine):
    """Regenerate the figure: elapsed meet time vs output cardinality."""
    store = dblp_bench_store
    excluded = resolve_pids(store, ["dblp"])

    def sweep():
        rows = []
        series = Series("meet after full-text search")
        for first_year in sorted(FIGURE7_FIRST_YEARS, reverse=True):
            tagged = gather_inputs(store, dblp_bench_engine, first_year)
            timing = measure(
                lambda: run_meet(store, tagged, excluded), repeats=3
            )
            results = run_meet(store, tagged, excluded)
            cardinality = len(results)
            publications = sum(
                1
                for r in results
                if store.summary.label(store.pid_of(r.oid)) == "inproceedings"
            )
            series.add(cardinality, timing.median_ms)
            rows.append(
                [
                    f"{first_year}-1999",
                    len(tagged),
                    cardinality,
                    publications,
                    f"{timing.median_ms:.2f}",
                ]
            )
        return rows, series

    rows, series = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = render_table(
        ["interval", "input assocs", "output", "publications", "meet ms"],
        rows,
        title="Figure 7 — case study: meet after full-text search on DBLP",
    )
    plot = render_ascii_plot(
        [series],
        title="Figure 7 (elapsed ms vs cardinality of output set)",
        x_label="cardinality of output set",
        y_label="elapsed ms",
    )
    write_report("figure7", table + "\n\n" + plot)

    # Shape assertions:
    # 1. output cardinality grows monotonically with the interval …
    cardinalities = [row[2] for row in rows]
    assert cardinalities == sorted(cardinalities)
    # 2. … with the ICDE-1985 flat step (1985→1984 widening adds a
    #    year of publications, 1986→1985 does not).
    by_interval = {row[0]: row[3] for row in rows}
    assert by_interval["1985-1999"] == by_interval["1986-1999"]
    assert by_interval["1984-1999"] > by_interval["1985-1999"]
    # 3. ~linear scaling: time per output element stays within a small
    #    factor across an order of magnitude of output sizes.
    per_element = [
        float(row[4]) / row[2] for row in rows if row[2] >= 100
    ]
    assert max(per_element) <= 6 * min(per_element)
