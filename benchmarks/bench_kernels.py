#!/usr/bin/env python
"""Bench: NumPy batch kernels vs the per-pair python hot path.

Head-to-head of the ``vector`` backend (NumPy batch kernels over the
generation-keyed flat columns) against the ``indexed`` backend (the
same Euler-RMQ index walked pair by pair in python) on the single-core
uncached serving path — warm indexes, no result cache, a stream of
distinct ``nearest_concepts`` queries.  Before anything is timed the
two backends must return byte-identical ranked answers for the whole
stream, and the timed region must perform **zero** index (re)builds:
the kernels bind views over the already-cached columns.

Also reports micro-kernel rows (batched LCA, Fig. 5 roll-up, postings
intersection) so a regression localizes without a bisect.

Output: ``benchmarks/out/bench_kernels.txt`` plus the machine-readable
``BENCH_kernels.json`` artefact at the repo root (CI smoke:
``--quick`` on the with-numpy leg).
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import kernels
from repro.bench.report import render_table, write_json_report
from repro.core.engine import NearestConceptEngine
from repro.core.lca_index import get_lca_index, lca_index_cache_info
from repro.datasets.randomtree import random_document
from repro.datasets.textpool import TECH_NOUNS
from repro.fulltext.search import SearchEngine
from repro.monet.transform import monet_transform

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = Path(__file__).parent / "out" / "bench_kernels.txt"
JSON_PATH = REPO_ROOT / "BENCH_kernels.json"

LIMIT = 5


def _time(task: Callable[[], object]) -> float:
    start = time.perf_counter()
    task()
    return time.perf_counter() - start


def _best_of(task: Callable[[], object], repeat: int) -> float:
    return min(_time(task) for _ in range(repeat))


def _serving_row(
    name: str,
    store,
    queries: List[Tuple[str, str]],
    repeat: int,
) -> Dict[str, object]:
    """Uncached nearest-concept qps, vector vs indexed, same answers."""
    engines = {
        backend: NearestConceptEngine(store, backend=backend)
        for backend in ("indexed", "vector")
    }
    assert engines["vector"].backend.name == "vector", (
        "NumPy kernels unavailable: run the python leg via "
        "bench_query_serving.py instead"
    )

    # Differential first: the speedup is meaningless unless the
    # answers (and their order) are byte-identical.
    for terms in queries:
        expected = engines["indexed"].nearest_concepts(*terms, limit=LIMIT)
        actual = engines["vector"].nearest_concepts(*terms, limit=LIMIT)
        assert actual == expected, f"backends disagree on {terms!r}"

    def stream(engine: NearestConceptEngine) -> Callable[[], None]:
        def run() -> None:
            for terms in queries:
                engine.nearest_concepts(*terms, limit=LIMIT)

        return run

    # Everything derived is warm; the timed region must not build.
    builds_before = lca_index_cache_info().builds
    indexed_seconds = _best_of(stream(engines["indexed"]), repeat)
    vector_seconds = _best_of(stream(engines["vector"]), repeat)
    assert lca_index_cache_info().builds == builds_before, (
        "the timed region rebuilt an index"
    )
    return {
        "dataset": name,
        "workload": "uncached-serving",
        "queries": len(queries),
        "indexed_seconds": round(indexed_seconds, 6),
        "vector_seconds": round(vector_seconds, 6),
        "indexed_qps": round(len(queries) / indexed_seconds, 2),
        "vector_qps": round(len(queries) / vector_seconds, 2),
        "speedup": round(indexed_seconds / vector_seconds, 2),
    }


def _micro_rows(store, repeat: int, batch: int) -> List[Dict[str, object]]:
    """Micro-kernels: batched LCA, Fig. 5 roll-up, postings intersect."""
    from repro.kernels.lca import get_kernels

    rows: List[Dict[str, object]] = []
    rng = random.Random(5)
    index = get_lca_index(store)
    batch_kernels = get_kernels(index)
    np = kernels.numpy()

    low = store.first_oid
    high = low + store.node_count - 1
    pairs = [(rng.randint(low, high), rng.randint(low, high))
             for _ in range(batch)]
    table = np.asarray(pairs, dtype=np.int64)

    def python_lca() -> None:
        lca = index.lca
        for oid1, oid2 in pairs:
            lca(oid1, oid2)

    python_seconds = _best_of(python_lca, repeat)
    vector_seconds = _best_of(
        lambda: batch_kernels.lca_many(table[:, 0], table[:, 1]), repeat
    )
    rows.append(
        {
            "dataset": "random",
            "workload": f"lca_many[{batch}]",
            "python_seconds": round(python_seconds, 6),
            "vector_seconds": round(vector_seconds, 6),
            "speedup": round(python_seconds / vector_seconds, 2),
        }
    )

    tagged = [
        (rng.choice("abc"), rng.randint(low, high)) for _ in range(batch)
    ]
    indexed = NearestConceptEngine(store, backend="indexed").backend
    vector = NearestConceptEngine(store, backend="vector").backend
    assert indexed.meet_tagged(tagged) == vector.meet_tagged(tagged)
    python_seconds = _best_of(lambda: indexed.meet_tagged(tagged), repeat)
    vector_seconds = _best_of(lambda: vector.meet_tagged(tagged), repeat)
    rows.append(
        {
            "dataset": "random",
            "workload": f"meet_tagged[{batch}]",
            "python_seconds": round(python_seconds, 6),
            "vector_seconds": round(vector_seconds, 6),
            "speedup": round(python_seconds / vector_seconds, 2),
        }
    )

    search = SearchEngine(store).index
    words = list(TECH_NOUNS)[:2]
    python_env = {"REPRO_KERNELS": "python"}

    def conjunctive() -> None:
        search.search_conjunctive(words)

    import os

    vector_seconds = _best_of(conjunctive, repeat)
    os.environ.update(python_env)
    try:
        python_seconds = _best_of(conjunctive, repeat)
    finally:
        os.environ.pop("REPRO_KERNELS", None)
    rows.append(
        {
            "dataset": "random",
            "workload": "search_conjunctive",
            "python_seconds": round(python_seconds, 6),
            "vector_seconds": round(vector_seconds, 6),
            "speedup": round(python_seconds / vector_seconds, 2),
        }
    )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: tiny sizes, 1 repeat"
    )
    parser.add_argument("--nodes", type=int, default=84_000,
                        help="random-tree size (the headline dataset)")
    parser.add_argument("--queries", type=int, default=150)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--batch", type=int, default=20_000,
                        help="micro-kernel batch size")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless the headline uncached-serving "
                        "speedup reaches this factor")
    parser.add_argument("--json", type=Path, default=JSON_PATH, metavar="PATH",
                        help=f"JSON artefact path (default: {JSON_PATH.name})")
    args = parser.parse_args(argv)

    if not kernels.available():
        print(
            "NumPy kernels unavailable (no numpy or REPRO_KERNELS=python); "
            "nothing to measure",
            file=sys.stderr,
        )
        return 1

    if args.quick:
        args.nodes, args.queries, args.repeat = 4_000, 25, 1
        args.batch = 2_000

    rng = random.Random(17)
    store = monet_transform(
        random_document(42, nodes=args.nodes, max_children=3)
    )
    print(f"random: {store.node_count} nodes", file=sys.stderr)
    words = list(TECH_NOUNS)
    queries = [tuple(rng.sample(words[:12], 2)) for _ in range(args.queries)]

    rows = [_serving_row("random", store, queries, args.repeat)]
    rows += _micro_rows(store, args.repeat, args.batch)

    headline = rows[0]
    table = render_table(
        ["dataset", "workload", "vector", "python/indexed", "speedup"],
        [
            [
                row["dataset"],
                row["workload"],
                f"{row.get('vector_qps', '')} qps"
                if "vector_qps" in row
                else f"{row['vector_seconds']:.4f}s",
                f"{row.get('indexed_qps', '')} qps"
                if "indexed_qps" in row
                else f"{row['python_seconds']:.4f}s",
                f"{row['speedup']:.2f}x",
            ]
            for row in rows
        ],
        title="batch kernels: vector tier vs per-pair python",
    )
    print(table)
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(table + "\n", encoding="utf-8")
    written = write_json_report(
        args.json,
        "kernels",
        {
            "quick": args.quick,
            "nodes": args.nodes,
            "queries": args.queries,
            "repeat": args.repeat,
            "batch": args.batch,
            "kernel_tier": kernels.tier(),
            "limit": LIMIT,
        },
        rows,
    )
    print(f"[report written to {OUT_PATH} and {written}]")
    if headline["speedup"] < args.min_speedup:
        print(
            f"headline speedup {headline['speedup']}x below the "
            f"--min-speedup {args.min_speedup}x bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
