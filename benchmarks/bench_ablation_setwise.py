"""Ablation B — set-orientation: meet_S / meet vs pairwise loops.

§5 claims "the set-oriented version of the operator scales well, i.e.,
linear, with respect to the cardinality of the input sets".  The
pairwise alternative computes |O₁| × |O₂| LCAs (and produces the
combinatorially exploding un-minimal answer bag).  This ablation
sweeps the input cardinality on the DBLP store: year hits vs "ICDE"
hits, truncated to n elements per side.
"""

from __future__ import annotations

import pytest

from repro.baselines.naive_lca import naive_lca_pairs
from repro.bench.report import Series, render_ascii_plot, render_table
from repro.bench.timing import measure
from repro.core.meet_general import group_by_pid, meet_general
from repro.core.meet_sets import meet_sets

from conftest import write_report

CARDINALITIES = [25, 50, 100, 200, 400]


@pytest.fixture(scope="module")
def hit_sets(dblp_bench_store, dblp_bench_engine):
    """Two large homogeneous hit sets: year cdata vs booktitle cdata."""
    store = dblp_bench_store
    years = []
    for year in range(1984, 2000):
        years.extend(dblp_bench_engine.term_hits(str(year)).oids())
    icde = sorted(dblp_bench_engine.term_hits("ICDE").oids())
    # restrict each side to its dominant path so meet_S applies
    def dominant(oids):
        groups = group_by_pid(store, oids)
        best = max(groups.values(), key=len)
        return sorted(best)

    return store, dominant(years), dominant(icde)


@pytest.mark.parametrize("n", CARDINALITIES)
def test_meet_sets_scaling(benchmark, hit_sets, n):
    store, years, icde = hit_sets
    left, right = years[:n], icde[:n]
    benchmark(lambda: meet_sets(store, left, right))


@pytest.mark.parametrize("n", CARDINALITIES)
def test_meet_general_scaling(benchmark, hit_sets, n):
    store, years, icde = hit_sets
    relations = group_by_pid(store, years[:n] + icde[:n])
    benchmark(lambda: meet_general(store, relations))


@pytest.mark.parametrize("n", [25, 50, 100])
def test_pairwise_quadratic(benchmark, hit_sets, n):
    """The strategy Fig. 4 replaces (kept to n ≤ 100: it is O(n²))."""
    store, years, icde = hit_sets
    left, right = years[:n], icde[:n]
    benchmark(lambda: naive_lca_pairs(store, left, right))


def test_ablation_setwise_report(benchmark, hit_sets):
    store, years, icde = hit_sets

    def sweep():
        rows = []
        set_series = Series("meet_S (set-at-a-time)")
        pair_series = Series("pairwise LCA loop")
        for n in CARDINALITIES:
            left, right = years[:n], icde[:n]
            set_timing = measure(lambda: meet_sets(store, left, right), repeats=3)
            general_timing = measure(
                lambda: meet_general(store, group_by_pid(store, left + right)),
                repeats=3,
            )
            if n <= 100:
                pair_timing = measure(
                    lambda: naive_lca_pairs(store, left, right), repeats=1
                )
                pair_ms = f"{pair_timing.median_ms:.1f}"
                pair_rows = len(naive_lca_pairs(store, left, right))
                pair_series.add(n, pair_timing.median_ms)
            else:
                pair_ms, pair_rows = "—", "—"
            set_series.add(n, set_timing.median_ms)
            meets = len(meet_sets(store, left, right))
            rows.append(
                [
                    n,
                    f"{set_timing.median_ms:.2f}",
                    f"{general_timing.median_ms:.2f}",
                    pair_ms,
                    meets,
                    pair_rows,
                ]
            )
        return rows, set_series, pair_series

    rows, set_series, pair_series = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    table = render_table(
        [
            "n per side",
            "meet_S ms",
            "meet (Fig.5) ms",
            "pairwise ms",
            "meet_S results",
            "pairwise rows",
        ],
        rows,
        title="Ablation B — set-oriented meet vs pairwise loops (DBLP)",
    )
    plot = render_ascii_plot(
        [set_series, pair_series],
        title="set-at-a-time vs pairwise (elapsed ms vs input cardinality)",
        x_label="n per side",
        y_label="ms",
    )
    write_report("ablation_setwise", table + "\n\n" + plot)

    # Shape: meet_S scales ~linearly (per-element cost roughly flat) …
    per_element = [float(r[1]) / r[0] for r in rows]
    assert max(per_element) <= 8 * min(per_element)
    # … while the pairwise loop's result bag is the full cross product.
    for r in rows:
        if r[5] != "—":
            assert r[5] == r[0] * r[0] or r[5] >= r[0]
