#!/usr/bin/env python
"""Bench: end-to-end HTTP/JSON serving vs in-process ``Database`` calls.

PR 4 put one network front door (``repro serve``) over the serving
path that PRs 1–3 made fast; this bench prices the door.  On the
largest bundled dataset (the 84k-node random tree, indexed backend)
it measures nearest-concept queries/sec in four regimes:

* ``inproc``      — ``Database.nearest`` called directly (the facade
  tax over the bare engine is itself differentially checked to be
  zero answers-wise; this row is the ceiling).
* ``http-seq``    — one client, one persistent HTTP/1.1 connection,
  requests issued back-to-back.  The per-request HTTP tax.
* ``http-conc8``  — 8 client threads, one persistent connection each,
  against the ``ThreadingHTTPServer``.  Thread-per-connection scaling
  (GIL-bound: compute does not parallelize, but requests overlap
  serialization with compute).
* ``http-conc8-cached`` — the same concurrent stream with the shared
  result cache enabled: the steady state of a server answering
  repeating traffic.

A differential check asserts the HTTP answers equal the in-process
envelopes (identical ranked answers, identical ranking keys) before
anything is timed.

Output: a fixed-width table (``benchmarks/out/bench_http_serving.txt``)
plus the machine-readable ``BENCH_http_serving.json`` trajectory
artefact at the repo root (CI smoke: ``--quick``).
"""

from __future__ import annotations

import argparse
import http.client
import json
import random
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import Database, DatabaseOptions, ReproServer
from repro.api.envelopes import NearestRequest, ResultEnvelope
from repro.bench.report import render_table, write_json_report
from repro.datasets.randomtree import random_document
from repro.datasets.textpool import TECH_NOUNS
from repro.monet.transform import monet_transform

REPO_ROOT = Path(__file__).resolve().parent.parent
OUT_PATH = Path(__file__).parent / "out" / "bench_http_serving.txt"
JSON_PATH = REPO_ROOT / "BENCH_http_serving.json"

LIMIT = 5


def _time(task: Callable[[], object]) -> float:
    start = time.perf_counter()
    task()
    return time.perf_counter() - start


def _best_of(task: Callable[[], object], repeat: int) -> float:
    return min(_time(task) for _ in range(repeat))


def _request_payload(terms: Sequence[str]) -> Dict[str, object]:
    return {"terms": list(terms), "limit": LIMIT}


class _Client:
    """One persistent HTTP/1.1 connection posting nearest requests."""

    def __init__(self, host: str, port: int):
        self.connection = http.client.HTTPConnection(host, port)

    def nearest(self, terms: Sequence[str]) -> Dict[str, object]:
        self.connection.request(
            "POST",
            "/v1/nearest",
            body=json.dumps(_request_payload(terms)),
            headers={"Content-Type": "application/json"},
        )
        response = self.connection.getresponse()
        body = response.read()
        if response.status != 200:
            raise AssertionError(
                f"HTTP {response.status} for {terms!r}: {body[:200]!r}"
            )
        return json.loads(body)

    def close(self) -> None:
        self.connection.close()


def _check_differential(
    database: Database, server: ReproServer, queries: Sequence[Tuple[str, str]]
) -> None:
    """HTTP answers must equal in-process envelopes before timing."""
    client = _Client(server.host, server.port)
    try:
        for terms in queries:
            local = database.nearest(
                NearestRequest(terms=terms, limit=LIMIT)
            )
            remote = ResultEnvelope.from_dict(client.nearest(terms))
            if list(remote.answers) != list(local.answers):
                raise AssertionError(
                    f"differential failure on {terms!r}: HTTP and "
                    "in-process answers disagree"
                )
    finally:
        client.close()


def _run_http(
    server: ReproServer,
    queries: Sequence[Tuple[str, str]],
    clients: int,
) -> None:
    if clients == 1:
        client = _Client(server.host, server.port)
        try:
            for terms in queries:
                client.nearest(terms)
        finally:
            client.close()
        return
    pool_clients = [_Client(server.host, server.port) for _ in range(clients)]
    try:
        def worker(index: int) -> None:
            client = pool_clients[index % clients]
            for position in range(index, len(queries), clients):
                client.nearest(queries[position])

        with ThreadPoolExecutor(max_workers=clients) as pool:
            list(pool.map(worker, range(clients)))
    finally:
        for client in pool_clients:
            client.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: tiny sizes, 1 repeat"
    )
    parser.add_argument("--nodes", type=int, default=60_000,
                        help="random-tree size (the largest dataset)")
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--json", type=Path, default=JSON_PATH, metavar="PATH",
                        help=f"JSON artefact path (default: {JSON_PATH.name})")
    args = parser.parse_args(argv)

    if args.quick:
        args.nodes, args.queries, args.repeat = 3_000, 30, 1

    rng = random.Random(17)
    store = monet_transform(
        random_document(42, nodes=args.nodes, max_children=3)
    )
    print(
        f"random: {store.node_count} nodes, "
        f"{len(store.summary) - 1} paths", file=sys.stderr
    )
    words = list(TECH_NOUNS)[:12]
    queries = [tuple(rng.sample(words, 2)) for _ in range(args.queries)]

    uncached = Database(
        store, options=DatabaseOptions(backend="indexed", cache=None)
    )
    cached = Database(
        store,
        options=DatabaseOptions(
            backend="indexed", cache=max(args.queries * 2, 64)
        ),
    )

    rows: List[Dict[str, object]] = []

    def add_row(workload: str, clients: int, seconds: float) -> None:
        rows.append(
            {
                "dataset": "random",
                "workload": workload,
                "clients": clients,
                "queries": len(queries),
                "seconds": round(seconds, 6),
                "qps": round(len(queries) / seconds, 2),
            }
        )

    with ReproServer(
        {"random": uncached, "random-cached": cached},
        default="random",
        port=0,
    ) as server:
        _check_differential(
            uncached, server, queries[: min(len(queries), 20)]
        )

        add_row(
            "inproc",
            0,
            _best_of(
                lambda: [
                    uncached.nearest(NearestRequest(terms=terms, limit=LIMIT))
                    for terms in queries
                ],
                args.repeat,
            ),
        )
        add_row(
            "http-seq", 1, _best_of(lambda: _run_http(server, queries, 1), args.repeat)
        )
        add_row(
            f"http-conc{args.clients}",
            args.clients,
            _best_of(
                lambda: _run_http(server, queries, args.clients), args.repeat
            ),
        )

        # The cached collection answers the same stream from the
        # result cache — steady-state repeating traffic.
        cached_client = _Client(server.host, server.port)
        try:
            for terms in queries:  # populate
                payload = _request_payload(terms)
                payload["collection"] = "random-cached"
                cached_client.connection.request(
                    "POST", "/v1/nearest", body=json.dumps(payload),
                    headers={"Content-Type": "application/json"},
                )
                response = cached_client.connection.getresponse()
                response.read()
                assert response.status == 200
        finally:
            cached_client.close()

        cached_queries = [
            (*terms, "random-cached") for terms in queries
        ]

        def run_cached() -> None:
            clients = [
                _Client(server.host, server.port)
                for _ in range(args.clients)
            ]
            try:
                def worker(index: int) -> None:
                    client = clients[index % args.clients]
                    for position in range(
                        index, len(cached_queries), args.clients
                    ):
                        *terms, collection = cached_queries[position]
                        payload = _request_payload(terms)
                        payload["collection"] = collection
                        client.connection.request(
                            "POST", "/v1/nearest",
                            body=json.dumps(payload),
                            headers={"Content-Type": "application/json"},
                        )
                        response = client.connection.getresponse()
                        response.read()
                        assert response.status == 200

                with ThreadPoolExecutor(max_workers=args.clients) as pool:
                    list(pool.map(worker, range(args.clients)))
            finally:
                for client in clients:
                    client.close()

        add_row(
            f"http-conc{args.clients}-cached",
            args.clients,
            _best_of(run_cached, args.repeat),
        )

    inproc_qps = rows[0]["qps"]
    for row in rows:
        row["vs_inproc"] = round(row["qps"] / inproc_qps, 3)

    table = render_table(
        ["dataset", "workload", "clients", "queries", "qps", "vs inproc"],
        [
            [
                row["dataset"],
                row["workload"],
                row["clients"],
                row["queries"],
                f"{row['qps']:.0f}",
                f"{row['vs_inproc']:.2f}x",
            ]
            for row in rows
        ],
        title="HTTP/JSON serving vs in-process Database calls (nearest, indexed)",
    )
    print(table)
    OUT_PATH.parent.mkdir(exist_ok=True)
    OUT_PATH.write_text(table + "\n", encoding="utf-8")
    written = write_json_report(
        args.json,
        "http_serving",
        {
            "quick": args.quick,
            "nodes": args.nodes,
            "queries": args.queries,
            "clients": args.clients,
            "repeat": args.repeat,
            "backend": "indexed",
            "limit": LIMIT,
        },
        rows,
    )
    print(f"[report written to {OUT_PATH} and {written}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
