"""Remote shard workers: the socket peers of the execution layer.

:class:`ShardWorkerServer` hosts one or more
:class:`~repro.exec.service.ShardService`\\ s behind the framed socket
protocol of :mod:`repro.exec.transport` — thread per connection, one
request frame in, one response frame out.  It is what ``repro
shard-worker`` runs as a standalone process on any host; tests also
run it in-thread.

:class:`RemoteShardClient` is the caller's end: one TCP connection,
one in-flight request at a time, request ids matched on receipt (a
stale or torn stream can only surface as a typed error, never as the
wrong answer).  Clients are deliberately *not* thread-safe — the
cluster executor pools them per replica.

Worker responses carry the worker's process-local index-build
counters (the same ``_worker`` envelope the process pool uses), so
``/v1/stats`` keeps its one process-tree view when shards move out of
process.

A remote *application* error (the shard op itself raised — a bad
query, an unknown op) comes back as :class:`RemoteOpError` carrying
the original error ``code``; it is **not** a failover trigger, unlike
transport faults.
"""

from __future__ import annotations

import logging
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path as FsPath
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..datamodel.errors import ReproError
from ..obs.logs import log_event
from .deadline import Deadline, DeadlineExceededError
from .service import ShardService
from .transport import (
    KIND_REQUEST,
    KIND_RESPONSE,
    ConnectionClosedError,
    FrameError,
    TransportError,
    connect,
    recv_frame,
    send_frame,
)

__all__ = [
    "READY_PREFIX",
    "RemoteOpError",
    "RemoteShardClient",
    "ShardWorkerServer",
    "WorkerProcess",
    "format_address",
    "parse_address",
    "services_from_bundles",
    "spawn_worker_process",
]

_logger = logging.getLogger("repro.exec.remote")

#: The one line a worker process prints once it is accepting
#: connections: ``READY_PREFIX host:port`` (parsed by spawners).
READY_PREFIX = "shard-worker listening on"


class RemoteOpError(ReproError):
    """A shard op failed *on the worker* (application-level error).

    Carries the remote error's machine-readable ``code``; retrying on
    another replica would fail identically, so the cluster executor
    re-raises it instead of failing over.
    """

    def __init__(self, message: str, code: str = "error"):
        super().__init__(message)
        self.code = code


def parse_address(text: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` with a precise error."""
    host, separator, port = text.rpartition(":")
    if not separator or not host:
        raise ReproError(
            f"invalid worker address {text!r}: expected HOST:PORT"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ReproError(
            f"invalid worker address {text!r}: port is not an integer"
        ) from None


def format_address(address: Tuple[str, int]) -> str:
    return f"{address[0]}:{address[1]}"


# ---------------------------------------------------------------------------
# The worker side.
# ---------------------------------------------------------------------------


def _worker_counters() -> Dict[str, int]:
    from ..core.lca_index import lca_index_cache_info
    from ..fulltext.index import fulltext_index_cache_info

    return {
        "pid": os.getpid(),
        "lca_builds": lca_index_cache_info().builds,
        "fulltext_builds": fulltext_index_cache_info().builds,
    }


class ShardWorkerServer:
    """Serve one or more shard services over the framed socket protocol.

    ``services`` maps shard ids to ready :class:`ShardService`\\ s (a
    worker may host one shard — the replica deployment — or all of
    them).  ``port=0`` binds an ephemeral port; read :attr:`address`
    after construction.
    """

    def __init__(
        self,
        services: Mapping[int, ShardService],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        if not services:
            raise ReproError("a shard worker needs at least one service")
        self.services: Dict[int, ShardService] = dict(services)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]
        self._shutdown = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ShardWorkerServer":
        """Accept connections from a daemon thread (tests, embedding)."""
        self._accept_thread = threading.Thread(
            target=self.serve_forever,
            name=f"shard-worker-{self.address[1]}",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Block accepting connections until :meth:`shutdown`."""
        self._listener.settimeout(0.2)
        try:
            while not self._shutdown.is_set():
                try:
                    connection, _peer = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listener closed under us
                connection.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
                threading.Thread(
                    target=self._serve_connection,
                    args=(connection,),
                    daemon=True,
                ).start()
        finally:
            self._listener.close()

    def shutdown(self) -> None:
        self._shutdown.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None

    def __enter__(self) -> "ShardWorkerServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- per-connection loop --------------------------------------------
    def _serve_connection(self, connection: socket.socket) -> None:
        try:
            while not self._shutdown.is_set():
                try:
                    kind, request_id, message = recv_frame(connection)
                except ConnectionClosedError:
                    return
                except TransportError as exc:
                    # Torn/corrupt frame: stream state unknown.
                    log_event(
                        _logger,
                        logging.DEBUG,
                        "dropping connection on torn frame",
                        error=str(exc),
                    )
                    return
                if kind != KIND_REQUEST or not isinstance(message, dict):
                    log_event(
                        _logger,
                        logging.DEBUG,
                        "dropping connection on protocol violation",
                        kind=kind,
                    )
                    return
                response = self._answer(message)
                try:
                    send_frame(connection, KIND_RESPONSE, request_id, response)
                except TransportError:
                    return  # caller went away (deadline, kill, ...)
        finally:
            try:
                connection.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def _answer(self, message: Dict[str, object]) -> Dict[str, object]:
        deadline_ms = message.get("deadline_ms")
        if isinstance(deadline_ms, (int, float)) and deadline_ms <= 0:
            # The budget was spent in transit; refuse before computing.
            return {
                "ok": False,
                "error": "request arrived with its deadline already spent",
                "code": "deadline_exceeded",
            }
        try:
            shard_id = int(message["shard"])
            op = str(message["op"])
            params = message.get("params") or {}
            service = self.services.get(shard_id)
            if service is None:
                raise ReproError(
                    f"this worker does not host shard {shard_id} "
                    f"(hosts {sorted(self.services)})"
                )
            response = service.handle(op, dict(params))
            response["_worker"] = _worker_counters()
            return {"ok": True, "response": response}
        except ReproError as exc:
            return {"ok": False, "error": str(exc), "code": exc.code}
        except Exception as exc:  # pragma: no cover - defensive
            return {"ok": False, "error": f"internal error: {exc}", "code": "internal"}


def services_from_bundles(
    bundle_paths: Sequence[Union[str, FsPath]],
    *,
    shard_ids: Optional[Sequence[int]] = None,
    case_sensitive: Optional[bool] = None,
    backend: Optional[str] = None,
    use_mmap: bool = True,
) -> Dict[int, ShardService]:
    """Load ``.snap`` shard bundles into ready services.

    Shard ids default to each bundle's recorded ``shard_index`` (the
    handoff :func:`repro.snapshot.sharded.write_shard_bundles` stamps
    into every bundle), so a worker started with just a bundle path
    serves the right shard; the case mode likewise follows the bundle
    unless overridden.
    """
    from ..snapshot.codec import read_snapshot

    services: Dict[int, ShardService] = {}
    for index, path in enumerate(bundle_paths):
        snapshot = read_snapshot(path, use_mmap=use_mmap)
        if shard_ids is not None:
            shard_id = int(shard_ids[index])
        else:
            recorded = snapshot.meta.get("shard_index")
            shard_id = int(recorded) if isinstance(recorded, int) else index
        if shard_id in services:
            raise ReproError(
                f"two bundles claim shard {shard_id}; pass explicit "
                "--shard-id values"
            )
        effective_case = (
            snapshot.fulltext_index.case_sensitive
            if case_sensitive is None
            else bool(case_sensitive)
        )
        services[shard_id] = ShardService(
            snapshot.store,
            shard_id=shard_id,
            case_sensitive=effective_case,
            backend=backend or "indexed",
        )
    return services


# ---------------------------------------------------------------------------
# The caller side.
# ---------------------------------------------------------------------------


class RemoteShardClient:
    """One connection to one worker; one in-flight request at a time.

    Any fault — timeout, torn frame, closed connection, id mismatch —
    poisons the connection (the stream may hold a stale response), so
    the client closes it and the error propagates as a typed,
    retryable :class:`TransportError`.  Callers pool clients rather
    than share one across threads.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        *,
        connect_timeout: float = 5.0,
    ):
        self.address = address
        self._connect_timeout = connect_timeout
        self._sock: Optional[socket.socket] = None
        self._request_id = 0

    def _socket(self) -> socket.socket:
        if self._sock is None:
            self._sock = connect(self.address, timeout=self._connect_timeout)
        return self._sock

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def call(
        self,
        shard_id: int,
        op: str,
        params: Dict[str, object],
        *,
        deadline: Optional[Deadline] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        """Run one shard op remotely; returns the response dict.

        ``timeout`` bounds this single attempt (the failover budget);
        ``deadline`` is the whole request's budget — whichever is
        tighter governs every blocking socket op.
        """
        self._request_id += 1
        request_id = self._request_id
        message = {
            "shard": shard_id,
            "op": op,
            "params": params,
            "deadline_ms": (
                None if deadline is None
                else round(deadline.remaining() * 1000, 3)
            ),
        }
        try:
            sock = self._socket()
            send_frame(
                sock, KIND_REQUEST, request_id, message,
                deadline=deadline, timeout=timeout,
            )
            kind, echoed_id, payload = recv_frame(
                sock, deadline=deadline, timeout=timeout
            )
        except (TransportError, DeadlineExceededError):
            self.close()
            raise
        if kind != KIND_RESPONSE or echoed_id != request_id:
            self.close()
            raise FrameError(
                f"response stream desynchronized (wanted request "
                f"{request_id}, got kind={kind} id={echoed_id})"
            )
        if not isinstance(payload, dict):
            self.close()
            raise FrameError("response payload is not an object")
        if payload.get("ok"):
            response = payload.get("response")
            if not isinstance(response, dict):
                self.close()
                raise FrameError("ok response carries no response object")
            return response
        message_text = str(payload.get("error", "unknown worker error"))
        code = str(payload.get("code", "error"))
        if code == "deadline_exceeded":
            raise DeadlineExceededError(message_text)
        raise RemoteOpError(message_text, code=code)

    def ping(
        self,
        shard_id: int,
        *,
        timeout: float = 2.0,
    ) -> Dict[str, object]:
        """A cheap liveness probe against one hosted shard."""
        return self.call(shard_id, "ping", {}, timeout=timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RemoteShardClient {format_address(self.address)}>"


# ---------------------------------------------------------------------------
# Spawning workers as real processes (the localhost cluster).
# ---------------------------------------------------------------------------


class WorkerProcess:
    """A managed ``repro shard-worker`` subprocess."""

    def __init__(self, process: subprocess.Popen, address: Tuple[str, int]):
        self.process = process
        self.address = address

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        if self.alive:
            self.process.kill()
        self.process.wait(timeout=10)

    def terminate(self) -> None:
        if self.alive:
            self.process.terminate()
            try:
                self.process.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.kill()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return (
            f"<WorkerProcess pid={self.pid} "
            f"{format_address(self.address)} {state}>"
        )


def spawn_worker_process(
    bundle_paths: Sequence[Union[str, FsPath]],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    shard_ids: Optional[Sequence[int]] = None,
    backend: Optional[str] = None,
    case_sensitive: Optional[bool] = None,
    ready_timeout: float = 30.0,
) -> WorkerProcess:
    """Start ``repro shard-worker`` on the given bundles, wait ready.

    The worker prints ``shard-worker listening on HOST:PORT`` once its
    listener is bound; this parses that line (so ``port=0`` ephemeral
    binds work) and returns a handle that can kill or respawn it.
    """
    command = [sys.executable, "-m", "repro", "shard-worker"]
    for path in bundle_paths:
        command += ["--bundle", str(path)]
    if shard_ids is not None:
        for shard_id in shard_ids:
            command += ["--shard-id", str(shard_id)]
    command += ["--host", host, "--port", str(port)]
    if backend:
        command += ["--backend", backend]
    if case_sensitive is not None:
        command += [
            "--case-sensitive" if case_sensitive else "--no-case-sensitive"
        ]
    env = dict(os.environ)
    src_root = str(FsPath(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    if src_root not in (existing or "").split(os.pathsep):
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    # Bounded wait for the ready line: select() the pipe so a worker
    # that hangs while loading its bundles cannot hang the spawner
    # (the cluster's health prober calls this to respawn replicas).
    import selectors

    selector = selectors.DefaultSelector()
    selector.register(process.stdout, selectors.EVENT_READ)
    deadline = time.monotonic() + ready_timeout
    line = ""
    try:
        while time.monotonic() < deadline:
            if not selector.select(timeout=0.2):
                if process.poll() is not None:
                    break
                continue
            line = process.stdout.readline()
            if not line:
                break
            if line.startswith(READY_PREFIX):
                address = parse_address(line[len(READY_PREFIX):].strip())
                return WorkerProcess(process, address)
    finally:
        selector.close()
    process.kill()
    raise TransportError(
        "shard worker failed to start "
        f"(last output line: {line.strip()!r})"
    )
