"""N-way shard replicas with health-checked failover.

:class:`ClusterExecutor` implements the :class:`~repro.exec.executors.
Executor` protocol over *remote* shard workers (:mod:`repro.exec.
remote`): each shard is served by one or more replicas, and a scatter
survives any single replica failing — by timeout, torn frame, dropped
connection or a killed process — as long as one replica per shard
stays reachable within the request's deadline.

Per replica, a **circuit breaker**: consecutive transport failures
open the circuit (the replica is skipped without paying a connect
timeout per request), and a background **heartbeat prober** pings it
back to health.  Failover between replicas retries with
jittered exponential backoff bounded by the request deadline.
Permanent failure is handled per replica kind:

* **managed** replicas (spawned by this executor, or anything with a
  ``spawn`` callback) are *respawned* — a dead process is restarted
  from its shard bundles, up to ``max_respawns`` times, after which
  the replica is **evicted**;
* **unmanaged** replicas (bare addresses — a worker on another host)
  are never evicted: the circuit stays open and the prober keeps
  checking, so an operator restarting the remote worker heals the
  cluster without intervention here.

Answers are byte-identical to the serial executor by construction:
replicas of a shard serve the *same* bundle, and which replica
answers never affects the response — the chaos suite
(:mod:`tests.exec.chaos`) asserts exactly that under injected faults.
"""

from __future__ import annotations

import logging
import random
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..datamodel.errors import ReproError
from ..obs.logs import log_event
from ..obs.metrics import CallbackGauge, Counter
from .deadline import Deadline, DeadlineExceededError, current_deadline
from .executors import ExecutorError, ShardOp
from .remote import (
    RemoteOpError,
    RemoteShardClient,
    WorkerProcess,
    format_address,
)
from .transport import TransportError, sleep_within_deadline

__all__ = ["ClusterExecutor", "ReplicaSpec", "Replica"]

#: Replica circuit states.
_logger = logging.getLogger("repro.exec.cluster")

#: Circuit state as a numeric gauge level for ``/v1/metrics``.
_STATE_LEVELS = {"healthy": 0, "open": 1, "evicted": 2}

_HEALTHY = "healthy"
_OPEN = "open"  # circuit open: skipped by requests, probed by heartbeat
_EVICTED = "evicted"  # permanent: a managed replica out of respawns


class ReplicaSpec:
    """How to reach (and possibly revive) one replica of one shard.

    ``address`` is a ``(host, port)`` tuple; ``spawn`` is an optional
    zero-argument callable returning a fresh
    :class:`~repro.exec.remote.WorkerProcess` — its presence makes the
    replica *managed* (respawnable).  Pass one or the other: a spec
    with only ``spawn`` is started by the executor at construction.
    """

    __slots__ = ("address", "spawn")

    def __init__(
        self,
        address: Optional[Tuple[str, int]] = None,
        spawn: Optional[Callable[[], WorkerProcess]] = None,
    ):
        if address is None and spawn is None:
            raise ReproError("a replica spec needs an address or a spawner")
        self.address = address
        self.spawn = spawn


class Replica:
    """Live state of one replica: circuit breaker, pool, process."""

    def __init__(
        self,
        shard_id: int,
        index: int,
        spec: ReplicaSpec,
        *,
        connect_timeout: float,
    ):
        self.shard_id = shard_id
        self.index = index
        self.spec = spec
        self.address = spec.address
        self.process: Optional[WorkerProcess] = None
        self.state = _HEALTHY
        self.open_until = 0.0
        self.consecutive_failures = 0
        self.failures = 0
        self.respawns = 0
        self.last_heartbeat: Optional[float] = None
        self._connect_timeout = connect_timeout
        self._idle: List[RemoteShardClient] = []
        self._lock = threading.Lock()

    @property
    def managed(self) -> bool:
        return self.spec.spawn is not None

    # -- connection pool ------------------------------------------------
    def acquire(self) -> RemoteShardClient:
        with self._lock:
            if self._idle:
                return self._idle.pop()
            address = self.address
        if address is None:
            raise TransportError(
                f"replica {self.name} has no address (never spawned)"
            )
        return RemoteShardClient(address, connect_timeout=self._connect_timeout)

    def release(self, client: RemoteShardClient) -> None:
        with self._lock:
            if client.address == self.address and len(self._idle) < 8:
                self._idle.append(client)
                return
        client.close()

    def discard_pool(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for client in idle:
            client.close()

    # -- naming ---------------------------------------------------------
    @property
    def name(self) -> str:
        where = (
            format_address(self.address) if self.address else "<unspawned>"
        )
        return f"shard{self.shard_id}/replica{self.index}@{where}"

    def snapshot(self) -> Dict[str, object]:
        """One JSON-ready health row (the ``/readyz`` detail)."""
        return {
            "replica": self.index,
            "address": (
                format_address(self.address) if self.address else None
            ),
            "state": self.state,
            "managed": self.managed,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "respawns": self.respawns,
            "pid": self.process.pid if self.process is not None else None,
            "last_heartbeat_age_ms": (
                None
                if self.last_heartbeat is None
                else round((time.monotonic() - self.last_heartbeat) * 1000, 1)
            ),
        }


class ClusterExecutor:
    """Scatter-gather over replicated socket shard workers."""

    name = "cluster"

    def __init__(
        self,
        replica_specs: Sequence[Sequence[ReplicaSpec]],
        *,
        connect_timeout: float = 2.0,
        attempt_timeout: float = 30.0,
        failure_threshold: int = 2,
        open_seconds: float = 1.0,
        probe_interval: float = 0.25,
        backoff_base: float = 0.02,
        backoff_cap: float = 0.25,
        max_respawns: int = 3,
        seed: Optional[int] = None,
    ):
        if not replica_specs:
            raise ExecutorError("cluster executor needs at least one shard")
        for shard_id, specs in enumerate(replica_specs):
            if not specs:
                raise ExecutorError(
                    f"shard {shard_id} has no replicas configured"
                )
        self.shard_count = len(replica_specs)
        self._connect_timeout = connect_timeout
        self._attempt_timeout = attempt_timeout
        self._failure_threshold = max(1, int(failure_threshold))
        self._open_seconds = open_seconds
        self._probe_interval = probe_interval
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._max_respawns = max(0, int(max_respawns))
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._rr: List[int] = [0] * self.shard_count
        self._worker_stats: Dict[Tuple[str, int], Dict[str, int]] = {}
        self._failovers = Counter(
            "repro_failovers_total",
            "Requests retried on another replica after a transport failure.",
        )
        self._shed = Counter(
            "repro_cluster_shed_total",
            "Requests that failed because a shard had no healthy replica.",
        )
        self._respawn_count = Counter(
            "repro_respawns_total",
            "Managed replica worker processes respawned after dying.",
        )
        self._circuit_gauge = CallbackGauge(
            "repro_replica_circuit_state",
            "Replica circuit state (0=healthy, 1=open, 2=evicted).",
            ("shard", "replica"),
            self._circuit_levels,
        )
        self._closed = False
        self.replicas: List[List[Replica]] = [
            [
                Replica(
                    shard_id, index, spec,
                    connect_timeout=connect_timeout,
                )
                for index, spec in enumerate(specs)
            ]
            for shard_id, specs in enumerate(replica_specs)
        ]
        # Spawn managed replicas that arrived without an address.
        try:
            for shard in self.replicas:
                for replica in shard:
                    if replica.address is None:
                        self._spawn(replica, initial=True)
        except BaseException:
            self.close()
            raise
        self._prober = threading.Thread(
            target=self._probe_loop, name="cluster-prober", daemon=True
        )
        self._prober_stop = threading.Event()
        self._prober.start()

    # -- the executor surface -------------------------------------------
    def scatter(self, ops: Sequence[ShardOp]) -> List[Dict[str, object]]:
        if self._closed:
            raise ExecutorError(
                "the cluster executor has been closed; reopen the "
                "database to serve again"
            )
        deadline = current_deadline()
        if len(ops) <= 1:
            return [
                self._call_with_failover(shard_id, op, params, deadline)
                for shard_id, op, params in ops
            ]
        # Fan out concurrently: shard round-trips overlap, so a scatter
        # costs one network round trip, not shard_count of them.
        results: List[Optional[Dict[str, object]]] = [None] * len(ops)
        errors: List[BaseException] = []
        threads = []

        def _run(slot: int, shard_id: int, op: str, params: Dict[str, object]):
            try:
                results[slot] = self._call_with_failover(
                    shard_id, op, params, deadline
                )
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)

        for slot, (shard_id, op, params) in enumerate(ops):
            thread = threading.Thread(
                target=_run, args=(slot, shard_id, op, params), daemon=True
            )
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results  # type: ignore[return-value]

    def broadcast(self, op: str, params: Dict[str, object]) -> List[Dict[str, object]]:
        return self.scatter([(i, op, dict(params)) for i in range(self.shard_count)])

    # -- failover core ---------------------------------------------------
    def _call_with_failover(
        self,
        shard_id: int,
        op: str,
        params: Dict[str, object],
        deadline: Optional[Deadline],
    ) -> Dict[str, object]:
        with self._lock:
            offset = self._rr[shard_id]
            self._rr[shard_id] = (offset + 1) % len(self.replicas[shard_id])
        shard = self.replicas[shard_id]
        order = [shard[(offset + i) % len(shard)] for i in range(len(shard))]
        last_error: Optional[BaseException] = None
        attempt = 0
        for replica in order:
            if deadline is not None and deadline.expired:
                raise DeadlineExceededError(
                    f"shard {shard_id} op {op!r} ran out of deadline "
                    f"during failover"
                )
            if not self._available(replica):
                continue
            client = None
            try:
                client = replica.acquire()
                timeout = self._attempt_timeout
                response = client.call(
                    shard_id, op, params, deadline=deadline, timeout=timeout
                )
                replica.release(client)
                self._mark_ok(replica)
                return self._harvest(replica, response)
            except (TransportError, OSError) as exc:
                if client is not None:
                    client.close()
                self._mark_failure(replica)
                last_error = exc
                attempt += 1
                self._failovers.inc()
                log_event(
                    _logger,
                    logging.DEBUG,
                    "failover",
                    trace_id=params.get("_trace"),
                    shard=shard_id,
                    op=op,
                    replica=replica.name,
                    attempt=attempt,
                    error=str(exc),
                )
                # Jittered exponential backoff before the next replica
                # (bounded by the deadline: shedding beats hanging).
                pause = min(
                    self._backoff_cap,
                    self._backoff_base * (2 ** (attempt - 1)),
                ) * (0.5 + self._rng.random())
                sleep_within_deadline(pause, deadline)
            except DeadlineExceededError:
                if client is not None:
                    client.close()
                raise
            except RemoteOpError:
                # The op itself failed (bad query, unknown op): every
                # replica would refuse identically — not a failover.
                if client is not None:
                    replica.release(client)
                self._mark_ok(replica)
                raise
        self._shed.inc()
        log_event(
            _logger,
            logging.WARNING,
            "shard unavailable",
            trace_id=params.get("_trace"),
            shard=shard_id,
            op=op,
            replicas=len(shard),
            error=str(last_error) if last_error else None,
        )
        detail = f": last error: {last_error}" if last_error else ""
        raise ExecutorError(
            f"shard {shard_id} has no healthy replica "
            f"({len(shard)} configured){detail}"
        )

    # -- circuit breaker -------------------------------------------------
    def _available(self, replica: Replica) -> bool:
        with self._lock:
            if replica.state == _EVICTED:
                return False
            if replica.state == _OPEN:
                # Half-open: one caller may try again after the window.
                if time.monotonic() < replica.open_until:
                    return False
                replica.open_until = time.monotonic() + self._open_seconds
                return True
            return True

    def _mark_ok(self, replica: Replica) -> None:
        with self._lock:
            replica.consecutive_failures = 0
            replica.last_heartbeat = time.monotonic()
            if replica.state == _OPEN:
                replica.state = _HEALTHY

    def _mark_failure(self, replica: Replica) -> None:
        opened = False
        with self._lock:
            replica.failures += 1
            replica.consecutive_failures += 1
            if (
                replica.state == _HEALTHY
                and replica.consecutive_failures >= self._failure_threshold
            ):
                replica.state = _OPEN
                replica.open_until = time.monotonic() + self._open_seconds
                opened = True
        replica.discard_pool()
        if opened:
            log_event(
                _logger,
                logging.DEBUG,
                "circuit opened",
                replica=replica.name,
                consecutive_failures=replica.consecutive_failures,
            )

    # -- heartbeat prober ------------------------------------------------
    def _probe_loop(self) -> None:
        while not self._prober_stop.wait(self._probe_interval):
            for shard in self.replicas:
                for replica in shard:
                    if self._prober_stop.is_set():
                        return
                    try:
                        self._probe(replica)
                    except Exception:  # pragma: no cover - defensive
                        pass

    def _probe(self, replica: Replica) -> None:
        with self._lock:
            state = replica.state
        if state == _EVICTED:
            return
        # A managed replica whose process died is respawned (or
        # evicted once out of budget) without waiting for a timeout.
        if replica.managed and (
            replica.process is None or not replica.process.alive
        ):
            self._respawn(replica)
            return
        if state == _HEALTHY:
            # Heartbeat healthy replicas only when stale: the probe is
            # for *detecting* silent death, not extra steady-state load.
            last = replica.last_heartbeat
            if last is not None and (
                time.monotonic() - last < 4 * self._probe_interval
            ):
                return
        client = None
        try:
            client = replica.acquire()
            response = client.ping(
                replica.shard_id, timeout=self._connect_timeout
            )
            replica.release(client)
            self._harvest(replica, response)
            self._mark_ok(replica)
        except (TransportError, OSError, ReproError):
            if client is not None:
                client.close()
            self._mark_failure(replica)

    def _respawn(self, replica: Replica) -> None:
        with self._lock:
            if replica.respawns >= self._max_respawns:
                replica.state = _EVICTED
                evicted = True
            else:
                replica.respawns += 1
                evicted = False
        if evicted:
            log_event(
                _logger,
                logging.WARNING,
                "replica evicted",
                replica=replica.name,
                respawns=replica.respawns,
            )
            return
        self._respawn_count.inc()
        log_event(
            _logger,
            logging.DEBUG,
            "respawning replica",
            replica=replica.name,
            respawn=replica.respawns,
        )
        replica.discard_pool()
        old = replica.process
        if old is not None and old.alive:  # pragma: no cover - defensive
            old.kill()
        try:
            process = replica.spec.spawn()
        except Exception:
            # Spawn itself failed; stay OPEN, the next probe retries
            # (and the respawn budget above still bounds attempts).
            with self._lock:
                replica.state = _OPEN
                replica.open_until = time.monotonic() + self._open_seconds
            return
        with self._lock:
            replica.process = process
            replica.address = process.address
            replica.consecutive_failures = 0
            replica.last_heartbeat = time.monotonic()
            replica.state = _HEALTHY

    def _spawn(self, replica: Replica, *, initial: bool) -> None:
        process = replica.spec.spawn()
        replica.process = process
        replica.address = process.address
        replica.last_heartbeat = time.monotonic()

    # -- observability ----------------------------------------------------
    def _circuit_levels(self) -> List[Tuple[Dict[str, object], float]]:
        with self._lock:
            return [
                (
                    {"shard": shard_id, "replica": replica.index},
                    _STATE_LEVELS.get(replica.state, 1),
                )
                for shard_id, shard in enumerate(self.replicas)
                for replica in shard
            ]

    def metric_objects(self) -> List[object]:
        """Typed metrics: failovers, sheds, respawns, circuit states."""
        return [
            self._failovers,
            self._shed,
            self._respawn_count,
            self._circuit_gauge,
        ]

    def _harvest(
        self, replica: Replica, response: Dict[str, object]
    ) -> Dict[str, object]:
        worker = response.pop("_worker", None)
        if isinstance(worker, dict) and "pid" in worker:
            address = (
                format_address(replica.address) if replica.address else "?"
            )
            with self._lock:
                self._worker_stats[(address, int(worker["pid"]))] = {
                    "lca_builds": int(worker.get("lca_builds", 0)),
                    "fulltext_builds": int(worker.get("fulltext_builds", 0)),
                }
        return response

    def health(self) -> Dict[str, object]:
        """Per-shard replica status: the ``/readyz`` payload.

        ``degraded`` means at least one shard is down to its **last**
        healthy replica (the next failure loses availability);
        ``unavailable`` means some shard has none left.
        """
        shards = []
        worst = "ok"
        rank = {"ok": 0, "degraded": 1, "unavailable": 2}
        with self._lock:
            for shard_id, shard in enumerate(self.replicas):
                rows = [replica.snapshot() for replica in shard]
                healthy = sum(1 for row in rows if row["state"] == _HEALTHY)
                if healthy == 0:
                    status = "unavailable"
                elif healthy == 1 and len(rows) > 1:
                    status = "degraded"
                else:
                    status = "ok"
                if rank[status] > rank[worst]:
                    worst = status
                shards.append(
                    {
                        "shard": shard_id,
                        "status": status,
                        "healthy_replicas": healthy,
                        "replicas": rows,
                    }
                )
        return {"status": worst, "shards": shards}

    def stats(self) -> Dict[str, object]:
        with self._lock:
            workers = dict(self._worker_stats)
            live = sum(
                1
                for shard in self.replicas
                for replica in shard
                if replica.state == _HEALTHY
            )
            respawns = sum(
                replica.respawns
                for shard in self.replicas
                for replica in shard
            )
        health = self.health()
        return {
            "mode": self.name,
            "shards": self.shard_count,
            "workers": live,
            "replicas": health["shards"],
            "status": health["status"],
            "failovers": self._failovers.value,
            "shed": self._shed.value,
            "respawns": respawns,
            "index_builds": {
                "lca": sum(w["lca_builds"] for w in workers.values()),
                "fulltext": sum(
                    w["fulltext_builds"] for w in workers.values()
                ),
            },
        }

    def close(self) -> None:
        """Stop probing, close pools, terminate managed workers."""
        self._closed = True
        stop = getattr(self, "_prober_stop", None)
        if stop is not None:
            stop.set()
        prober = getattr(self, "_prober", None)
        if prober is not None and prober.is_alive():
            prober.join(timeout=5)
        for shard in self.replicas:
            for replica in shard:
                replica.discard_pool()
                if replica.process is not None:
                    try:
                        replica.process.terminate()
                    except Exception:  # pragma: no cover - defensive
                        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ClusterExecutor shards={self.shard_count} "
            f"replicas={[len(shard) for shard in self.replicas]}>"
        )
