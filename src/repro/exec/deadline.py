"""Per-request deadlines, propagated without threading a parameter.

A :class:`Deadline` is an absolute point on the monotonic clock.  The
front door opens a :func:`deadline_scope` around each admitted
request; every layer underneath — the coordinator, the executors, the
socket transport — reads :func:`current_deadline` and bounds its own
blocking operations by :meth:`Deadline.remaining`, so one budget
covers the whole scatter-gather tree without every call signature
growing a ``deadline=`` parameter.  The scope rides a
:class:`contextvars.ContextVar`, which threads started *inside* the
scope do not inherit automatically — the executors capture and re-pin
the deadline when they fan work out to their own pools.

Pure-python compute cannot be preempted, so enforcement is
cooperative: executors check between shard operations, and the socket
transport turns the remaining budget into socket timeouts (the one
place a request can genuinely block unboundedly).  A spent budget
raises :class:`DeadlineExceededError` (``code="deadline_exceeded"``,
retryable), which the server maps to 504.
"""

from __future__ import annotations

import contextvars
import math
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from ..datamodel.errors import ReproError

__all__ = [
    "Deadline",
    "DeadlineExceededError",
    "current_deadline",
    "deadline_scope",
    "remaining_budget",
]


class DeadlineExceededError(ReproError):
    """The request's time budget ran out before an answer was ready."""

    code = "deadline_exceeded"
    retryable = True


class Deadline:
    """An absolute expiry on the monotonic clock."""

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float):
        self.expires_at = float(expires_at)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        return cls(time.monotonic() + float(seconds))

    def remaining(self) -> float:
        """Seconds left; never negative (0.0 means expired)."""
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(
                f"{what} exceeded its deadline"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Deadline remaining={self.remaining():.3f}s>"


_current: contextvars.ContextVar[Optional[Deadline]] = contextvars.ContextVar(
    "repro_deadline", default=None
)


def current_deadline() -> Optional[Deadline]:
    """The deadline governing this context, or ``None`` (unbounded)."""
    return _current.get()


def remaining_budget(default: float = math.inf) -> float:
    """Seconds left on the current deadline (``default`` when unbounded)."""
    deadline = _current.get()
    return default if deadline is None else deadline.remaining()


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Pin ``deadline`` as the current one for the dynamic extent.

    ``None`` explicitly clears any inherited deadline (a background
    task spawned from a request-scoped context must not inherit the
    request's budget).
    """
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)
