"""Executors: where a sharded collection's scatter-gather work runs.

The :class:`Executor` protocol is the seam between the coordinator
(:mod:`repro.exec.coordinator`) and the hardware: a coordinator only
ever calls ``scatter([(shard_id, op, params), ...])`` and gets one
plain-data response per request, so the same coordinator code serves

* :class:`SerialExecutor` — handlers run in-process, in order.  Zero
  overhead, byte-identical to the monolithic engine, and the default;
* :class:`ParallelExecutor` — a ``concurrent.futures``
  ``ProcessPoolExecutor`` whose workers each load (``mmap``) every
  shard's snapshot bundle **once at spawn** and then answer
  scatter-gather requests over the pool's pipes.  Compute happens in
  worker processes, so a multi-threaded HTTP server finally scales
  past one core: the GIL only ever sees cheap merge work.

Worker processes are started with the ``spawn`` method (never
``fork``): executors live inside threaded servers, and forking a
threaded process is a deadlock lottery.  The one-time spawn cost is
paid eagerly at construction, before any serving thread exists.

A killed worker breaks the pool; :meth:`ParallelExecutor.scatter`
converts that into a clean :class:`ExecutorError` for the in-flight
request, tears the pool down, and respawns it lazily for the next
request — the server stays up.

Every worker response carries the worker's process-local index-build
and result-cache counters; the executor folds them into
:meth:`Executor.stats` so ``/v1/stats`` can present one process-tree
view (the satellite fix: process-local counters would silently
undercount behind a pool).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from ..datamodel.errors import ReproError
from ..obs.metrics import Counter
from .deadline import DeadlineExceededError, current_deadline
from .service import ShardService

__all__ = [
    "Executor",
    "ExecutorError",
    "SerialExecutor",
    "ParallelExecutor",
]

ShardOp = Tuple[int, str, Dict[str, object]]


class ExecutorError(ReproError):
    """A scatter that could not complete (e.g. a worker died)."""

    code = "shard_unavailable"
    retryable = True


class Executor(Protocol):
    """What the coordinator needs from an execution strategy."""

    name: str
    shard_count: int

    def scatter(self, ops: Sequence[ShardOp]) -> List[Dict[str, object]]:
        """Run every (shard_id, op, params) request; results in order."""
        ...

    def broadcast(self, op: str, params: Dict[str, object]) -> List[Dict[str, object]]:
        """``scatter`` of one op to every shard."""
        ...

    def stats(self) -> Dict[str, object]:
        """Executor-level observability (mode, workers, merged counters)."""
        ...

    def health(self) -> Dict[str, object]:
        """Readiness: overall ``status`` plus per-shard detail."""
        ...

    def close(self) -> None:
        ...


class SerialExecutor:
    """In-process scatter-gather: the default, and the serial baseline."""

    name = "serial"

    def __init__(self, services: Sequence[ShardService]):
        self.services = list(services)
        self.shard_count = len(self.services)

    def scatter(self, ops: Sequence[ShardOp]) -> List[Dict[str, object]]:
        deadline = current_deadline()
        results = []
        for shard_id, op, params in ops:
            # Cooperative enforcement: a serial scatter checks the
            # budget between shards (mid-shard compute cannot be
            # preempted, but a multi-shard pile-up is cut short).
            if deadline is not None:
                deadline.check(f"shard {shard_id} op {op!r}")
            results.append(self.services[shard_id].handle(op, params))
        return results

    def broadcast(self, op: str, params: Dict[str, object]) -> List[Dict[str, object]]:
        return self.scatter([(i, op, dict(params)) for i in range(self.shard_count)])

    def stats(self) -> Dict[str, object]:
        return {
            "mode": self.name,
            "shards": self.shard_count,
            "workers": 0,
        }

    def health(self) -> Dict[str, object]:
        # In-process shards cannot partially fail: alive means ready.
        return {
            "status": "ok",
            "shards": [
                {"shard": i, "status": "ok", "healthy_replicas": 1}
                for i in range(self.shard_count)
            ],
        }

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# Worker-side plumbing (module-level: must be picklable by qualified name).
# ---------------------------------------------------------------------------

_WORKER_SERVICES: List[ShardService] = []


def _worker_init(
    bundle_paths: Tuple[str, ...],
    case_sensitive: bool,
    backend: Optional[str],
    use_mmap: bool,
) -> None:
    """Load every shard bundle once per worker (mmap-backed by default).

    Bundles come back with the LCA and full-text caches pre-seeded, so
    a worker's build counters stay at zero for its whole life — the
    zero-rebuild invariant ``/v1/stats`` asserts survives the pool.
    """
    from ..snapshot.codec import read_snapshot

    services = []
    for shard_id, path in enumerate(bundle_paths):
        snapshot = read_snapshot(path, use_mmap=use_mmap)
        services.append(
            ShardService(
                snapshot.store,
                shard_id=shard_id,
                case_sensitive=case_sensitive,
                backend=backend,
            )
        )
    _WORKER_SERVICES[:] = services


def _worker_call(
    shard_id: int, op: str, params: Dict[str, object]
) -> Dict[str, object]:
    if op == "_crash":  # test hook: die like a real worker failure
        os._exit(int(params.get("status", 70)))
    from ..core.lca_index import lca_index_cache_info
    from ..fulltext.index import fulltext_index_cache_info

    response = _WORKER_SERVICES[shard_id].handle(op, params)
    response["_worker"] = {
        "pid": os.getpid(),
        "lca_builds": lca_index_cache_info().builds,
        "fulltext_builds": fulltext_index_cache_info().builds,
    }
    return response


class ParallelExecutor:
    """Process-pool scatter-gather over on-disk shard bundles."""

    name = "parallel"

    def __init__(
        self,
        bundle_paths: Sequence,
        *,
        workers: int,
        case_sensitive: bool = False,
        backend: Optional[str] = None,
        use_mmap: bool = True,
        start_method: str = "spawn",
    ):
        if workers < 1:
            raise ExecutorError(f"worker count must be >= 1, got {workers}")
        self._paths = tuple(str(path) for path in bundle_paths)
        self.shard_count = len(self._paths)
        if not self.shard_count:
            raise ExecutorError("parallel executor needs at least one shard")
        self.workers = int(workers)
        self._case_sensitive = bool(case_sensitive)
        self._backend = backend
        self._use_mmap = bool(use_mmap)
        self._start_method = start_method
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._worker_stats: Dict[int, Dict[str, int]] = {}
        self._respawns = Counter(
            "repro_respawns_total",
            "Worker pools respawned after a worker process died.",
        )
        self._spawned_once = False
        self._closed = False
        # Spawn (and load bundles into) every worker now, before any
        # server thread exists — both the fork-safety argument above
        # and the warm-up: no request ever waits on a cold worker.
        try:
            self._ensure_pool()
        except BrokenProcessPool:
            self._discard_pool()
            raise ExecutorError(
                "worker pool failed to start (a worker died while "
                "loading its shard bundles)"
            ) from None

    # -- pool lifecycle -------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise ExecutorError(
                    "the worker pool has been closed; reopen the database "
                    "to serve again"
                )
            if self._pool is None:
                context = multiprocessing.get_context(self._start_method)
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=context,
                    initializer=_worker_init,
                    initargs=(
                        self._paths,
                        self._case_sensitive,
                        self._backend,
                        self._use_mmap,
                    ),
                )
                if self._spawned_once:
                    self._respawns.inc()
                self._spawned_once = True
                # One submit per worker slot forces the pool to spawn
                # its full complement immediately.
                futures = [
                    self._pool.submit(
                        _worker_call, index % self.shard_count, "ping", {}
                    )
                    for index in range(self.workers)
                ]
                for future in futures:
                    self._harvest(future.result())
            return self._pool

    def _discard_pool(
        self, observed: Optional[ProcessPoolExecutor] = None
    ) -> None:
        """Tear down the broken pool — but only the one the caller saw.

        A thread handling an old failure must not shut down a healthy
        pool another thread already respawned (that would cancel its
        in-flight requests); ``observed=None`` (close, or a failure
        while the pool was still being built) discards whatever is
        current.
        """
        with self._lock:
            if observed is not None and self._pool is not observed:
                return
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _harvest(self, response: Dict[str, object]) -> Dict[str, object]:
        worker = response.pop("_worker", None)
        if isinstance(worker, dict) and "pid" in worker:
            self._worker_stats[int(worker["pid"])] = {
                "lca_builds": int(worker.get("lca_builds", 0)),
                "fulltext_builds": int(worker.get("fulltext_builds", 0)),
            }
        return response

    # -- the executor surface -------------------------------------------
    def scatter(self, ops: Sequence[ShardOp]) -> List[Dict[str, object]]:
        deadline = current_deadline()
        pool: Optional[ProcessPoolExecutor] = None
        try:
            # _ensure_pool sits inside the try: a worker dying during
            # the respawn warm-up must surface as the same clean
            # ExecutorError as one dying mid-query.
            pool = self._ensure_pool()
            futures = [
                pool.submit(_worker_call, shard_id, op, params)
                for shard_id, op, params in ops
            ]
            results = []
            for future in futures:
                # Bound each gather by the remaining request budget;
                # the worker-side compute keeps running (it cannot be
                # preempted), but the caller gets its 504 on time.
                timeout = None if deadline is None else deadline.remaining()
                try:
                    results.append(self._harvest(future.result(timeout)))
                except FuturesTimeoutError:
                    for pending in futures:
                        pending.cancel()
                    raise DeadlineExceededError(
                        "scatter exceeded its deadline waiting on a "
                        "shard worker"
                    ) from None
            return results
        except BrokenProcessPool:
            self._discard_pool(pool)
            raise ExecutorError(
                "a shard worker died mid-query; the request failed and the "
                "worker pool will be respawned for the next one"
            ) from None

    def broadcast(self, op: str, params: Dict[str, object]) -> List[Dict[str, object]]:
        return self.scatter([(i, op, dict(params)) for i in range(self.shard_count)])

    def metric_objects(self) -> List[object]:
        """Typed metrics: pool respawns."""
        return [self._respawns]

    def stats(self) -> Dict[str, object]:
        with self._lock:
            workers = dict(self._worker_stats)
            respawns = self._respawns.value
        return {
            "mode": self.name,
            "shards": self.shard_count,
            "workers": self.workers,
            "worker_pids": sorted(workers),
            "respawns": respawns,
            "index_builds": {
                "lca": sum(w["lca_builds"] for w in workers.values()),
                "fulltext": sum(
                    w["fulltext_builds"] for w in workers.values()
                ),
            },
        }

    def health(self) -> Dict[str, object]:
        with self._lock:
            pool_up = self._pool is not None and not self._closed
        status = "ok" if pool_up else "degraded"
        return {
            "status": status,
            "shards": [
                {
                    "shard": i,
                    "status": status,
                    "healthy_replicas": 1 if pool_up else 0,
                }
                for i in range(self.shard_count)
            ],
        }

    def close(self) -> None:
        """Shut the pool down for good: later scatters raise cleanly
        instead of silently respawning workers (whose temp bundles may
        already be deleted)."""
        with self._lock:
            self._closed = True
        self._discard_pool()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ParallelExecutor shards={self.shard_count} "
            f"workers={self.workers}>"
        )
