"""The coordinator: global answers from per-shard partial results.

One :class:`ShardedCollection` owns a shard layout
(:class:`~repro.exec.sharding.ShardPlan`), the shared path summary,
and an :class:`~repro.exec.executors.Executor`; it exposes the same
three query surfaces as the monolithic engine/processor pair —
``nearest_concepts``, full-text hits, and the select/from/where
language — with **byte-identical answers and ranking order**.

The division of labour (the tentpole's refactor):

* a shard performs the pure per-shard work — term search, the meet
  roll-up, §4 filtering, local top-k with full ranking keys — against
  its own store and indexes (:mod:`repro.exec.service`);
* the coordinator merges: concatenates shard-ordered hit lists (shard
  OID ranges are ascending, so concatenation *is* the global sort
  order), k-way merges ranked candidates on the §4 key (a strict
  total order, so per-shard top-k union ⊇ global top-k exactly), and
  re-derives the one answer no shard can see — the meet at the
  document root — from the union of shard residues plus per-variable
  root flags.

Result caching happens here, keyed on the **shard layout fingerprint
and generation vector** in addition to the usual query/options key, so
re-sharding or rebuilding a collection can never serve stale merged
results (the cache satellite).
"""

from __future__ import annotations

import threading
from operator import itemgetter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.engine import NearestConcept
from ..core.restrictions import PathLike, resolve_pids
from ..core.result_cache import (
    CacheSpec,
    ResultCache,
    ResultCacheInfo,
    resolve_result_cache,
)
from ..datamodel.errors import QueryPlanError, ReproError
from ..monet.pathsummary import PathSummary
from ..obs.trace import current_trace, span as trace_span
from ..query.ast import (
    ContainsCondition,
    DistanceItem,
    MeetItem,
    PathVarItem,
    Query,
    TagItem,
    TextItem,
    VarItem,
)
from ..query.executor import (
    Cell,
    QueryResult,
    column_name,
    referenced_variables,
)
from ..query.parser import parse_query
from ..query.planner import Plan, plan_query
from .executors import Executor
from .service import item_variable, term_mode
from .sharding import ShardPlan

__all__ = ["ShardedCollection"]

_key_of = itemgetter(0)


class _SummaryStore:
    """The coordinator's store stand-in: a summary plus the repr.

    Planning (:func:`repro.query.planner.plan_query`) and path
    resolution only consult ``store.summary``; the repr reproduces the
    monolithic :class:`~repro.monet.engine.MonetXML` one byte-for-byte
    so ``explain`` output does not depend on the execution layer.
    """

    def __init__(self, summary: PathSummary, plan: ShardPlan):
        self.summary = summary
        self._plan = plan

    def __repr__(self) -> str:
        return (
            f"<MonetXML nodes={self._plan.node_count} "
            f"paths={self._plan.path_count} "
            f"relations={self._plan.relation_count}>"
        )


class ShardedCollection:
    """Scatter-gather query serving over one sharded collection."""

    def __init__(
        self,
        plan: ShardPlan,
        summary: PathSummary,
        executor: Executor,
        *,
        case_sensitive: bool = False,
        backend_name: str = "steered",
        generations: Sequence = (),
        cache: CacheSpec = None,
        max_rows: Optional[int] = 100_000,
        force_scan: bool = False,
    ):
        if executor.shard_count != plan.shard_count:
            raise ReproError(
                f"executor serves {executor.shard_count} shard(s) but the "
                f"plan has {plan.shard_count}"
            )
        self.plan = plan
        self.summary = summary
        self.executor = executor
        self.case_sensitive = bool(case_sensitive)
        self.backend_name = backend_name
        #: The differential harness's escape hatch, scattered to every
        #: shard so per-predicate access paths match the monolithic
        #: ``force_scan`` processor exactly.
        self.force_scan = bool(force_scan)
        self.generations = tuple(generations)
        self.max_rows = max_rows
        self.result_cache: Optional[ResultCache] = resolve_result_cache(cache)
        self._shim = _SummaryStore(summary, plan)
        #: Shard-layout component of every cache key (the satellite):
        #: shard count, range boundaries and the generation vector.
        self.layout_key = (plan.fingerprint(), self.generations)
        self._last = threading.local()

    # -- observability ---------------------------------------------------
    @property
    def shard_count(self) -> int:
        return self.plan.shard_count

    @property
    def node_count(self) -> int:
        return self.plan.node_count

    def cache_info(self) -> Optional[ResultCacheInfo]:
        if self.result_cache is None:
            return None
        return self.result_cache.cache_info()

    def warm_up(self) -> None:
        """Ping every shard: indexes touched, pool spawned, bundles hot."""
        self._record(self._broadcast("ping", {}), rounds=1)

    def last_shard_stats(self) -> Dict[str, object]:
        """Per-shard timings of this thread's most recent operation."""
        return getattr(
            self._last,
            "stats",
            {"count": self.shard_count, "per_shard_ms": [], "rounds": 0},
        )

    def _record(
        self, responses: List[Dict[str, object]], rounds: int
    ) -> List[Dict[str, object]]:
        self._last.stats = {
            "count": self.shard_count,
            "executor": self.executor.name,
            "per_shard_ms": [
                response.get("elapsed_ms") for response in responses
            ],
            "rounds": rounds,
        }
        return responses

    # -- traced scatter-gather -------------------------------------------
    def _scatter(
        self, ops: Sequence[Tuple[int, str, Dict[str, object]]]
    ) -> List[Dict[str, object]]:
        """``executor.scatter`` with the current trace riding along.

        The trace id is stamped into each op's params (crossing pipes
        and socket frames as plain payload data); worker-produced
        spans come home in the responses and are folded back here, in
        the request thread — the executors' own fan-out threads never
        need to inherit the trace contextvar.
        """
        trace = current_trace()
        if trace is None:
            return self.executor.scatter(ops)
        for _shard_id, _op, params in ops:
            params["_trace"] = trace.trace_id
        with trace.span("shard.scatter", ops=len(ops)):
            responses = self.executor.scatter(ops)
        for response in responses:
            trace.absorb(response.pop("_spans", None))
        return responses

    def _broadcast(
        self, op: str, params: Dict[str, object]
    ) -> List[Dict[str, object]]:
        return self._scatter(
            [(i, op, dict(params)) for i in range(self.shard_count)]
        )

    # -- full-text surface ----------------------------------------------
    def term_hit_rows(self, term: str) -> List[Tuple[int, int]]:
        """Global (oid, pid) hit rows of one term, ascending by OID."""
        mode = term_mode(term, self.case_sensitive)
        params = {"terms": [(term, mode)], "scan_terms": ()}
        responses = self._broadcast("hits", params)
        rounds = 1
        if mode == "token" and not any(
            response["index_counts"].get(term, 0) for response in responses
        ):
            # The global index has no posting: the monolithic ``find``
            # would fall back to a substring scan — so do all shards.
            params["scan_terms"] = (term,)
            responses = self._broadcast("hits", params)
            rounds = 2
        self._record(responses, rounds)
        rows: List[Tuple[int, int]] = []
        # Shard OID ranges ascend (and the root, the smallest OID, sits
        # in shard 0), so shard-order concatenation is globally sorted.
        for response in responses:
            rows.extend(tuple(row) for row in response["terms"][term])
        return rows

    # -- nearest-concept surface ----------------------------------------
    def nearest_concepts(
        self,
        *terms: str,
        exclude_paths: Sequence[PathLike] = (),
        exclude_root: bool = False,
        require_all_terms: bool = False,
        within: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[NearestConcept]:
        if len(terms) < 2:
            raise ValueError("nearest_concepts needs at least two terms")
        excluded: Set[int] = resolve_pids(self._shim, exclude_paths)
        if exclude_root:
            excluded.add(self.plan.root_pid)

        cache = self.result_cache
        key = None
        if cache is not None:
            cache.sync_generation(self.layout_key)
            key = (
                self.layout_key,
                self.case_sensitive,
                tuple(sorted(set(terms))),
                frozenset(excluded),
                require_all_terms,
                within,
                limit,
            )
            with trace_span("cache.lookup"):
                cached = cache.get(key)
            if cached is not None:
                self._record([], rounds=0)
                return list(cached)

        moded = [(term, term_mode(term, self.case_sensitive)) for term in terms]
        params = {
            "terms": moded,
            "scan_terms": (),
            "exclude_pids": sorted(excluded),
            "require_all_terms": require_all_terms,
            "within": within,
            "limit": limit,
        }
        responses = self._broadcast("nearest", params)
        rounds = 1
        force = self._scan_fallback(moded, responses)
        if force:
            params["scan_terms"] = tuple(sorted(force))
            responses = self._broadcast("nearest", params)
            rounds = 2
        self._record(responses, rounds)

        with trace_span("merge", shards=len(responses)):
            concepts = self._merge_nearest(
                responses,
                terms=terms,
                excluded=excluded,
                require_all_terms=require_all_terms,
                within=within,
                limit=limit,
            )
        if cache is not None:
            cache.put(key, tuple(concepts))
        return concepts

    def _scan_fallback(
        self,
        moded: Sequence[Tuple[str, str]],
        responses: List[Dict[str, object]],
    ) -> Set[str]:
        force: Set[str] = set()
        for term, mode in moded:
            if mode == "token" and not any(
                response["index_counts"].get(term, 0)
                for response in responses
            ):
                force.add(term)
        return force

    def _merge_nearest(
        self,
        responses: List[Dict[str, object]],
        *,
        terms: Sequence[str],
        excluded: Set[int],
        require_all_terms: bool,
        within: Optional[int],
        limit: Optional[int],
    ) -> List[NearestConcept]:
        summary = self.summary
        candidates: List[Tuple[Tuple[int, int, int, int], NearestConcept]] = []
        residue: Set[Tuple[str, int]] = set()
        depth_of: Dict[int, int] = {}
        for response in responses:
            for row in response["meets"]:
                concept = NearestConcept(
                    oid=row["oid"],
                    path=summary.path(row["pid"]),
                    origins=tuple(row["origins"]),
                    terms=tuple(row["terms"]),
                    joins=row["joins"],
                    spread=row["spread"],
                    depth=row["depth"],
                )
                candidates.append((concept.sort_key(), concept))
            for term, oid, depth in response["residue"]:
                residue.add((term, oid))
                depth_of[oid] = depth

        root = self._root_meet(
            residue,
            depth_of,
            terms=terms,
            excluded=excluded,
            require_all_terms=require_all_terms,
            within=within,
        )
        if root is not None:
            candidates.append((root.sort_key(), root))
        candidates.sort(key=_key_of)
        if limit is not None:
            candidates = candidates[:limit]
        return [concept for _key, concept in candidates]

    def _root_meet(
        self,
        residue: Set[Tuple[str, int]],
        depth_of: Dict[int, int],
        *,
        terms: Sequence[str],
        excluded: Set[int],
        require_all_terms: bool,
        within: Optional[int],
    ) -> Optional[NearestConcept]:
        """The one cross-shard meet: the document root over the residues.

        Every input pair either joined exactly one emitted (shard-local)
        meet or survived to the root; the union of shard residues is
        therefore precisely the pending set the monolithic roll-up
        would deliver there, and the root is a meet iff it covers two
        distinct pairs (Fig. 5's emission rule, applied once, here).
        """
        if len(residue) < 2:
            return None
        if self.plan.root_pid in excluded:
            return None
        tags = {term for term, _oid in residue}
        if require_all_terms and not tags >= set(terms):
            return None
        origins = tuple(sorted({oid for _term, oid in residue}))
        joins = sum(depth_of[oid] - 1 for oid in origins)
        if within is not None and joins > within:
            return None
        return NearestConcept(
            oid=self.plan.root_oid,
            path=self.summary.path(self.plan.root_pid),
            origins=origins,
            terms=tuple(sorted(str(tag) for tag in tags)),
            joins=joins,
            spread=origins[-1] - origins[0],
            depth=1,
        )

    # -- presentation ----------------------------------------------------
    def snippets(self, oids: Sequence[int], width: int = 120) -> Dict[int, str]:
        """Display snippets for answer OIDs, root composed across shards."""
        root = self.plan.root_oid
        by_shard: Dict[int, List[int]] = {}
        want_root = False
        for oid in oids:
            if oid == root:
                want_root = True
            else:
                by_shard.setdefault(self.plan.shard_of(oid), []).append(oid)
        out: Dict[int, str] = {}
        ops = [
            (shard, "snippets", {"oids": shard_oids, "width": width})
            for shard, shard_oids in sorted(by_shard.items())
        ]
        if ops:
            for response in self._scatter(ops):
                out.update(response["snippets"])
        if want_root:
            parts = [
                response["part"]
                for response in self._broadcast(
                    "text_head", {"width": width}
                )
            ]
            text = " ".join(part for part in parts if part)
            out[root] = (
                text if len(text) <= width else text[: width - 1] + "…"
            )
        return out

    def pids_of(self, oids: Sequence[int]) -> Dict[int, int]:
        """Batched OID → pid lookup (one scatter), root answered here."""
        root = self.plan.root_oid
        by_shard: Dict[int, List[int]] = {}
        out: Dict[int, int] = {}
        for oid in oids:
            if oid == root:
                out[root] = self.plan.root_pid
            else:
                by_shard.setdefault(self.plan.shard_of(oid), []).append(oid)
        ops = [
            (shard, "pids", {"oids": shard_oids})
            for shard, shard_oids in sorted(by_shard.items())
        ]
        for response in self._scatter(ops):
            out.update(response["pids"])
        return out

    def to_xml(self, oid: int, indent: int = 2) -> str:
        if oid == self.plan.root_oid:
            return self._root_xml(indent)
        shard = self.plan.shard_of(oid)
        [response] = self._scatter(
            [(shard, "to_xml", {"oid": oid, "indent": indent})]
        )
        return response["xml"]

    def _root_xml(self, indent: Optional[int]) -> str:
        """Serialize the whole document: shard parts in one root tag.

        Each shard writes its top-level subtrees exactly as the
        monolithic serializer would (level 1); this method reproduces
        the serializer's root-level framing — self-closing empty root,
        the all-cdata inline form, and the padded open/close tags —
        byte for byte.
        """
        from ..datamodel.serializer import escape_attribute

        responses = self._broadcast(
            "root_xml_parts", {"indent": indent}
        )
        label = self.summary.label(self.plan.root_pid)
        attributes: Dict[str, str] = {}
        for response in responses:
            attributes.update(response["root_attributes"])
        parts = [label] + [
            f'{name}="{escape_attribute(value)}"'
            for name, value in attributes.items()
        ]
        children = "".join(response["children"] for response in responses)
        if not children:
            return "<" + " ".join(parts) + "/>"
        open_tag = "<" + " ".join(parts) + ">"
        if all(response["cdata_only"] for response in responses):
            inline = "".join(
                text
                for response in responses
                for text in response["inline"]
            )
            return open_tag + inline + f"</{label}>"
        close = f"</{label}>"
        if indent is not None:
            close = "\n" + close
        return open_tag + children + close

    # -- query-language surface ------------------------------------------
    def explain(self, text: str) -> str:
        return plan_query(
            parse_query(text),
            self._shim,
            force_scan=self.force_scan,
            case_sensitive=self.case_sensitive,
        ).explain()

    def execute(
        self,
        text: str,
        bindings: Optional[Dict[str, str]] = None,
    ) -> QueryResult:
        if not isinstance(text, str):
            raise ReproError(
                "sharded query execution takes a query string"
            )
        bindings_key = tuple(
            sorted((str(k), str(v)) for k, v in (bindings or {}).items())
        )
        cache = self.result_cache
        key = None
        if cache is not None:
            cache.sync_generation(self.layout_key)
            key = (
                self.layout_key,
                text.strip(),
                self.case_sensitive,
                self.backend_name,
                self.force_scan,
                bindings_key,
            )
            with trace_span("cache.lookup"):
                cached = cache.get(key)
            if cached is not None:
                columns, rows = cached
                self._record([], rounds=0)
                return QueryResult(columns=list(columns), rows=list(rows))

        # Plan locally first: parse/plan/binding errors surface
        # identically to the monolithic processor, before any scatter
        # happens.  Parameters must bind *before* the needle pass —
        # scan-fallback modes are computed from literal needles.
        with trace_span("parse"):
            parsed = parse_query(text)
            if bindings or parsed.parameters:
                try:
                    parsed = parsed.bind(dict(bindings or {}))
                except (KeyError, ValueError) as exc:
                    raise QueryPlanError(str(exc).strip("'\"")) from exc
        with trace_span("plan"):
            plan = plan_query(
                parsed,
                self._shim,
                force_scan=self.force_scan,
                case_sensitive=self.case_sensitive,
            )

        params: Dict[str, object] = {
            "text": text,
            "scan_needles": (),
            "params": dict(bindings) if bindings else None,
            "force_scan": self.force_scan,
        }
        responses = self._broadcast("query", params)
        rounds = 1
        needles = [
            (condition.needle, "token")
            for condition in parsed.conditions
            if isinstance(condition, ContainsCondition)
            and term_mode(condition.needle, self.case_sensitive) == "token"
        ]
        force = self._scan_fallback(needles, responses)
        if force:
            params["scan_needles"] = tuple(sorted(force))
            responses = self._broadcast("query", params)
            rounds = 2
        self._record(responses, rounds)

        with trace_span("merge", shards=len(responses)):
            if plan.aggregate:
                result = self._merge_aggregate(parsed, responses)
            else:
                result = self._merge_enumeration(parsed, plan, responses)
        result.plan = plan.describe()
        if key is not None:
            cache.put(key, (tuple(result.columns), tuple(result.rows)))
        return result

    # -- query merge: shared root logic ----------------------------------
    def _root_bound(
        self,
        variable: str,
        responses: List[Dict[str, object]],
    ) -> bool:
        """Is the true root in the variable's *global* binding set?

        The root matches the pattern iff any shard says so (only shard
        0 can vouch for root attributes), and satisfies each condition
        iff any shard's local closure reached its stand-in root — for
        ``contains`` that means "some witness exists somewhere", which
        is exactly the root's global closure membership.
        """
        entries = [response["variables"][variable] for response in responses]
        if not any(entry["root_pattern"] for entry in entries):
            return False
        condition_count = len(entries[0]["root_conds"])
        return all(
            any(entry["root_conds"][index] for entry in entries)
            for index in range(condition_count)
        )

    def _root_in_minimal(
        self, variable: str, responses: List[Dict[str, object]]
    ) -> bool:
        """Root is a minimal binding iff it is the *only* binding."""
        return self._root_bound(variable, responses) and all(
            not response["variables"][variable]["minimal"]
            for response in responses
        )

    # -- query merge: enumeration mode -----------------------------------
    def _merge_enumeration(
        self,
        parsed: Query,
        plan: Plan,
        responses: List[Dict[str, object]],
    ) -> QueryResult:
        root = self.plan.root_oid
        needed = referenced_variables(parsed)
        bound: Dict[str, List[int]] = {}
        for variable in needed:
            oids: List[int] = []
            if self._root_bound(variable, responses):
                oids.append(root)  # the smallest OID: sorted order holds
            for response in responses:
                oids.extend(response["variables"][variable]["bound"])
            bound[variable] = oids

        # item index → oid → cell, merged from the shard-aligned lists.
        cell_maps: Dict[int, Dict[int, Cell]] = {}
        root_text: Optional[str] = None
        for index, item in enumerate(parsed.select):
            variable = item_variable(item, plan)
            if variable is None:
                continue
            mapping: Dict[int, Cell] = {}
            for response in responses:
                entry = response["variables"][variable]
                cells = entry["cells"].get(str(index), ())
                for oid, cell in zip(entry["bound"], cells):
                    mapping[oid] = cell
            if root in bound[variable]:
                if isinstance(item, TextItem):
                    if root_text is None:
                        root_text = self._gather_root_text()
                    mapping[root] = root_text
                else:
                    mapping[root] = self._root_cell(item, plan)
            cell_maps[index] = mapping

        columns = [column_name(item) for item in parsed.select]
        result = QueryResult(columns=columns)
        seen: Set[Tuple[Cell, ...]] = set()
        variables = list(needed)
        if not variables:
            return result

        def emit(assignment: Dict[str, int]) -> None:
            row = tuple(
                cell_maps[index][assignment[item_variable(item, plan)]]
                for index, item in enumerate(parsed.select)
            )
            if parsed.distinct:
                if row in seen:
                    return
                seen.add(row)
            result.rows.append(row)
            if self.max_rows is not None and len(result.rows) > self.max_rows:
                raise QueryPlanError(
                    f"result exceeds max_rows={self.max_rows}; "
                    "refine the query or use meet(...) aggregation"
                )

        def recurse(index: int, assignment: Dict[str, int]) -> None:
            if index == len(variables):
                emit(assignment)
                return
            variable = variables[index]
            for oid in bound[variable]:
                assignment[variable] = oid
                recurse(index + 1, assignment)
            assignment.pop(variable, None)

        recurse(0, {})
        return result

    def _root_cell(self, item, plan: Plan) -> Cell:
        summary = self.summary
        root_pid = self.plan.root_pid
        if isinstance(item, VarItem):
            return self.plan.root_oid
        if isinstance(item, TagItem):
            return summary.label(root_pid)
        if isinstance(item, PathVarItem):
            owner = plan.path_variable_owner[item.name]
            bindings = plan.variables[owner].binding.pattern.match(
                summary.path(root_pid)
            )
            return "" if bindings is None else bindings.get(item.name, "")
        # PathItem (TextItem is handled by the caller).
        return str(summary.path(root_pid))

    def _gather_root_text(self) -> str:
        parts = [
            response["part"]
            for response in self._broadcast("root_text", {})
        ]
        return " ".join(part for part in parts if part)

    # -- query merge: aggregate mode --------------------------------------
    def _merge_aggregate(
        self, parsed: Query, responses: List[Dict[str, object]]
    ) -> QueryResult:
        columns = [column_name(item) for item in parsed.select]
        result = QueryResult(columns=columns)
        cells_per_item: List[List[Cell]] = []
        for index, item in enumerate(parsed.select):
            if isinstance(item, MeetItem):
                cells_per_item.append(
                    self._merge_meet_cells(index, item, responses)
                )
            else:
                cells_per_item.append(
                    self._merge_distance_cells(index, item, responses)
                )
        height = max((len(cells) for cells in cells_per_item), default=0)
        for position in range(height):
            result.rows.append(
                tuple(
                    cells[position] if position < len(cells) else ""
                    for cells in cells_per_item
                )
            )
        return result

    def _merge_meet_cells(
        self,
        index: int,
        item: MeetItem,
        responses: List[Dict[str, object]],
    ) -> List[Cell]:
        key = str(index)
        cells: List[int] = []
        residue: Set[Tuple[str, int]] = set()
        depth_of: Dict[int, int] = {}
        root_excluded = False
        for response in responses:
            entry = response["meet_items"][key]
            cells.extend(entry["meets"])
            root_excluded = root_excluded or entry["root_excluded"]
            for variable, oid, depth in entry["residue"]:
                residue.add((variable, oid))
                depth_of[oid] = depth
        root = self.plan.root_oid
        for variable in item.variables:
            if self._root_in_minimal(variable, responses):
                residue.add((variable, root))
                depth_of[root] = 1
        if len(residue) >= 2 and not root_excluded:
            origins = {oid for _variable, oid in residue}
            joins = sum(depth_of[oid] - 1 for oid in origins)
            if item.within is None or joins <= item.within:
                cells.append(root)
        cells.sort()
        return cells

    def _merge_distance_cells(
        self,
        index: int,
        item: DistanceItem,
        responses: List[Dict[str, object]],
    ) -> List[Cell]:
        key = str(index)
        witnesses: Dict[str, List[Tuple[int, int, int]]] = {
            item.left: [],
            item.right: [],
        }
        pair_joins: Dict[int, Optional[int]] = {}
        for shard, response in enumerate(responses):
            entry = response["distance_items"][key]
            pair_joins[shard] = entry["pair_joins"]
            for variable in (item.left, item.right):
                for oid, depth in entry["witnesses"][variable]:
                    witnesses[variable].append((shard, oid, depth))
        root_left = self._root_in_minimal(item.left, responses)
        root_right = self._root_in_minimal(item.right, responses)
        count_left = len(witnesses[item.left]) + root_left
        count_right = len(witnesses[item.right]) + root_right
        if count_left != 1 or count_right != 1:
            raise QueryPlanError(
                "distance($a, $b) requires both variables to bind exactly "
                f"one witness (got {count_left} and {count_right})"
            )
        if root_left and root_right:
            return [0]
        if root_left:
            return [witnesses[item.right][0][2] - 1]
        if root_right:
            return [witnesses[item.left][0][2] - 1]
        shard_left, _oid_left, depth_left = witnesses[item.left][0]
        shard_right, _oid_right, depth_right = witnesses[item.right][0]
        if shard_left == shard_right:
            # Both witnesses local to one shard: it computed the exact
            # pairwise meet distance already.
            return [pair_joins[shard_left]]
        # Different shards means different top-level subtrees, whose
        # only common ancestor is the root (depth 1).
        return [(depth_left - 1) + (depth_right - 1)]
