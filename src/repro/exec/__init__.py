"""The execution layer: sharded collections and pluggable executors.

``repro.exec`` is the seam every scaling feature plugs into:

* :mod:`repro.exec.sharding` — answer-preserving partitioning of one
  store into independent per-subtree shards (original OIDs kept);
* :mod:`repro.exec.service` — the pure per-shard request handlers;
* :mod:`repro.exec.executors` — where shard work runs: in-process
  (:class:`SerialExecutor`) or on a process pool that finally scales
  query serving past the GIL (:class:`ParallelExecutor`);
* :mod:`repro.exec.coordinator` — scatter-gather merge producing
  byte-identical global answers, including the root meet no single
  shard can see.
"""

from .coordinator import ShardedCollection
from .executors import (
    Executor,
    ExecutorError,
    ParallelExecutor,
    SerialExecutor,
)
from .service import ShardService
from .sharding import (
    ShardingError,
    ShardPlan,
    compute_shard_plan,
    slice_store,
)

__all__ = [
    "Executor",
    "ExecutorError",
    "ParallelExecutor",
    "SerialExecutor",
    "ShardPlan",
    "ShardService",
    "ShardedCollection",
    "ShardingError",
    "compute_shard_plan",
    "slice_store",
]
