"""The execution layer: sharded collections and pluggable executors.

``repro.exec`` is the seam every scaling feature plugs into:

* :mod:`repro.exec.sharding` — answer-preserving partitioning of one
  store into independent per-subtree shards (original OIDs kept);
* :mod:`repro.exec.service` — the pure per-shard request handlers;
* :mod:`repro.exec.executors` — where shard work runs: in-process
  (:class:`SerialExecutor`) or on a process pool that finally scales
  query serving past the GIL (:class:`ParallelExecutor`);
* :mod:`repro.exec.coordinator` — scatter-gather merge producing
  byte-identical global answers, including the root meet no single
  shard can see;
* :mod:`repro.exec.transport` — the length-prefixed, CRC-checked
  socket frame protocol between shard peers;
* :mod:`repro.exec.remote` — shard workers as standalone socket
  servers (:class:`ShardWorkerServer`) and their client;
* :mod:`repro.exec.cluster` — N-way shard replicas with circuit
  breakers, heartbeat probing and failover
  (:class:`ClusterExecutor`);
* :mod:`repro.exec.deadline` — per-request time budgets propagated
  through the whole tree via a context variable.
"""

from .cluster import ClusterExecutor, Replica, ReplicaSpec
from .coordinator import ShardedCollection
from .deadline import (
    Deadline,
    DeadlineExceededError,
    current_deadline,
    deadline_scope,
)
from .executors import (
    Executor,
    ExecutorError,
    ParallelExecutor,
    SerialExecutor,
)
from .remote import (
    RemoteOpError,
    RemoteShardClient,
    ShardWorkerServer,
    WorkerProcess,
    services_from_bundles,
    spawn_worker_process,
)
from .service import ShardService
from .sharding import (
    ShardingError,
    ShardPlan,
    compute_shard_plan,
    slice_store,
)
from .transport import ConnectionClosedError, FrameError, TransportError

__all__ = [
    "ClusterExecutor",
    "ConnectionClosedError",
    "Deadline",
    "DeadlineExceededError",
    "Executor",
    "ExecutorError",
    "FrameError",
    "ParallelExecutor",
    "RemoteOpError",
    "RemoteShardClient",
    "Replica",
    "ReplicaSpec",
    "SerialExecutor",
    "ShardPlan",
    "ShardService",
    "ShardWorkerServer",
    "ShardedCollection",
    "ShardingError",
    "TransportError",
    "WorkerProcess",
    "compute_shard_plan",
    "current_deadline",
    "deadline_scope",
    "services_from_bundles",
    "slice_store",
    "spawn_worker_process",
    "transport",
]
