"""Answer-preserving document sharding of one Monet XML store.

The meet roll-up (Fig. 5) has one structural property that makes a
collection embarrassingly parallel: the subtrees hanging off the
document root share no ancestor *except the root itself*, so every
meet either lies inside exactly one top-level subtree or is the root.
Because OIDs are assigned in depth-first pre-order
(:class:`repro.datamodel.document.Document`), every top-level subtree
occupies one *contiguous* OID range — a shard can therefore be an
ordinary :class:`~repro.monet.engine.MonetXML` store over a slice of
the dense columns, answering with the **original global OIDs**, and a
scatter-gather coordinator (:mod:`repro.exec.coordinator`) reassembles
byte-identical global answers:

* per-shard meets are global meets verbatim (their ancestry never
  leaves the shard);
* meets *at the root* are reconstructed by the coordinator from each
  shard's *residue* — the input pairs no local meet absorbed — which
  is exactly the pending set the monolithic roll-up would deliver to
  the root (each input pair is either absorbed by exactly one emitted
  meet or survives to the root, on both backends).

Physically, shard ``k`` covers the OID range ``[start_k, end_k)`` (a
run of whole top-level subtrees) plus a **stand-in root** at OID
``start_k - 1`` so the dense columns stay gap-free.  For shard 0 the
stand-in *is* the true document root (pre-order puts the first child
at ``root_oid + 1``), and shard 0 alone carries the root's attribute
associations and rank row; the other stand-ins own no associations, so
they can never appear in a hit or an answer — shard services drop
their local root from every result and the coordinator re-derives the
one true root globally.  All shards share the complete path summary,
so pids, paths, labels and depths are globally consistent.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..datamodel.errors import ReproError
from ..monet.bat import BAT
from ..monet.engine import MonetXML

__all__ = ["ShardingError", "ShardPlan", "compute_shard_plan", "slice_store"]


class ShardingError(ReproError):
    """A store that cannot be sharded, or a malformed shard layout."""


@dataclass(frozen=True)
class ShardPlan:
    """The immutable layout of one sharded collection.

    ``starts[k] .. ends[k]`` is shard ``k``'s half-open range of real
    OIDs (whole top-level subtrees); the root OID belongs to shard 0.
    The global node/path/relation counts ride along so a coordinator
    that never loads a full store can still describe the collection
    (and render byte-identical ``explain`` output).
    """

    root_oid: int
    root_pid: int
    node_count: int
    path_count: int
    relation_count: int
    starts: Tuple[int, ...]
    ends: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.starts) != len(self.ends) or not self.starts:
            raise ShardingError("shard plan needs matching start/end runs")
        previous = self.root_oid
        for start, end in zip(self.starts, self.ends):
            if start != previous + 1 or end < start:
                raise ShardingError(
                    f"shard ranges must tile [{self.root_oid + 1}..) "
                    f"contiguously; got starts={self.starts} ends={self.ends}"
                )
            previous = end - 1

    @property
    def shard_count(self) -> int:
        return len(self.starts)

    def shard_of(self, oid: int) -> int:
        """The shard holding a real OID (the root lives in shard 0)."""
        if oid == self.root_oid:
            return 0
        shard = bisect_right(self.starts, oid) - 1
        if shard < 0 or oid >= self.ends[shard]:
            raise ShardingError(f"OID {oid} is outside the sharded range")
        return shard

    def fingerprint(self) -> Tuple:
        """The layout component of shard-aware cache keys."""
        return (self.shard_count, self.starts, self.ends)

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.shard_count,
            "root_oid": self.root_oid,
            "root_pid": self.root_pid,
            "node_count": self.node_count,
            "path_count": self.path_count,
            "relation_count": self.relation_count,
            "starts": list(self.starts),
            "ends": list(self.ends),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ShardPlan":
        try:
            return cls(
                root_oid=int(payload["root_oid"]),  # type: ignore[arg-type]
                root_pid=int(payload["root_pid"]),  # type: ignore[arg-type]
                node_count=int(payload["node_count"]),  # type: ignore[arg-type]
                path_count=int(payload["path_count"]),  # type: ignore[arg-type]
                relation_count=int(payload["relation_count"]),  # type: ignore[arg-type]
                starts=tuple(int(s) for s in payload["starts"]),  # type: ignore[union-attr]
                ends=tuple(int(e) for e in payload["ends"]),  # type: ignore[union-attr]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ShardingError(f"malformed shard layout: {exc}") from exc


def _subtree_spans(store: MonetXML) -> List[Tuple[int, int]]:
    """Contiguous [start, end) OID span per top-level subtree.

    Verifies the pre-order invariant the whole scheme rests on: inside
    each span every non-head node's parent must also lie in the span —
    which by induction makes the span exactly one subtree.  A store
    with shuffled OIDs (nothing in this repo produces one, but legacy
    JSON images are caller-supplied) is rejected rather than sharded
    wrongly.
    """
    root = store.root_oid
    children = sorted(store.children_of(root))
    if store.first_oid != root:
        raise ShardingError(
            f"sharding expects the root to carry the first OID "
            f"(root={root}, first={store.first_oid})"
        )
    spans: List[Tuple[int, int]] = []
    boundary = store.last_oid + 1
    for position, child in enumerate(children):
        end = children[position + 1] if position + 1 < len(children) else boundary
        spans.append((child, end))
    if spans and (spans[0][0] != root + 1 or spans[-1][1] != boundary):
        raise ShardingError("top-level subtrees do not tile the OID range")
    # One pass over the dense parent column: inside each span every
    # non-head node's parent must lie in [head, oid) — by induction the
    # span is then exactly one subtree.
    _parent_col = store.dense_columns()[1]
    first = store.first_oid
    for start, end in spans:
        for oid in range(start + 1, end):
            parent = _parent_col[oid - first]
            if parent is None or not start <= parent < oid:
                raise ShardingError(
                    f"store OIDs are not in document pre-order near OID "
                    f"{oid}; cannot shard this store"
                )
    return spans


def compute_shard_plan(store: MonetXML, shards: int) -> ShardPlan:
    """Partition the top-level subtrees into ``shards`` balanced runs.

    The requested count is clamped to the number of top-level subtrees
    (a three-subtree document cannot use more than three shards); a
    childless root yields one empty-range shard, which still serves
    root-only hits correctly.
    """
    if shards < 1:
        raise ShardingError(f"shard count must be >= 1, got {shards}")
    spans = _subtree_spans(store)
    root = store.root_oid
    if not spans:
        return _plan_for(store, [(root + 1, root + 1)])
    count = min(shards, len(spans))
    total = store.node_count - 1
    runs: List[Tuple[int, int]] = []
    cursor = 0
    for shard in range(count):
        remaining_shards = count - shard
        # Greedy balance: aim each shard at its fair share of what is
        # left, but always take at least one subtree.
        target = (total - (spans[cursor][0] - root - 1)) / remaining_shards
        start = spans[cursor][0]
        end = spans[cursor][1]
        cursor += 1
        while (
            cursor < len(spans)
            and len(spans) - cursor >= remaining_shards
            and (end - start) + (spans[cursor][1] - spans[cursor][0]) / 2
            <= target
        ):
            end = spans[cursor][1]
            cursor += 1
        if shard == count - 1:
            end = spans[-1][1]
            cursor = len(spans)
        runs.append((start, end))
    return _plan_for(store, runs)


def _plan_for(store: MonetXML, runs: List[Tuple[int, int]]) -> ShardPlan:
    return ShardPlan(
        root_oid=store.root_oid,
        root_pid=store.pid_of(store.root_oid),
        node_count=store.node_count,
        path_count=len(store.summary) - 1,
        relation_count=len(store.edges) + len(store.strings),
        starts=tuple(start for start, _ in runs),
        ends=tuple(end for _, end in runs),
    )


def slice_store(store: MonetXML, plan: ShardPlan) -> List[MonetXML]:
    """Materialize one independent :class:`MonetXML` store per shard.

    Each shard shares the parent store's path summary instance and
    keeps the original OIDs; see the module docstring for the
    stand-in-root scheme.  The slices are plain stores: they snapshot,
    index and validate like any other.
    """
    if store.root_oid != plan.root_oid or store.node_count != plan.node_count:
        raise ShardingError("shard plan does not describe this store")
    root = store.root_oid
    root_pid = store.pid_of(root)
    root_rank = store.rank_of(root)
    pid_col, parent_col, rank_col = store.dense_columns()
    first = store.first_oid
    starts = plan.starts
    count = plan.shard_count
    stand_ins = [lo - 1 for lo in starts]  # shard 0's IS the true root

    def _bucket(
        relations, routing_side: int, rewrite_root_head: bool
    ) -> List[Dict[int, BAT]]:
        """One pass per relation, rows bucketed by owning shard.

        ``routing_side`` picks the column that decides the shard (the
        child for edges, the owner for strings/ranks); rows owned by
        the true root go to shard 0 (its stand-in is the real root).
        """
        buckets: List[Dict[int, List[Tuple]]] = [{} for _ in range(count)]
        for pid, relation in relations.items():
            for row in zip(relation.heads, relation.tails):
                oid = row[routing_side]
                if oid == root:
                    shard = 0
                else:
                    shard = bisect_right(starts, oid) - 1
                if rewrite_root_head and row[0] == root:
                    row = (stand_ins[shard], row[1])
                buckets[shard].setdefault(pid, []).append(row)
        return [
            {
                pid: BAT(rows, name=relations[pid].name)
                for pid, rows in bucket.items()
            }
            for bucket in buckets
        ]

    edge_parts = _bucket(store.edges, routing_side=1, rewrite_root_head=True)
    # The true root's associations (attributes, rank) route to shard 0
    # only; duplicating them would duplicate hits.
    string_parts = _bucket(store.strings, routing_side=0, rewrite_root_head=False)
    rank_parts = _bucket(store.ranks, routing_side=0, rewrite_root_head=False)

    shards: List[MonetXML] = []
    for shard_id, (lo, hi) in enumerate(zip(plan.starts, plan.ends)):
        stand_in = stand_ins[shard_id]
        pids = [root_pid] + list(pid_col[lo - first : hi - first])
        parents: List[Optional[int]] = [None] + [
            stand_in if parent == root else parent
            for parent in parent_col[lo - first : hi - first]
        ]
        ranks = [root_rank] + list(rank_col[lo - first : hi - first])
        shards.append(
            MonetXML(
                summary=store.summary,
                root_oid=stand_in,
                first_oid=stand_in,
                oid_pid=pids,
                oid_parent=parents,
                oid_rank=ranks,
                edges=edge_parts[shard_id],
                strings=string_parts[shard_id],
                ranks=rank_parts[shard_id],
            )
        )
    return shards
