"""The length-prefixed socket frame protocol between shard peers.

One frame carries one message — a request to run a shard op, or its
response.  The framing reuses the ``.snap`` container's discipline
(fixed struct header, explicit payload length, CRC-32 over the
payload) so a torn or corrupted frame is *detected*, never misparsed::

    frame := magic "RXFM" | version u8 | kind u8 | request_id u64
           | payload_len u32 | crc32 u32 | payload

Payloads are pickled plain data (the :class:`~repro.exec.service`
request/response dicts).  Pickle keeps the shard protocol lossless —
int-keyed dicts, tuples and sets survive — at the price of trust:
**the transport is for cluster-internal links only** (workers bind to
localhost by default; anyone who can reach a worker port can run code
in it, exactly like a database's wire port).

Every failure mode is a typed error:

* :class:`FrameError` — bad magic, version mismatch, CRC failure, a
  frame running past end-of-stream (a *torn frame*);
* :class:`ConnectionClosedError` — the peer went away cleanly between
  frames;
* :class:`TransportError` — the base: any socket-level fault.

All three carry ``code="shard_unavailable"`` and are retryable — the
cluster executor treats each as "this replica failed, try the next".
Blocking reads honour the caller's deadline by translating the
remaining budget into socket timeouts; an expired budget raises
:class:`~repro.exec.deadline.DeadlineExceededError` instead of a
transport fault (there is nothing wrong with the peer).
"""

from __future__ import annotations

import math
import pickle
import socket
import struct
import time
import zlib
from typing import Optional, Tuple

from ..datamodel.errors import ReproError
from .deadline import Deadline, DeadlineExceededError

__all__ = [
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "MAX_FRAME_BYTES",
    "ConnectionClosedError",
    "FrameError",
    "TransportError",
    "connect",
    "read_raw_frame",
    "recv_frame",
    "send_frame",
    "sleep_within_deadline",
]

#: First four bytes of every frame.
FRAME_MAGIC = b"RXFM"
#: Bumped on any incompatible frame-layout change.
FRAME_VERSION = 1

KIND_REQUEST = 1
KIND_RESPONSE = 2

#: A frame claiming a larger payload is treated as corruption, not an
#: allocation request — a torn length field must not OOM the reader.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_FRAME_HEADER = struct.Struct("<4sBBQII")


class TransportError(ReproError):
    """A socket-level fault while talking to a shard peer."""

    code = "shard_unavailable"
    retryable = True


class ConnectionClosedError(TransportError):
    """The peer closed the connection."""


class FrameError(TransportError):
    """Framing or checksum violation: a torn or corrupted frame."""


def _effective_timeout(deadline: Optional[Deadline], timeout: Optional[float]) -> float:
    """The socket timeout for the next blocking op (may be ``inf``)."""
    budget = math.inf if deadline is None else deadline.remaining()
    if timeout is not None:
        budget = min(budget, timeout)
    return budget


def _settimeout(sock: socket.socket, budget: float) -> None:
    sock.settimeout(None if math.isinf(budget) else max(budget, 1e-6))


def _check_deadline(deadline: Optional[Deadline], what: str) -> None:
    if deadline is not None and deadline.expired:
        raise DeadlineExceededError(f"{what} exceeded its deadline")


def send_frame(
    sock: socket.socket,
    kind: int,
    request_id: int,
    payload_obj: object,
    *,
    deadline: Optional[Deadline] = None,
    timeout: Optional[float] = None,
) -> None:
    """Pickle ``payload_obj`` and send it as one framed message."""
    payload = pickle.dumps(payload_obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    header = _FRAME_HEADER.pack(
        FRAME_MAGIC,
        FRAME_VERSION,
        kind,
        request_id,
        len(payload),
        zlib.crc32(payload),
    )
    _check_deadline(deadline, "send")
    _settimeout(sock, _effective_timeout(deadline, timeout))
    try:
        sock.sendall(header + payload)
    except socket.timeout as exc:
        _check_deadline(deadline, "send")
        raise TransportError(f"send timed out: {exc}") from exc
    except OSError as exc:
        raise TransportError(f"send failed: {exc}") from exc


def _recv_exact(
    sock: socket.socket,
    length: int,
    deadline: Optional[Deadline],
    timeout: Optional[float],
    *,
    what: str,
    mid_frame: bool,
) -> bytes:
    chunks = []
    got = 0
    while got < length:
        _check_deadline(deadline, what)
        _settimeout(sock, _effective_timeout(deadline, timeout))
        try:
            chunk = sock.recv(length - got)
        except socket.timeout as exc:
            _check_deadline(deadline, what)
            raise TransportError(f"{what} timed out: {exc}") from exc
        except OSError as exc:
            raise TransportError(f"{what} failed: {exc}") from exc
        if not chunk:
            if mid_frame or got:
                raise FrameError(
                    f"torn frame: peer closed mid-{what} "
                    f"({got}/{length} bytes)"
                )
            raise ConnectionClosedError("peer closed the connection")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def _parse_header(header: bytes) -> Tuple[int, int, int, int]:
    magic, version, kind, request_id, length, crc = _FRAME_HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if version != FRAME_VERSION:
        raise FrameError(
            f"unsupported frame version {version} "
            f"(this peer speaks {FRAME_VERSION})"
        )
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame claims {length} payload bytes "
            f"(limit {MAX_FRAME_BYTES}); treating as corruption"
        )
    return kind, request_id, length, crc


def recv_frame(
    sock: socket.socket,
    *,
    deadline: Optional[Deadline] = None,
    timeout: Optional[float] = None,
) -> Tuple[int, int, object]:
    """Receive one frame: ``(kind, request_id, payload object)``.

    Validates magic, version, length and CRC before unpickling; any
    violation is a :class:`FrameError` and the connection must be
    discarded (stream state is unknown after a bad frame).
    """
    header = _recv_exact(
        sock, _FRAME_HEADER.size, deadline, timeout,
        what="frame header", mid_frame=False,
    )
    kind, request_id, length, crc = _parse_header(header)
    payload = _recv_exact(
        sock, length, deadline, timeout,
        what="frame payload", mid_frame=True,
    )
    if zlib.crc32(payload) != crc:
        raise FrameError(
            f"frame {request_id} failed its checksum "
            f"({length} payload bytes)"
        )
    try:
        obj = pickle.loads(payload)
    except Exception as exc:
        raise FrameError(f"frame {request_id} payload undecodable: {exc}") from exc
    return kind, request_id, obj


def read_raw_frame(
    sock: socket.socket,
    *,
    timeout: Optional[float] = None,
) -> bytes:
    """One whole frame as raw bytes (header + payload), unvalidated
    beyond framing.

    This is the chaos proxy's primitive: it forwards, delays, tears
    or drops *frames* without understanding their payloads.
    """
    header = _recv_exact(
        sock, _FRAME_HEADER.size, None, timeout,
        what="frame header", mid_frame=False,
    )
    _kind, _request_id, length, _crc = _parse_header(header)
    payload = _recv_exact(
        sock, length, None, timeout, what="frame payload", mid_frame=True
    )
    return header + payload


def connect(
    address: Tuple[str, int],
    *,
    timeout: float = 5.0,
) -> socket.socket:
    """A connected TCP socket with NODELAY set (small framed messages)."""
    try:
        sock = socket.create_connection(address, timeout=timeout)
    except OSError as exc:
        raise TransportError(
            f"cannot connect to shard worker at {address[0]}:{address[1]}: {exc}"
        ) from exc
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def sleep_within_deadline(
    seconds: float, deadline: Optional[Deadline]
) -> None:
    """Sleep, but never past the current deadline."""
    if deadline is not None:
        seconds = min(seconds, deadline.remaining())
    if seconds > 0:
        time.sleep(seconds)
