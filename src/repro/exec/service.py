"""Per-shard request handlers — the pure function a shard executes.

A :class:`ShardService` wraps one shard store (see
:mod:`repro.exec.sharding`) and answers plain-data requests with
plain-data responses: every parameter and every response is built from
JSON/pickle-safe primitives, so the same handler serves the in-process
:class:`~repro.exec.executors.SerialExecutor` and the process-pool
workers of :class:`~repro.exec.executors.ParallelExecutor` unchanged.
Handlers are **read-only** — one service instance is safe under the
multi-threaded HTTP server; the only retained state is a
generation-keyed memo of parsed query templates and their plans
(prepared statements re-execute without re-parsing), which at worst
recomputes an equivalent entry under a race.

The contract with the coordinator (:mod:`repro.exec.coordinator`):

* the shard's stand-in root never appears in a response — meets at it
  are dissolved back into the **residue** (the input pairs no local
  meet absorbed), binding sets drop it, and per-variable *root flags*
  report what the coordinator needs to decide the true root's
  membership globally;
* full-text terms arrive with a coordinator-chosen **mode** (``token``
  / ``multi`` / ``scan``): the index-vs-scan fallback of
  :meth:`repro.fulltext.search.SearchEngine.find` depends on whether
  the *global* index has hits, which no single shard can know, so the
  shard reports its local index counts and the coordinator re-scatters
  with ``scan_terms`` when the global count is zero.
"""

from __future__ import annotations

import heapq
import os
import time
from operator import itemgetter
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .. import kernels
from ..core.engine import NearestConceptEngine
from ..core.restrictions import resolve_pids
from ..datamodel.document import CDATA_LABEL, STRING_ATTRIBUTE
from ..datamodel.errors import ReproError
from ..fulltext.index import Hits
from ..fulltext.search import SearchEngine
from ..fulltext.tokenizer import tokenize
from ..monet.engine import MonetXML
from ..monet.reassembly import object_text
from ..query.ast import (
    ContainsCondition,
    DistanceItem,
    MeetItem,
    PathItem,
    PathVarItem,
    Query,
    TagItem,
    TextItem,
    VarItem,
)
from ..query.executor import QueryProcessor
from ..query.parser import parse_query
from ..query.planner import plan_query

__all__ = [
    "ShardService",
    "dissolve_stand_in_root",
    "term_mode",
    "hits_for_mode",
    "item_variable",
]

_key_of = itemgetter(0)


def term_mode(term: str, case_sensitive: bool) -> str:
    """The find-semantics branch a term takes — mirrors ``SearchEngine.find``.

    ``token`` terms consult the inverted index (and fall back to a
    substring scan only when the *global* index misses); ``multi``
    terms run the conjunctive-tokens-plus-substring-confirm path;
    everything else is a straight ``scan``.
    """
    tokens = tokenize(term, case_sensitive)
    if len(tokens) == 1 and all(ch.isalnum() for ch in term.strip()):
        return "token"
    if len(tokens) > 1:
        return "multi"
    return "scan"


def hits_for_mode(
    search: SearchEngine, term: str, mode: str, force_scan: bool
) -> Hits:
    """Local hits for one term under a coordinator-decided mode."""
    if force_scan or mode == "scan":
        return search.scan(term)
    if mode == "token":
        # No local scan fallback: that decision is global.
        return search.index.search(term)
    hits = search.index.search_conjunctive(
        tokenize(term, search.case_sensitive)
    )
    return Hits(term=term, postings=search._confirm_substring(term, hits))


def item_variable(item, plan) -> Optional[str]:
    """The node variable a row-wise select item enumerates over."""
    if isinstance(item, (VarItem, TagItem, PathItem, TextItem)):
        return item.variable
    if isinstance(item, PathVarItem):
        return plan.path_variable_owner[item.name]
    return None


def dissolve_stand_in_root(store, tagged, results):
    """Split a shard-local roll-up into (kept meets, residue).

    The correctness-critical heart of the sharding scheme, shared by
    the nearest pipeline and ``meet(...)`` query items: meets at the
    shard's stand-in root are dropped (the coordinator re-derives the
    one true root meet globally), and the residue — every input pair
    no *kept* meet absorbed, with its depth — is exactly the pending
    set the monolithic roll-up would deliver to the document root.
    """
    root = store.root_oid
    covered: Set[Tuple[object, int]] = set()
    kept = []
    for result in results:
        if result.oid == root:
            continue
        covered.update(result.tokens)
        kept.append(result)
    depth_of = store.depth_of
    residue = sorted(
        (token, oid, depth_of(oid))
        for token, oid in set(tagged)
        if (token, oid) not in covered
    )
    return kept, residue


def _text_head(store: MonetXML, oid: int, width: int) -> str:
    """The first characters of ``object_text(store, oid)``, early-stopped.

    Walks the same document order and joins with the same separator,
    but stops as soon as ``width + 1`` characters are secured — enough
    for the caller to reproduce both the exact short text and the
    truncation decision of :meth:`NearestConceptEngine.snippet`.
    """
    pieces: List[str] = []
    length = -1  # join() adds len(pieces) - 1 separators
    stack = [oid]
    while stack and length <= width:
        current = stack.pop()
        if store.summary.label(store.pid_of(current)) == CDATA_LABEL:
            value = store.attributes_of(current).get(STRING_ATTRIBUTE)
            if value:
                pieces.append(value)
                length += len(value) + 1
        stack.extend(reversed(store.children_of(current)))
    return " ".join(pieces)[: width + 1]


class ShardService:
    """Stateless request handlers over one shard store."""

    def __init__(
        self,
        store: MonetXML,
        *,
        shard_id: int,
        case_sensitive: bool = False,
        backend: Optional[str] = None,
    ):
        self.shard_id = shard_id
        self.store = store
        self.case_sensitive = bool(case_sensitive)
        self.backend_name = backend or "steered"
        self.engine = NearestConceptEngine(
            store,
            case_sensitive=self.case_sensitive,
            backend=self.backend_name,
        )
        #: normalized text → (generation, parsed template, schema plan).
        #: Keyed per force_scan flag so differential runs never reuse an
        #: indexed plan.  Races at worst duplicate an equivalent entry.
        self._plans: Dict[
            Tuple[str, bool], Tuple[int, Query, object]
        ] = {}
        self._plan_hits = 0
        self._plan_misses = 0

    # -- dispatch -------------------------------------------------------
    def handle(self, op: str, params: Dict[str, object]) -> Dict[str, object]:
        # The coordinator stamps the trace id into the op payload
        # (riding the same frames/pipes as the params themselves);
        # popping it here keeps every _op_* handler trace-oblivious.
        trace_id = params.pop("_trace", None)
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ReproError(f"unknown shard operation {op!r}")
        started = time.perf_counter()
        response = handler(params)
        elapsed_ms = round((time.perf_counter() - started) * 1000, 3)
        response["shard"] = self.shard_id
        response["elapsed_ms"] = elapsed_ms
        if trace_id is not None:
            # One span per handled op, produced *in this process* (the
            # worker, for pool/cluster executors) — the coordinator
            # absorbs it back into the request's trace the same way it
            # folds worker index-build counters.
            response["_spans"] = {
                "trace_id": trace_id,
                "spans": [
                    {
                        "name": f"shard[{self.shard_id}].{op}",
                        "ms": elapsed_ms,
                        "pid": os.getpid(),
                    }
                ],
            }
        return response

    # -- lifecycle / observability --------------------------------------
    def _op_ping(self, params: Dict[str, object]) -> Dict[str, object]:
        # Touching the indexes here is the warm-up: on snapshot-loaded
        # shards both come from the seeded caches (zero builds).
        _ = self.engine.index
        backend = self.engine.backend
        if self.backend_name in ("indexed", "vector"):
            _ = backend.index
        # Vector shards additionally bind their NumPy column views so
        # the first query pays no view setup.
        _ = getattr(backend, "kernels", None)
        return {
            "pid": os.getpid(),
            "nodes": self.store.node_count,
            "backend": self.backend_name,
            "kernel_tier": kernels.active_tier(backend.name),
            "case_sensitive": self.case_sensitive,
        }

    # -- full-text ------------------------------------------------------
    def _resolve_hits(
        self,
        terms: Iterable[Tuple[str, str]],
        scan_terms: Set[str],
    ) -> Tuple[Dict[str, Hits], Dict[str, int]]:
        hits: Dict[str, Hits] = {}
        index_counts: Dict[str, int] = {}
        for term, mode in terms:
            found = hits_for_mode(
                self.engine.search, term, mode, term in scan_terms
            )
            hits[term] = found
            if mode == "token" and term not in scan_terms:
                index_counts[term] = len(found)
        return hits, index_counts

    def _op_hits(self, params: Dict[str, object]) -> Dict[str, object]:
        scan_terms = set(params.get("scan_terms", ()))
        hits, index_counts = self._resolve_hits(params["terms"], scan_terms)
        pid_of = self.store.pid_of
        return {
            "terms": {
                term: sorted((oid, pid_of(oid)) for oid in found.oids())
                for term, found in hits.items()
            },
            "index_counts": index_counts,
        }

    # -- nearest concepts -----------------------------------------------
    def _op_nearest(self, params: Dict[str, object]) -> Dict[str, object]:
        terms: List[Tuple[str, str]] = [
            (term, mode) for term, mode in params["terms"]
        ]
        scan_terms = set(params.get("scan_terms", ()))
        exclude_pids = set(params.get("exclude_pids", ()))
        require_all = bool(params.get("require_all_terms", False))
        within = params.get("within")
        limit = params.get("limit")
        wanted = {term for term, _ in terms}

        hits, index_counts = self._resolve_hits(terms, scan_terms)
        tagged: List[Tuple[str, int]] = []
        for term, found in hits.items():
            for oid in found.oids():
                tagged.append((term, oid))

        store = self.store
        engine = self.engine
        batched = getattr(engine.backend, "meet_term_hits", None)
        if batched is not None:
            # Column fast path: hand the backend whole postings columns
            # instead of the flattened pair list.  ``tagged`` is still
            # needed below — the residue is defined over input pairs.
            results = batched(hits.items())
        else:
            results = engine.backend.meet_tagged(tagged)
        local, residue = dissolve_stand_in_root(store, tagged, results)

        if exclude_pids:
            pid_of = store.pid_of
            local = [r for r in local if pid_of(r.oid) not in exclude_pids]
        if require_all:
            local = [r for r in local if set(r.tags) >= wanted]
        keyed = engine._rank_keys(local)
        if within is not None:
            keyed = [(key, r) for key, r in keyed if key[0] <= within]
        if limit is not None:
            keyed = heapq.nsmallest(limit, keyed, key=_key_of)
        else:
            keyed.sort(key=_key_of)

        meets = []
        pid_of = store.pid_of
        for _key, result in keyed:
            concept = engine._annotate(result)
            meets.append(
                {
                    "oid": concept.oid,
                    "pid": pid_of(concept.oid),
                    "origins": list(concept.origins),
                    "terms": list(concept.terms),
                    "joins": concept.joins,
                    "spread": concept.spread,
                    "depth": concept.depth,
                }
            )
        return {
            "meets": meets,
            "residue": residue,
            "index_counts": index_counts,
        }

    # -- presentation ----------------------------------------------------
    def _op_snippets(self, params: Dict[str, object]) -> Dict[str, object]:
        width = int(params.get("width", 120))
        return {
            "snippets": {
                oid: self.engine.snippet(oid, width=width)
                for oid in params["oids"]
            }
        }

    def _op_text_head(self, params: Dict[str, object]) -> Dict[str, object]:
        width = int(params.get("width", 120))
        return {"part": _text_head(self.store, self.store.root_oid, width)}

    def _op_root_text(self, params: Dict[str, object]) -> Dict[str, object]:
        return {"part": object_text(self.store, self.store.root_oid)}

    def _op_root_xml_parts(self, params: Dict[str, object]) -> Dict[str, object]:
        """This shard's slice of the serialized document root.

        Each top-level subtree is written exactly as the monolithic
        serializer would emit it as a child of the root (level 1), so
        the coordinator only wraps the concatenated parts in the root
        tag.  The ``only_text`` inline special case of the serializer
        (all root children are cdata) needs the raw escaped strings
        instead, so both forms are returned.
        """
        from ..datamodel.serializer import _write_node, escape_text
        from ..monet.reassembly import reassemble_subtree

        indent = params.get("indent")
        store = self.store
        root = store.root_oid
        out: List[str] = []
        inline: List[str] = []
        cdata_only = True
        for child_oid in store.children_of(root):
            node = reassemble_subtree(store, child_oid)
            _write_node(node, out, indent, 1)
            if node.label == CDATA_LABEL:
                inline.append(escape_text(node.string_value or ""))
            else:
                cdata_only = False
        return {
            "children": "".join(out),
            "cdata_only": cdata_only,
            "inline": inline,
            "root_attributes": store.attributes_of(root),
        }

    def _op_pids(self, params: Dict[str, object]) -> Dict[str, object]:
        pid_of = self.store.pid_of
        return {"pids": {oid: pid_of(oid) for oid in params["oids"]}}

    def _op_to_xml(self, params: Dict[str, object]) -> Dict[str, object]:
        return {
            "xml": self.engine.to_xml(
                int(params["oid"]), indent=int(params.get("indent", 2))
            )
        }

    # -- query language --------------------------------------------------
    def _template_plan(self, text: str, force_scan: bool):
        """The parsed template and schema plan, memoized per generation."""
        key = (text.strip(), force_scan)
        generation = self.store.generation
        cached = self._plans.get(key)
        if cached is not None and cached[0] == generation:
            self._plan_hits += 1
            return cached[1], cached[2]
        self._plan_misses += 1
        template = parse_query(text)
        plan = plan_query(
            template,
            self.store,
            force_scan=force_scan,
            case_sensitive=self.case_sensitive,
        )
        self._plans[key] = (generation, template, plan)
        return template, plan

    def _op_query(self, params: Dict[str, object]) -> Dict[str, object]:
        text = str(params["text"])
        scan_needles = set(params.get("scan_needles", ()))
        bindings = params.get("params") or None
        force_scan = bool(params.get("force_scan", False))
        store = self.store
        root = store.root_oid
        template, plan = self._template_plan(text, force_scan)
        parsed: Query = template
        if bindings or parsed.parameters:
            # The coordinator binds first and surfaces errors before the
            # scatter, so this bind never fails on a well-formed op.
            parsed = template.bind(dict(bindings or {}))
            plan = plan.rebound(parsed)
        search = _CoordinatedSearch(
            store, case_sensitive=self.case_sensitive, scan_terms=scan_needles
        )
        processor = QueryProcessor(
            store,
            search=search,
            max_rows=None,
            backend=self.engine.backend,
            force_scan=force_scan,
        )

        index_counts: Dict[str, int] = {}
        for condition in parsed.conditions:
            if isinstance(condition, ContainsCondition):
                needle = condition.needle
                if (
                    term_mode(needle, self.case_sensitive) == "token"
                    and needle not in scan_needles
                ):
                    index_counts[needle] = len(search.index.search(needle))

        aggregate = plan.aggregate
        if aggregate:
            needed = sorted(
                {
                    variable
                    for item in parsed.select
                    for variable in (
                        item.variables
                        if isinstance(item, MeetItem)
                        else (item.left, item.right)
                        if isinstance(item, DistanceItem)
                        else ()
                    )
                }
            )
        else:
            needed = processor._referenced_variables(parsed)

        variables: Dict[str, Dict[str, object]] = {}
        minimal: Dict[str, List[int]] = {}
        for variable in needed:
            pattern = processor._pattern_oids(plan, variable)
            closures = [
                processor._condition_closure(condition, plan)
                for condition in parsed.conditions_for(variable)
            ]
            bound = set(pattern)
            for closure in closures:
                bound &= closure
            public = sorted(bound - {root})
            entry: Dict[str, object] = {
                "bound": public,
                "root_pattern": root in pattern,
                "root_conds": [root in closure for closure in closures],
            }
            if aggregate:
                minimal[variable] = sorted(
                    processor._minimal(bound - {root})
                )
                entry["minimal"] = minimal[variable]
            else:
                cells: Dict[str, List[object]] = {}
                for index, item in enumerate(parsed.select):
                    if item_variable(item, plan) == variable:
                        cells[str(index)] = [
                            processor._cell(plan, item, {variable: oid})
                            for oid in public
                        ]
                entry["cells"] = cells
            variables[variable] = entry

        response: Dict[str, object] = {
            "variables": variables,
            "index_counts": index_counts,
        }
        if aggregate:
            response["meet_items"] = {
                str(index): self._meet_item(plan, item, minimal)
                for index, item in enumerate(parsed.select)
                if isinstance(item, MeetItem)
            }
            response["distance_items"] = {
                str(index): self._distance_item(item, minimal)
                for index, item in enumerate(parsed.select)
                if isinstance(item, DistanceItem)
            }
        return response

    def _meet_item(
        self, plan, item: MeetItem, minimal: Dict[str, List[int]]
    ) -> Dict[str, object]:
        store = self.store
        root = store.root_oid
        tagged = [
            (variable, oid)
            for variable in item.variables
            for oid in minimal[variable]
        ]
        results = self.engine.backend.meet_tagged(tagged)
        local, residue = dissolve_stand_in_root(store, tagged, results)
        depth_of = store.depth_of
        excluded = resolve_pids(store, item.exclude_paths)
        root_pid = store.pid_of(root)
        if item.exclude_root:
            excluded.add(root_pid)
        cells: List[int] = []
        pid_of = store.pid_of
        for meet in local:
            if pid_of(meet.oid) in excluded:
                continue
            if item.within is not None:
                meet_depth = depth_of(meet.oid)
                joins = sum(
                    depth_of(oid) - meet_depth for oid in meet.origins
                )
                if joins > item.within:
                    continue
            cells.append(meet.oid)
        return {
            "meets": sorted(cells),
            "residue": residue,
            "root_excluded": root_pid in excluded,
        }

    def _distance_item(
        self, item: DistanceItem, minimal: Dict[str, List[int]]
    ) -> Dict[str, object]:
        depth_of = self.store.depth_of
        left = minimal[item.left]
        right = minimal[item.right]
        pair_joins = None
        if len(left) == 1 and len(right) == 1:
            pair_joins = self.engine.backend.meet(left[0], right[0]).joins
        return {
            "witnesses": {
                item.left: [(oid, depth_of(oid)) for oid in left],
                item.right: [(oid, depth_of(oid)) for oid in right],
            },
            "pair_joins": pair_joins,
        }


class _CoordinatedSearch(SearchEngine):
    """A :class:`SearchEngine` whose index-vs-scan choice is imposed.

    The stock ``find`` falls back to a substring scan when the local
    index misses — a decision that must be made against the *global*
    index under sharding.  This variant follows the coordinator's
    per-term verdict instead (``scan_terms`` forces the fallback).
    """

    def __init__(self, store, *, case_sensitive: bool, scan_terms: Set[str]):
        super().__init__(store, case_sensitive=case_sensitive)
        self._scan_terms = frozenset(scan_terms)

    def find(self, term: str) -> Hits:
        return hits_for_mode(
            self, term, term_mode(term, self.case_sensitive),
            term in self._scan_terms,
        )
