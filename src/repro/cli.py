"""Command-line interface: load XML, inspect it, run nearest-concept
queries — the "ad hoc user" workflow of the paper in one binary.

Usage (also via ``python -m repro``)::

    repro describe  doc.xml
    repro search    doc.xml Bit 1999 --exclude-root --limit 5
    repro search    doc.xml Bit 1999 --backend indexed
    repro query     doc.xml "select meet($a,$b) from # $a, # $b \\
                             where $a contains 'Bit' and $b contains '1999'"
    repro shred     doc.xml store.json      # persist the Monet image
    repro search    store.json Bit 1999     # query the image directly

Inputs ending in ``.json`` are treated as persisted Monet images;
anything else is parsed as XML.

``--backend`` picks the meet execution strategy (``steered`` — the
paper's per-query parent walks, the default — or ``indexed`` — the
precomputed Euler-RMQ LCA index; see :mod:`repro.core.backends`).
``--cache N`` enables the generation-keyed result cache with capacity
N, and ``--stats`` reports timing and cache counters on stderr (see
:mod:`repro.core.result_cache`).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path as FsPath
from typing import Optional, Sequence

from .core.backends import BACKEND_NAMES
from .core.engine import NearestConceptEngine
from .datamodel.errors import ReproError
from .datamodel.parser import parse_document
from .monet import storage
from .monet.stats import collect_statistics
from .monet.transform import monet_transform
from .query.executor import QueryProcessor

__all__ = ["main", "build_parser"]


def _load_store(path: str, case_sensitive: bool = False):
    source = FsPath(path)
    if not source.exists():
        raise ReproError(f"no such file: {path}")
    if source.suffix == ".json":
        return storage.load(source)
    text = source.read_text(encoding="utf-8")
    return monet_transform(parse_document(text, first_oid=1))


def _cache_capacity(text: str) -> int:
    """argparse type for ``--cache``: 0 disables, N > 0 is the capacity."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"cache capacity must be >= 0 (0 disables), got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nearest Concept Queries over XML (ICDE 2001 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    describe = sub.add_parser(
        "describe", help="print store statistics and the path summary"
    )
    describe.add_argument("source", help="XML file or .json Monet image")
    describe.add_argument(
        "--paths", action="store_true", help="also list every distinct path"
    )

    search = sub.add_parser(
        "search", help="nearest-concept search for two or more terms"
    )
    search.add_argument("source", help="XML file or .json Monet image")
    search.add_argument("terms", nargs="+", help="two or more search terms")
    search.add_argument("--exclude-root", action="store_true")
    search.add_argument(
        "--all-terms",
        action="store_true",
        help="keep only concepts covering every term",
    )
    search.add_argument("--within", type=int, default=None, metavar="K")
    search.add_argument("--limit", type=int, default=10)
    search.add_argument("--case-sensitive", action="store_true")
    search.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="steered",
        help="meet execution strategy (default: steered)",
    )
    search.add_argument(
        "--cache",
        type=_cache_capacity,
        default=0,
        metavar="N",
        help="enable the generation-keyed result cache with capacity N",
    )
    search.add_argument(
        "--stats",
        action="store_true",
        help="print timing and cache statistics to stderr",
    )
    search.add_argument(
        "--xml", action="store_true", help="print each result subtree as XML"
    )

    query = sub.add_parser("query", help="run a select/from/where query")
    query.add_argument("source", help="XML file or .json Monet image")
    query.add_argument("text", help="the query string")
    query.add_argument("--explain", action="store_true")
    query.add_argument("--case-sensitive", action="store_true")
    query.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="steered",
        help="meet execution strategy (default: steered)",
    )
    query.add_argument(
        "--cache",
        type=_cache_capacity,
        default=0,
        metavar="N",
        help="enable the generation-keyed result cache with capacity N",
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="print timing and cache statistics to stderr",
    )

    shred = sub.add_parser(
        "shred", help="Monet-transform an XML file and save the JSON image"
    )
    shred.add_argument("source", help="XML file")
    shred.add_argument("image", help="output .json path")
    return parser


def _command_describe(args) -> int:
    store = _load_store(args.source)
    statistics = collect_statistics(store)
    print(statistics.render())
    if args.paths:
        print("\nall paths:")
        for name in store.relation_names():
            print(f"  {name}")
    return 0


def _print_stats(label: str, seconds: float, cache_info) -> None:
    """One-line serving report on stderr (the ``--stats`` flag)."""
    line = f"[stats] {label}: {seconds * 1000:.1f} ms"
    if cache_info is not None:
        line += (
            f"; cache hits={cache_info.hits} misses={cache_info.misses}"
            f" size={cache_info.currsize}/{cache_info.maxsize}"
            f" hit_rate={cache_info.hit_rate:.0%}"
        )
    print(line, file=sys.stderr)


def _command_search(args) -> int:
    if len(args.terms) < 2:
        print("search needs at least two terms", file=sys.stderr)
        return 2
    store = _load_store(args.source)
    engine = NearestConceptEngine(
        store,
        case_sensitive=args.case_sensitive,
        backend=args.backend,
        cache=args.cache or None,
    )
    started = time.perf_counter()
    concepts = engine.nearest_concepts(
        *args.terms,
        exclude_root=args.exclude_root,
        require_all_terms=args.all_terms,
        within=args.within,
        limit=args.limit,
    )
    if args.stats:
        _print_stats("search", time.perf_counter() - started, engine.cache_info())
    if not concepts:
        print("no nearest concepts found")
        return 1
    for rank, concept in enumerate(concepts, start=1):
        print(
            f"{rank:>3}. <{concept.tag}> oid={concept.oid} "
            f"joins={concept.joins} path={concept.path}"
        )
        if args.xml:
            print(engine.to_xml(concept))
        else:
            print(f"     {engine.snippet(concept)}")
    return 0


def _command_query(args) -> int:
    from .fulltext.search import SearchEngine

    store = _load_store(args.source)
    processor = QueryProcessor(
        store,
        search=SearchEngine(store, case_sensitive=args.case_sensitive),
        backend=args.backend,
        cache=args.cache or None,
    )
    if args.explain:
        print(processor.explain(args.text))
        return 0
    started = time.perf_counter()
    result = processor.execute(args.text)
    if args.stats:
        _print_stats("query", time.perf_counter() - started, processor.cache_info())
    print(result.render_answer(store))
    return 0 if result.rows else 1


def _command_shred(args) -> int:
    store = _load_store(args.source)
    storage.save(store, args.image)
    print(f"wrote {args.image}: {store.node_count} nodes, "
          f"{len(store.relation_names())} relations")
    return 0


_COMMANDS = {
    "describe": _command_describe,
    "search": _command_search,
    "query": _command_query,
    "shred": _command_shred,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
