"""Command-line interface: a thin client of the :mod:`repro.api` facade.

Usage (also via ``python -m repro``)::

    repro describe  doc.xml
    repro search    doc.xml Bit 1999 --exclude-root --limit 5
    repro search    doc.xml Bit 1999 --backend indexed
    repro query     doc.xml "select meet($a,$b) from # $a, # $b \\
                             where $a contains 'Bit' and $b contains '1999'"
    repro shred     doc.xml store.json      # persist the Monet image
    repro search    store.json Bit 1999     # query the image directly
    repro snapshot build doc.xml docs       # binary snapshot into the catalog
    repro snapshot ls                       # list catalog collections
    repro search    --snapshot docs a b     # zero-rebuild warm start
    repro serve     --snapshot docs --port 8080   # HTTP/JSON service
    repro snapshot build big.xml big --shards 4   # sharded collection
    repro serve     --snapshot big --workers 4    # multi-core serving
    repro put       docs memo new.xml       # add a document (live write)
    repro put       docs memo new.xml --replace   # upsert in place
    repro delete    docs memo               # tombstone its OID range
    repro compact   docs                    # fold tombstones + deltas
    repro compact   docs --shards 4         # ... and re-balance sharded

Live writes append delta sections to the collection's bundle and are
replayed on the next open; ``compact`` folds them into a fresh dense
base generation behind the catalog's crash-safe manifest flip.

Source resolution (XML vs ``.json`` image vs ``.snap`` bundle vs
catalog collection, including the fresh-catalog-hit preference over
re-parsing) lives in :func:`repro.api.resolve.resolve_source` — the
CLI only names the source and renders the result; ``--stats`` reports
which load path was taken.

``--backend`` picks the meet execution strategy (``steered`` — the
paper's per-query parent walks, the default — or ``indexed`` — the
precomputed Euler-RMQ LCA index; see :mod:`repro.core.backends`).
When serving from a snapshot the defaults follow the bundle instead:
``indexed`` (its index is already loaded) and the bundle's case mode,
so the warm start stays rebuild-free.
``--cache N`` enables the generation-keyed result cache with capacity
N, and ``--stats`` reports timing and cache counters on stderr (see
:mod:`repro.core.result_cache`).
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from pathlib import Path as FsPath
from typing import Dict, Optional, Sequence

from .api import (
    DEFAULT_CATALOG,
    Database,
    DatabaseOptions,
    NearestRequest,
    QueryRequest,
    ReproServer,
    default_catalog_dir,
    resolve_source,
)
from .core.backends import BACKEND_NAMES
from .datamodel.errors import ReproError
from .monet import storage
from .monet.stats import collect_statistics
from .obs import (
    Trace,
    configure_logging,
    log_event,
    span as trace_span,
    trace_scope,
)
from .snapshot import Catalog

__all__ = ["main", "build_parser"]


def _catalog_dir(args) -> FsPath:
    return default_catalog_dir(getattr(args, "catalog", None))


def _open_catalog(args, *, create: bool = False) -> Catalog:
    return Catalog(_catalog_dir(args), create=create)


def _parse_cluster(groups) -> Optional[tuple]:
    """``--cluster`` values → the options-level address tuple.

    Each ``--cluster`` names one shard's replica group as a
    comma-separated ``HOST:PORT[,HOST:PORT...]`` list; the flag
    repeats once per shard, in shard order.
    """
    if not groups:
        return None
    from .exec.remote import parse_address

    return tuple(
        tuple(parse_address(part.strip()) for part in group.split(","))
        for group in groups
    )


def _database_options(args) -> DatabaseOptions:
    """The facade options encoded by this command's flags."""
    return DatabaseOptions(
        backend=getattr(args, "backend", None),
        case_sensitive=getattr(args, "case_sensitive", None),
        cache=getattr(args, "cache", 0) or None,
        catalog=getattr(args, "catalog", None),
        shards=getattr(args, "shards", None),
        workers=getattr(args, "workers", 0) or 0,
        replicas=getattr(args, "replicas", 0) or 0,
        cluster=_parse_cluster(getattr(args, "cluster", None)),
    )


def _open_database(args, source: Optional[str]) -> Database:
    return Database.open(
        source,
        options=_database_options(args),
        snapshot=getattr(args, "snapshot", None),
    )


def _cache_capacity(text: str) -> int:
    """argparse type for ``--cache``: 0 disables, N > 0 is the capacity."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"cache capacity must be >= 0 (0 disables), got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nearest Concept Queries over XML (ICDE 2001 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    describe = sub.add_parser(
        "describe", help="print store statistics and the path summary"
    )
    describe.add_argument(
        "source", help="XML file, .json Monet image or .snap bundle"
    )
    describe.add_argument(
        "--paths", action="store_true", help="also list every distinct path"
    )
    _add_catalog_probe_options(describe)

    search = sub.add_parser(
        "search", help="nearest-concept search for two or more terms"
    )
    search.add_argument(
        "source",
        nargs="?",
        default=None,
        help="XML file, .json Monet image or .snap bundle (omit with --snapshot: "
        "the first positional is then read as a search term)",
    )
    search.add_argument("terms", nargs="+", help="two or more search terms")
    search.add_argument("--exclude-root", action="store_true")
    search.add_argument(
        "--all-terms",
        action="store_true",
        help="keep only concepts covering every term",
    )
    search.add_argument("--within", type=int, default=None, metavar="K")
    search.add_argument("--limit", type=int, default=10)
    _add_engine_options(search)
    _add_exec_options(search)
    search.add_argument(
        "--cache",
        type=_cache_capacity,
        default=0,
        metavar="N",
        help="enable the generation-keyed result cache with capacity N",
    )
    search.add_argument(
        "--stats",
        action="store_true",
        help="print timing and cache statistics to stderr",
    )
    search.add_argument(
        "--xml", action="store_true", help="print each result subtree as XML"
    )
    search.add_argument(
        "--trace",
        action="store_true",
        help="collect per-stage spans and print them to stderr",
    )
    _add_snapshot_source_options(search)

    query = sub.add_parser("query", help="run a select/from/where query")
    query.add_argument(
        "source",
        nargs="?",
        default=None,
        help="XML file, .json Monet image or .snap bundle (omit with --snapshot: "
        "the first positional is then read as the query)",
    )
    query.add_argument(
        "text", nargs="?", default=None, help="the query string"
    )
    query.add_argument("--explain", action="store_true")
    query.add_argument(
        "--param",
        action="append",
        default=None,
        metavar="NAME=VALUE",
        help="bind $NAME to VALUE before the query runs (repeatable; "
        "parameter markers appear in the query as $name)",
    )
    _add_engine_options(query)
    _add_exec_options(query)
    query.add_argument(
        "--cache",
        type=_cache_capacity,
        default=0,
        metavar="N",
        help="enable the generation-keyed result cache with capacity N",
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="print timing and cache statistics to stderr",
    )
    query.add_argument(
        "--trace",
        action="store_true",
        help="collect per-stage spans and print them to stderr",
    )
    _add_snapshot_source_options(query)

    shred = sub.add_parser(
        "shred", help="Monet-transform an XML file and save the JSON image"
    )
    shred.add_argument("source", help="XML file")
    shred.add_argument("image", help="output .json path")
    shred.add_argument(
        "--indent",
        type=int,
        default=None,
        metavar="N",
        help="pretty-print the JSON image with N-space indentation",
    )
    _add_catalog_probe_options(shred)

    snapshot = sub.add_parser(
        "snapshot",
        help="binary columnar snapshots: build, load, list, drop collections",
    )
    snap_sub = snapshot.add_subparsers(dest="snapshot_command", required=True)

    snap_build = snap_sub.add_parser(
        "build", help="ingest XML (or a .json image) into a catalog snapshot"
    )
    snap_build.add_argument("source", help="XML file or .json Monet image")
    snap_build.add_argument(
        "name",
        nargs="?",
        default=None,
        help="collection name (default: the source file's stem)",
    )
    snap_build.add_argument("--catalog", metavar="DIR", default=None)
    snap_build.add_argument("--case-sensitive", action="store_true")
    snap_build.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="partition into N shards: one bundle per shard, layout "
        "recorded in the catalog (serve with --workers M to scale "
        "past one core)",
    )
    snap_build.add_argument(
        "--index",
        action="append",
        default=None,
        metavar="PATH",
        help="declare a typed value index over this path's element "
        "text or attribute values (repeatable; built into the bundle "
        "and kept through live writes and compaction)",
    )

    snap_load = snap_sub.add_parser(
        "load", help="load a snapshot (warm-start check) and print its stats"
    )
    snap_load.add_argument("name", help="collection name or .snap file")
    snap_load.add_argument("--catalog", metavar="DIR", default=None)
    snap_load.add_argument(
        "--mmap",
        action="store_true",
        help="map the bundle instead of copying it into memory (the open-"
        "time checksum pass still touches every page once)",
    )

    snap_ls = snap_sub.add_parser("ls", help="list catalog collections")
    snap_ls.add_argument("--catalog", metavar="DIR", default=None)
    snap_ls.add_argument(
        "--sections",
        action="store_true",
        help="also read every bundle and report payload bytes per "
        "section group (core columns, lca, fulltext, value-index, "
        "deltas)",
    )

    snap_drop = snap_sub.add_parser("drop", help="remove a catalog collection")
    snap_drop.add_argument("name", help="collection name")
    snap_drop.add_argument("--catalog", metavar="DIR", default=None)

    put = sub.add_parser(
        "put", help="add (or, with --replace, upsert) a document live"
    )
    put.add_argument("collection", help="catalog collection or .snap bundle")
    put.add_argument("name", help="document name within the collection")
    put.add_argument(
        "xml", help="XML fragment file ('-' reads standard input)"
    )
    put.add_argument(
        "--replace",
        action="store_true",
        help="replace an existing document instead of requiring a new name",
    )
    put.add_argument("--catalog", metavar="DIR", default=None)

    delete = sub.add_parser(
        "delete", help="delete a document live (tombstones its OID range)"
    )
    delete.add_argument("collection", help="catalog collection or .snap bundle")
    delete.add_argument("name", help="document name within the collection")
    delete.add_argument("--catalog", metavar="DIR", default=None)

    compact = sub.add_parser(
        "compact",
        help="fold tombstones and delta sections into a fresh dense "
        "generation",
    )
    compact.add_argument("collection", help="catalog collection name")
    compact.add_argument("--catalog", metavar="DIR", default=None)
    compact.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="re-balance the compacted store into N shard bundles",
    )

    serve = sub.add_parser(
        "serve",
        help="serve collections over HTTP/JSON "
        "(POST /v1/search|/v1/nearest|/v1/query)",
    )
    serve.add_argument(
        "source",
        nargs="?",
        default=None,
        help="XML file, .json Monet image, .snap bundle or catalog "
        "collection (omit to serve every catalog collection)",
    )
    serve.add_argument(
        "--name",
        default=None,
        metavar="NAME",
        help="collection name for the served source (default: its stem)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    _add_engine_options(serve)
    _add_exec_options(serve)
    serve.add_argument(
        "--cache",
        type=_cache_capacity,
        default=1024,
        metavar="N",
        help="result-cache capacity per collection (0 disables; default 1024)",
    )
    serve.add_argument(
        "--verbose",
        action="store_true",
        help="log every request to stderr (same as --log-level info)",
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured logs as one JSON object per line",
    )
    serve.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="log threshold (default: info with --verbose, else warning); "
        "access logs are info, failover detail is debug",
    )
    serve.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help="log a WARNING (with spans, when traced) for requests "
        "slower than MS (default: off)",
    )
    serve.add_argument(
        "--max-concurrency",
        type=int,
        default=8,
        metavar="N",
        help="admission control: requests served at once (default 8)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=16,
        metavar="N",
        help="admission control: requests allowed to wait (default 16; "
        "beyond this the server sheds with 503 + Retry-After)",
    )
    serve.add_argument(
        "--queue-timeout",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="longest a request may wait for admission (default 2.0)",
    )
    serve.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="deadline granted to requests that state none via the "
        "X-Repro-Deadline-Ms header (default: unbounded)",
    )
    _add_snapshot_source_options(serve)

    worker = sub.add_parser(
        "shard-worker",
        help="serve shard bundles over the socket protocol "
        "(a cluster replica; normally spawned by serve --replicas)",
    )
    worker.add_argument(
        "--bundle",
        action="append",
        required=True,
        metavar="PATH",
        help=".snap shard bundle to serve (repeatable; the shard id "
        "follows the bundle's recorded shard_index)",
    )
    worker.add_argument(
        "--shard-id",
        action="append",
        type=int,
        default=None,
        metavar="N",
        help="shard id override per --bundle, in order",
    )
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (default 0: ephemeral, printed on stdout)",
    )
    _add_engine_options(worker)
    return parser


def _add_catalog_probe_options(command: argparse.ArgumentParser) -> None:
    """Catalog observability for commands that only *read* a store."""
    command.add_argument(
        "--catalog",
        metavar="DIR",
        default=None,
        help="snapshot catalog consulted for a fresh hit on an XML source",
    )
    command.add_argument(
        "--stats",
        action="store_true",
        help="report which load path (parse vs snapshot) was taken",
    )


def _add_engine_options(command: argparse.ArgumentParser) -> None:
    """Engine knobs whose defaults follow the source.

    Both default to ``None`` so :meth:`DatabaseOptions.effective` can
    tell "not given" from an explicit choice: serving from a snapshot
    bundle then inherits the bundle's case mode and the fastest
    rebuild-free backend (``vector`` when NumPy is importable, else
    ``indexed`` — both consume the index the bundle already carries).
    """
    command.add_argument(
        "--case-sensitive",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="case-sensitive search (default: off; with --snapshot, "
        "the bundle's case mode)",
    )
    command.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="meet execution strategy (default: steered; with --snapshot "
        "or a .snap source, vector when NumPy is available else indexed)",
    )


def _add_exec_options(command: argparse.ArgumentParser) -> None:
    """Execution-layer knobs: sharding and the worker pool."""
    command.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="partition the collection into N shards (answers stay "
        "byte-identical; a sharded catalog collection supplies its own "
        "layout)",
    )
    command.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="M",
        help="serve shard work from M pool processes instead of "
        "in-process (implies --shards M when --shards is not given)",
    )
    command.add_argument(
        "--replicas",
        type=int,
        default=0,
        metavar="R",
        help="spawn R supervised socket workers per shard with "
        "health-checked failover (implies sharding; exclusive with "
        "--workers and --cluster)",
    )
    command.add_argument(
        "--cluster",
        action="append",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="serve one shard from these already-running shard "
        "workers (repeat once per shard, in shard order; replicas "
        "within a group fail over)",
    )


def _add_snapshot_source_options(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--snapshot",
        metavar="NAME_OR_FILE",
        default=None,
        help="serve from a snapshot bundle (.snap file or catalog collection) "
        "instead of parsing the source",
    )
    command.add_argument(
        "--catalog",
        metavar="DIR",
        default=None,
        help=f"snapshot catalog directory (default: {DEFAULT_CATALOG} "
        "or $REPRO_CATALOG)",
    )


def _command_describe(args) -> int:
    database = _open_database(args, args.source)
    if args.stats:
        _print_load_stats(database.origin, database.load_seconds)
    statistics = collect_statistics(database.store)
    print(statistics.render())
    if args.paths:
        print("\nall paths:")
        for name in database.store.relation_names():
            print(f"  {name}")
    return 0


def _print_load_stats(origin: str, seconds: float) -> None:
    """Report which store-load path ran (parse vs snapshot) on stderr."""
    print(
        f"[stats] store: loaded via {origin} in {seconds * 1000:.1f} ms",
        file=sys.stderr,
    )


def _print_stats(label: str, elapsed_ms: float, cache: Optional[Dict]) -> None:
    """One-line serving report on stderr (the ``--stats`` flag)."""
    line = f"[stats] {label}: {elapsed_ms:.1f} ms"
    if cache is not None:
        line += (
            f"; cache hits={cache['hits']} misses={cache['misses']}"
            f" size={cache['currsize']}/{cache['maxsize']}"
            f" hit_rate={cache['hit_rate']:.0%}"
        )
    print(line, file=sys.stderr)


def _print_trace(trace: Trace) -> None:
    """Render collected spans on stderr (the ``--trace`` flag)."""
    print(f"[trace] {trace.trace_id}", file=sys.stderr)
    for span in trace.spans:
        attrs = "".join(
            f" {key}={value}"
            for key, value in span.items()
            if key not in ("name", "ms")
        )
        print(
            f"[trace]   {span['name']:<20} {span['ms']:>9.3f} ms{attrs}",
            file=sys.stderr,
        )


def _command_search(args) -> int:
    terms = list(args.terms)
    if args.snapshot:
        # --snapshot replaces the source; the first positional (parsed
        # into the optional ``source`` slot) is really a search term.
        if args.source is not None:
            if FsPath(args.source).exists():
                print(
                    f"note: with --snapshot, {args.source!r} is treated as "
                    "a search term, not a source",
                    file=sys.stderr,
                )
            terms.insert(0, args.source)
    elif args.source is None:
        print("search needs a source (or --snapshot)", file=sys.stderr)
        return 2
    if len(terms) < 2:
        print("search needs at least two terms", file=sys.stderr)
        return 2
    database = _open_database(args, args.source)
    if args.stats:
        _print_load_stats(database.origin, database.load_seconds)
    trace = Trace() if args.trace else None
    with trace_scope(trace):
        with trace_span("db.nearest"):
            envelope = database.nearest(
                NearestRequest(
                    terms=tuple(terms),
                    exclude_root=args.exclude_root,
                    require_all_terms=args.all_terms,
                    within=args.within,
                    limit=args.limit,
                    snippets=not args.xml,
                )
            )
    if trace is not None:
        envelope.stats["trace"] = trace.to_dict()
        _print_trace(trace)
    if args.stats:
        _print_stats("search", envelope.elapsed_ms, envelope.stats["cache"])
    if not envelope.answers:
        print("no nearest concepts found")
        return 1
    for rank, answer in enumerate(envelope.answers, start=1):
        print(
            f"{rank:>3}. <{answer['tag']}> oid={answer['oid']} "
            f"joins={answer['joins']} path={answer['path']}"
        )
        if args.xml:
            print(database.to_xml(answer["oid"]))
        else:
            print(f"     {answer['snippet']}")
    return 0


def _parse_params(pairs: Optional[Sequence[str]]) -> Optional[Dict[str, str]]:
    """``--param NAME=VALUE`` flags → the bindings dict (None if absent)."""
    if not pairs:
        return None
    params: Dict[str, str] = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        name = name.strip().lstrip("$")
        if not sep or not name:
            raise ReproError(f"--param needs NAME=VALUE, got {pair!r}")
        params[name] = value
    return params


def _command_query(args) -> int:
    if args.snapshot:
        if args.text is not None:
            # Both positionals plus --snapshot is ambiguous: the named
            # source would be silently ignored in favour of the bundle.
            print(
                "with --snapshot, pass only the query string (no source)",
                file=sys.stderr,
            )
            return 2
        # --snapshot replaces the source; the lone positional (parsed
        # into the optional ``source`` slot) is really the query text.
        args.source, args.text = None, args.source
    if args.text is None:
        print("query needs a query string", file=sys.stderr)
        return 2
    if args.source is None and not args.snapshot:
        print("query needs a source (or --snapshot)", file=sys.stderr)
        return 2
    database = _open_database(args, args.source)
    if args.stats:
        _print_load_stats(database.origin, database.load_seconds)
    if args.explain:
        print(database.explain(args.text))
        return 0
    trace = Trace() if getattr(args, "trace", False) else None
    params = _parse_params(getattr(args, "param", None))
    with trace_scope(trace):
        with trace_span("db.query"):
            envelope = database.query(
                QueryRequest(text=args.text, render=True, params=params)
            )
    if trace is not None:
        envelope.stats["trace"] = trace.to_dict()
        _print_trace(trace)
    if args.stats:
        _print_stats("query", envelope.elapsed_ms, envelope.stats["cache"])
    print(envelope.rendered)
    return 0 if envelope.count else 1


def _command_shred(args) -> int:
    database = _open_database(args, args.source)
    if args.stats:
        _print_load_stats(database.origin, database.load_seconds)
    store = database.store
    storage.save(store, args.image, indent=args.indent)
    print(f"wrote {args.image}: {store.node_count} nodes, "
          f"{len(store.relation_names())} relations")
    return 0


def _command_serve(args) -> int:
    level = args.log_level or ("info" if args.verbose else "warning")
    configure_logging(json_logs=args.log_json, level=level)
    options = _database_options(args)
    if args.source is None and args.snapshot is None:
        databases = Database.open_all(_catalog_dir(args), options=options)
    else:
        database = _open_database(args, args.source)
        if args.name:
            name = args.name
        elif args.snapshot and not str(args.snapshot).endswith(".snap"):
            name = str(args.snapshot)
        elif args.source:
            name = FsPath(args.source).stem
        else:
            name = FsPath(str(args.snapshot)).stem
        databases = {name: database}
    server = ReproServer(
        databases,
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        close_databases=True,
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        queue_timeout=args.queue_timeout,
        default_deadline=(
            None
            if args.default_deadline_ms is None
            else args.default_deadline_ms / 1000.0
        ),
        slow_query_ms=args.slow_query_ms,
    )
    server.warm_up()
    from . import kernels

    log_event(
        logging.getLogger("repro.serve"),
        logging.INFO,
        "kernels ready",
        tier=kernels.tier(),
        numpy=kernels.available(),
    )
    for name in server.names():
        database = server.databases[name]
        if database.sharded is not None:
            executor = database.sharded.executor
            mode = (
                f", {database.sharded.shard_count} shards via "
                f"{executor.name} executor"
            )
            if executor.name == "parallel":
                mode += f" ({executor.workers} workers)"
            elif executor.name == "cluster":
                replica_counts = [
                    len(group) for group in executor.replicas
                ]
                mode += f" ({'x'.join(map(str, replica_counts))} replicas)"
        else:
            mode = ""
        print(
            f"  {name}: {database.node_count} nodes via {database.origin} "
            f"({database.backend_name} backend{mode})"
        )
    print(
        f"serving {len(databases)} collection(s) on {server.url()} "
        "— Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.shutdown()
    return 0


def _command_shard_worker(args) -> int:
    """Serve shard bundles over the framed socket protocol.

    Prints the ready line (``shard-worker listening on HOST:PORT``)
    once the listener is bound — spawners block on it — then serves
    until interrupted.
    """
    from .exec.remote import READY_PREFIX, ShardWorkerServer, format_address
    from .exec.remote import services_from_bundles

    if args.shard_id is not None and len(args.shard_id) != len(args.bundle):
        raise ReproError(
            f"{len(args.shard_id)} --shard-id value(s) for "
            f"{len(args.bundle)} --bundle value(s); give one per bundle"
        )
    services = services_from_bundles(
        args.bundle,
        shard_ids=args.shard_id,
        case_sensitive=args.case_sensitive,
        backend=args.backend,
    )
    server = ShardWorkerServer(services, host=args.host, port=args.port)
    print(
        f"{READY_PREFIX} {format_address(server.address)}",
        flush=True,
    )
    print(
        f"hosting shard(s) {sorted(services)} from {len(args.bundle)} "
        "bundle(s) — Ctrl-C to stop",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.shutdown()
    return 0


def _open_writable(args) -> Database:
    """Open a collection for live writes (monolithic, in-process)."""
    return Database.open(
        options=DatabaseOptions(catalog=getattr(args, "catalog", None)),
        snapshot=args.collection,
    )


def _print_receipt(collection: str, receipt: Dict) -> None:
    span = receipt.get("span")
    spanned = f" span={span[0]}..{span[1]}" if span else ""
    print(
        f"{receipt['op']} {receipt.get('name', collection)}:{spanned} "
        f"generation={receipt['generation']} "
        f"documents={receipt['documents']} "
        f"live_nodes={receipt.get('live_nodes', '-')}"
    )


def _command_put(args) -> int:
    if args.xml == "-":
        xml = sys.stdin.read()
    else:
        xml = FsPath(args.xml).read_text(encoding="utf-8")
    database = _open_writable(args)
    try:
        if args.replace:
            receipt = database.replace(args.name, xml)
        else:
            receipt = database.put(args.name, xml)
    finally:
        database.close()
    _print_receipt(args.collection, receipt)
    return 0


def _command_delete(args) -> int:
    database = _open_writable(args)
    try:
        receipt = database.delete(args.name)
    finally:
        database.close()
    _print_receipt(args.collection, receipt)
    return 0


def _command_compact(args) -> int:
    catalog = _open_catalog(args, create=False)
    started = time.perf_counter()
    meta = catalog.compact(args.collection, shards=args.shards)
    seconds = time.perf_counter() - started
    shards = meta.get("shards")
    layout = (
        f", {shards.get('count')} shard bundles"
        if isinstance(shards, dict)
        else ""
    )
    print(
        f"compacted {catalog.root}/{args.collection}: "
        f"{meta['node_count']} nodes, generation {meta['generation']}"
        f"{layout} ({seconds * 1000:.0f} ms)"
    )
    return 0


def _command_snapshot(args) -> int:
    handler = _SNAPSHOT_COMMANDS[args.snapshot_command]
    return handler(args)


def _snapshot_build(args) -> int:
    name = args.name or FsPath(args.source).stem
    catalog = _open_catalog(args, create=True)
    started = time.perf_counter()
    meta = catalog.ingest(
        name,
        args.source,
        case_sensitive=args.case_sensitive,
        shards=getattr(args, "shards", None),
        value_indexes=getattr(args, "index", None),
    )
    seconds = time.perf_counter() - started
    shards = meta.get("shards")
    if isinstance(shards, dict):
        built = (
            f"{catalog.root}/{name} "
            f"({shards['count']} shard bundles)"
        )
    else:
        built = f"{catalog.root}/{meta['file']}"
    declared = getattr(args, "index", None) or ()
    indexed = f", {len(set(declared))} value index(es)" if declared else ""
    print(
        f"built {built}: {meta['node_count']} nodes, "
        f"{meta['bytes']} bytes, generation {meta['generation']}"
        f"{indexed} ({seconds * 1000:.0f} ms)"
    )
    return 0


def _snapshot_load(args) -> int:
    started = time.perf_counter()
    resolved = resolve_source(
        snapshot=args.name,
        catalog=getattr(args, "catalog", None),
        use_mmap=args.mmap,
    )
    if resolved.sharded is not None:
        # The warm-start check of a sharded collection: load every
        # shard bundle and report the aggregate.
        from .snapshot import read_snapshot

        snapshots = [
            read_snapshot(path, use_mmap=args.mmap)
            for path in resolved.sharded.paths
        ]
        seconds = time.perf_counter() - started
        nodes = sum(s.store.node_count for s in snapshots) - (
            len(snapshots) - 1
        )  # stand-in roots counted once
        terms = sum(s.fulltext_index.vocabulary_size for s in snapshots)
        print(
            f"loaded {args.name}: {len(snapshots)} shards, {nodes} nodes, "
            f"{len(snapshots[0].store.summary) - 1} paths, "
            f"{terms} terms across shards "
            f"({seconds * 1000:.1f} ms, zero index rebuilds)"
        )
        return 0
    seconds = time.perf_counter() - started
    store, snapshot = resolved.store, resolved.snapshot
    print(
        f"loaded {args.name}: {store.node_count} nodes, "
        f"{len(store.summary) - 1} paths, "
        f"{snapshot.fulltext_index.vocabulary_size} terms, "
        f"tour {snapshot.lca_index.tour_length} "
        f"({seconds * 1000:.1f} ms, zero index rebuilds)"
    )
    return 0


_SECTION_GROUPS = {
    "lca": "lca",
    "ft": "fulltext",
    "vx": "value-index",
    "delta": "deltas",
}


def _section_breakdown(paths: Sequence[FsPath]) -> Dict[str, int]:
    """Payload bytes per section group, summed across shard bundles.

    Groups follow the section-name prefixes (``lca/``, ``ft/``,
    ``vx/``, ``delta/``); everything unprefixed — the dense columns,
    string tables, path summary and meta — counts as ``core``.
    """
    from .snapshot.format import SnapshotReader

    totals: Dict[str, int] = {}
    for path in paths:
        reader = SnapshotReader.open(path, tolerate_torn_tail=True)
        for section, length in reader.section_sizes().items():
            group = _SECTION_GROUPS.get(section.split("/", 1)[0], "core")
            totals[group] = totals.get(group, 0) + length
    order = ["core", "lca", "fulltext", "value-index", "deltas"]
    return {group: totals[group] for group in order if group in totals}


def _snapshot_ls(args) -> int:
    catalog = _open_catalog(args, create=False)
    collections = catalog.collections()
    if not collections:
        print(f"catalog {catalog.root}: no collections")
        return 0
    print(f"catalog {catalog.root}:")
    for name, meta in collections.items():
        shards = meta.get("shards")
        layout = (
            f", {shards.get('count')} shards"
            if isinstance(shards, dict)
            else ""
        )
        declared = meta.get("value_indexes")
        indexes = (
            f", indexes=[{', '.join(map(str, declared))}]"
            if isinstance(declared, list) and declared
            else ""
        )
        print(
            f"  {name}: {meta.get('node_count')} nodes, "
            f"{meta.get('bytes')} bytes, generation {meta.get('generation')}"
            f"{layout}{indexes}, source={meta.get('source') or '-'}"
        )
        if getattr(args, "sections", False):
            if isinstance(shards, dict):
                paths = catalog.shard_files(name)
            else:
                paths = [catalog.bundle_path(name)]
            breakdown = _section_breakdown(
                [path for path in paths if path.exists()]
            )
            detail = "  ".join(
                f"{group}={size}" for group, size in breakdown.items()
            )
            print(f"    sections: {detail or '-'}")
    return 0


def _snapshot_drop(args) -> int:
    catalog = _open_catalog(args, create=False)
    catalog.drop(args.name)
    print(f"dropped {args.name} from {catalog.root}")
    return 0


_SNAPSHOT_COMMANDS = {
    "build": _snapshot_build,
    "load": _snapshot_load,
    "ls": _snapshot_ls,
    "drop": _snapshot_drop,
}

_COMMANDS = {
    "describe": _command_describe,
    "search": _command_search,
    "query": _command_query,
    "shred": _command_shred,
    "snapshot": _command_snapshot,
    "serve": _command_serve,
    "shard-worker": _command_shard_worker,
    "put": _command_put,
    "delete": _command_delete,
    "compact": _command_compact,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
