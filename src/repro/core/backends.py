"""Pluggable meet backends — the engine's structural-query seam.

Every operator of the paper reduces to "find the lowest common
ancestor(s) of some hit nodes, plus distances".  This module makes
*how* that happens a pluggable choice:

* :class:`SteeredBackend` — the paper, verbatim: per-query
  ``parent()`` walks steered by the ⪯ prefix order on π (Fig. 3), the
  set-wise relational loop (Fig. 4) and the schema-driven bottom-up
  roll-up (Fig. 5).  Zero preprocessing; the join count *is* the
  distance, so traces stay meaningful.  This is the default and the
  reference semantics.

* :class:`IndexedBackend` — a per-store Euler-tour + sparse-table
  index (:mod:`repro.core.lca_index`) built once and cached, giving
  O(1) pairwise meets and distances.  Set-wise and n-ary meets run the
  *same bottom-up roll-up contract* as Figs. 4/5, but over the
  **auxiliary (virtual) tree** spanned by the hit nodes and the LCAs
  of Euler-order neighbours — O(m log m) in the number of hits m,
  independent of tree depth and of the path-summary size.  Answer
  sets are provably identical to the steered operators (the auxiliary
  tree is exactly the subgraph where input chains can converge); only
  the emission *order* differs, and every consumer re-ranks.

Choosing: for one ad-hoc query the steered walk wins — no index
build, and you get the paper's join-count trace for free.  For query
*volumes* (servers, benchmarks, ranking thousands of hit pairs) the
indexed backend amortizes one O(n log n) build into O(1) queries; see
``benchmarks/bench_backends.py`` for the crossover.

The seam is threaded everywhere structural queries happen: the module
functions (``meet2``, ``meet_sets``, ``meet_general``, ``graph_meet``,
``bounded_meet2``, ``distance``) accept ``backend=``, the
:class:`~repro.core.engine.NearestConceptEngine` takes
``backend="steered"|"indexed"`` and exposes the batched
``meet_many`` / ``nearest_concepts_batch`` APIs, and the CLI exposes
``--backend``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    Union,
    runtime_checkable,
)

from ..monet.engine import MonetXML
from .lca_index import LcaIndex, get_lca_index
from .meet_general import (
    GeneralMeet,
    TaggedMeet,
    Token,
    _as_oid_tokens,
    meet_general,
    meet_tagged,
)
from .meet_pair import PairMeet, meet2_traced
from .meet_sets import SetMeet, _common_pid, meet_sets

__all__ = [
    "MeetBackend",
    "SteeredBackend",
    "IndexedBackend",
    "VectorBackend",
    "BACKEND_NAMES",
    "BackendSpec",
    "resolve_backend",
    "snapshot_default_backend",
]

#: CLI / engine spellings of the built-in backends.
BACKEND_NAMES: Tuple[str, ...] = ("steered", "indexed", "vector")

BackendSpec = Union[str, "MeetBackend", None]


def _decode_bits(mask: int, items: Sequence) -> Iterator:
    """The items whose interned bit is set, in bit (= intern) order."""
    while mask:
        low = mask & -mask
        yield items[low.bit_length() - 1]
        mask ^= low


@runtime_checkable
class MeetBackend(Protocol):
    """What a meet implementation must provide to plug into the engine.

    Implementations must agree on answer *sets* (meet OIDs, origin
    coverage, distances); they may differ in emission order and in
    which execution traces they can produce.
    """

    name: str
    store: MonetXML

    def meet(self, oid1: int, oid2: int) -> PairMeet:
        """Pairwise meet with distance (Fig. 3 / Def. 6)."""
        ...

    def meet_within(self, oid1: int, oid2: int, k: int) -> Optional[PairMeet]:
        """The §4 k-meet: ``None`` when d(o₁,o₂) > k."""
        ...

    def meet_many(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> List[PairMeet]:
        """Batched pairwise meets — the ranking hot path."""
        ...

    def distance(self, oid1: int, oid2: int) -> int:
        """Tree distance d(o₁,o₂) in edges."""
        ...

    def meet_sets(
        self, left: Iterable[int], right: Iterable[int]
    ) -> List[SetMeet]:
        """Set-wise minimal meets of two homogeneous sets (Fig. 4)."""
        ...

    def meet_general(
        self, relations: Mapping[Hashable, Iterable[int]]
    ) -> List[GeneralMeet]:
        """General n-ary meet over typed relations (Fig. 5)."""
        ...

    def meet_tagged(
        self, tagged: Iterable[Tuple[Token, int]]
    ) -> List[TaggedMeet]:
        """Roll-up over (token, OID) pairs; meets cover ≥ 2 tokens."""
        ...


class SteeredBackend:
    """The paper's path-steered walks — no preprocessing, traceable.

    Join counts reported by :class:`~repro.core.meet_pair.PairMeet`
    come from the actual Fig. 3 walk, so the paper's "number of joins
    = distance = ranking signal" reading holds literally.
    """

    name = "steered"

    def __init__(self, store: MonetXML):
        self.store = store

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SteeredBackend {self.store!r}>"

    def meet(self, oid1: int, oid2: int) -> PairMeet:
        return meet2_traced(self.store, oid1, oid2)

    def meet_within(self, oid1: int, oid2: int, k: int) -> Optional[PairMeet]:
        from .restrictions import bounded_meet2

        return bounded_meet2(self.store, oid1, oid2, k)

    def meet_many(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> List[PairMeet]:
        store = self.store
        return [meet2_traced(store, oid1, oid2) for oid1, oid2 in pairs]

    def distance(self, oid1: int, oid2: int) -> int:
        return meet2_traced(self.store, oid1, oid2).joins

    def meet_sets(
        self, left: Iterable[int], right: Iterable[int]
    ) -> List[SetMeet]:
        return meet_sets(self.store, left, right)

    def meet_general(
        self, relations: Mapping[Hashable, Iterable[int]]
    ) -> List[GeneralMeet]:
        return meet_general(self.store, relations)

    def meet_tagged(
        self, tagged: Iterable[Tuple[Token, int]]
    ) -> List[TaggedMeet]:
        return meet_tagged(self.store, tagged)


class IndexedBackend:
    """Euler-RMQ-indexed meets: O(1) pairs, auxiliary-tree roll-ups.

    The underlying :class:`~repro.core.lca_index.LcaIndex` is fetched
    through the generation-keyed cache on every operation, so a store
    that was invalidated (:meth:`MonetXML.invalidate_caches`) or
    rebuilt transparently gets a fresh index.
    """

    name = "indexed"

    def __init__(self, store: MonetXML):
        self.store = store

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<IndexedBackend {self.store!r}>"

    @property
    def index(self) -> LcaIndex:
        return get_lca_index(self.store)

    # -- pairwise --------------------------------------------------------
    # Equal OIDs short-circuit before any index look-up, mirroring the
    # steered walks (which answer o == o without touching the store).
    def meet(self, oid1: int, oid2: int) -> PairMeet:
        if oid1 == oid2:
            return PairMeet(oid1, 0)
        meet, distance = self.index.lca_with_distance(oid1, oid2)
        return PairMeet(meet, distance)

    def meet_within(self, oid1: int, oid2: int, k: int) -> Optional[PairMeet]:
        if k < 0:
            return None
        if oid1 == oid2:
            return PairMeet(oid1, 0)
        meet, distance = self.index.lca_with_distance(oid1, oid2)
        if distance > k:
            return None
        return PairMeet(meet, distance)

    def meet_many(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> List[PairMeet]:
        lca_with_distance = self.index.lca_with_distance
        return [
            PairMeet(oid1, 0)
            if oid1 == oid2
            else PairMeet(*lca_with_distance(oid1, oid2))
            for oid1, oid2 in pairs
        ]

    def distance(self, oid1: int, oid2: int) -> int:
        return self.index.distance(oid1, oid2)

    # -- auxiliary-tree roll-up ------------------------------------------
    def meet_tagged(
        self, tagged: Iterable[Tuple[Token, int]]
    ) -> List[TaggedMeet]:
        """Fig. 5's propagation over flat arrays with interned token-sets.

        Every distinct (token, OID) input pair is interned to an integer
        index; the roll-up then runs over the auxiliary tree in array
        form (:meth:`~repro.core.lca_index.LcaIndex.auxiliary_tree_arrays`)
        propagating plain ints instead of per-OID ``set`` objects.

        The key structural fact: a node accumulating ≥ 2 pairs is
        emitted as a meet and *stops propagating* (minimality, Fig. 5),
        so everything that travels upward is a **singleton** — one
        integer slot per auxiliary node suffices, and each propagation
        step is O(1).  (A width-``m`` bitmask would make each step
        O(m/64): a Python int's cost follows its highest set bit, not
        its popcount.)  Multi-pair token sets exist only at emission
        nodes, exactly where the output must materialize them anyway.
        """
        pair_index: Dict[Tuple[Token, int], int] = {}
        pairs: List[Tuple[Token, int]] = []
        by_oid: Dict[int, Union[int, List[int]]] = {}
        for token, oid in tagged:
            pair = (token, oid)
            index = pair_index.get(pair)
            if index is None:
                pair_index[pair] = index = len(pairs)
                pairs.append(pair)
                current = by_oid.get(oid)
                if current is None:
                    by_oid[oid] = index
                elif isinstance(current, list):
                    current.append(index)
                else:
                    by_oid[oid] = [current, index]
        if not by_oid:
            return []
        order, parent_index = self.index.auxiliary_tree_arrays(by_oid)
        single: List[int] = [-1] * len(order)  # the lone pending pair
        multi: Dict[int, List[int]] = {}       # ≥ 2 pending pairs (meets)
        for position, oid in enumerate(order):
            entry = by_oid.get(oid)
            if entry is None:
                continue
            if isinstance(entry, list):
                multi[position] = entry
            else:
                single[position] = entry
        # Reverse pre-order visits every auxiliary node after all of
        # its auxiliary descendants — the roll-up order of Fig. 5.
        meets: List[TaggedMeet] = []
        for position in range(len(order) - 1, -1, -1):
            accumulated = multi.get(position)
            if accumulated is not None:
                # Emitted meets do not propagate (minimality, Fig. 5).
                meets.append(
                    TaggedMeet(
                        oid=order[position],
                        tokens=frozenset(pairs[i] for i in accumulated),
                    )
                )
                continue
            index = single[position]
            if index < 0:
                continue
            above = parent_index[position]
            if above < 0:
                continue
            pending = single[above]
            if pending < 0:
                grown = multi.get(above)
                if grown is not None:
                    grown.append(index)
                else:
                    single[above] = index
            else:
                multi[above] = [pending, index]
                single[above] = -1
        return meets

    # The per-OID-set roll-up this class shipped with originally; kept
    # as the differential-test oracle and the serving benchmark's
    # emulated pre-optimization baseline.
    def _meet_tagged_sets(
        self, tagged: Iterable[Tuple[Token, int]]
    ) -> List[TaggedMeet]:
        by_oid: Dict[int, Set[Tuple[Token, int]]] = {}
        for token, oid in tagged:
            by_oid.setdefault(oid, set()).add((token, oid))
        if not by_oid:
            return []
        order, parent = self.index.auxiliary_tree(by_oid)
        accumulated: Dict[int, Set[Tuple[Token, int]]] = {
            oid: set(tokens) for oid, tokens in by_oid.items()
        }
        meets: List[TaggedMeet] = []
        for oid in reversed(order):
            tokens = accumulated.get(oid)
            if not tokens:
                continue
            if len(tokens) >= 2:
                meets.append(TaggedMeet(oid=oid, tokens=frozenset(tokens)))
                continue
            above = parent[oid]
            if above is not None:
                accumulated.setdefault(above, set()).update(tokens)
        return meets

    def meet_general(
        self, relations: Mapping[Hashable, Iterable[int]]
    ) -> List[GeneralMeet]:
        return [
            GeneralMeet(oid=meet.oid, origins=meet.origins)
            for meet in self.meet_tagged(_as_oid_tokens(relations))
        ]

    def meet_sets(
        self, left: Iterable[int], right: Iterable[int]
    ) -> List[SetMeet]:
        """Fig. 4 over the auxiliary tree, with one bit per input OID.

        Two parallel mask arrays (left-origin bits, right-origin bits)
        replace the per-node pair-of-sets; a node is a meet exactly
        when both masks are non-zero, and the origin tuples are decoded
        only for emitted meets.
        """
        left_set, right_set = set(left), set(right)
        # Same homogeneity contract (and error message) as Fig. 4.
        _common_pid(self.store, left_set, "left")
        _common_pid(self.store, right_set, "right")
        if not left_set or not right_set:
            return []
        inputs = sorted(left_set | right_set)
        oid_bit = {oid: 1 << position for position, oid in enumerate(inputs)}
        order, parent_index = self.index.auxiliary_tree_arrays(inputs)
        left_masks = [0] * len(order)
        right_masks = [0] * len(order)
        position_of = {oid: position for position, oid in enumerate(order)}
        for oid in left_set:
            left_masks[position_of[oid]] = oid_bit[oid]
        for oid in right_set:
            right_masks[position_of[oid]] = oid_bit[oid]
        meets: List[SetMeet] = []
        for position in range(len(order) - 1, -1, -1):
            lefts = left_masks[position]
            rights = right_masks[position]
            if lefts and rights:
                meets.append(
                    SetMeet(
                        oid=order[position],
                        left_origins=tuple(_decode_bits(lefts, inputs)),
                        right_origins=tuple(_decode_bits(rights, inputs)),
                    )
                )
                continue
            above = parent_index[position]
            if above >= 0 and (lefts or rights):
                left_masks[above] |= lefts
                right_masks[above] |= rights
        return meets


class _TermPairs:
    """Pair table of the column fast path: index → ``(term, OID)``.

    Stands in for the python pair list :meth:`VectorBackend.meet_tagged`
    interns: pair ``i`` lives in the column whose offset range covers
    ``i``.  Built O(#terms); each lookup is one bisect plus one array
    read, so only the pairs a consumer actually touches (the winners'
    token sets) ever become python objects.
    """

    __slots__ = ("_terms", "_columns", "_offsets")

    def __init__(self, terms, columns):
        self._terms = terms
        self._columns = columns
        offsets = [0]
        for column in columns:
            offsets.append(offsets[-1] + len(column))
        self._offsets = offsets

    def __getitem__(self, index):
        slot = bisect_right(self._offsets, index) - 1
        return (
            self._terms[slot],
            int(self._columns[slot][index - self._offsets[slot]]),
        )


class TaggedBatch:
    """A lazy ``Sequence[TaggedMeet]`` with precomputed ranking keys.

    The vector roll-up's result, kept in flat-array form: indexing
    materializes one real :class:`TaggedMeet` (so any element compares
    equal to the python backends' output), while :attr:`rank_keys`
    carries the engine's §4 sort key per meet, computed array-wise by
    :meth:`VectorBackend._rank_key_rows`.  A top-k consumer therefore
    ranks on the keys and only ever touches the winners — the losers'
    token frozensets are never built.
    """

    __slots__ = (
        "_pairs", "_order", "_emitted", "_group_pairs", "_starts",
        "_ends", "rank_keys",
    )

    def __init__(self, pairs, order, emitted, group_pairs, starts, ends,
                 rank_keys):
        self._pairs = pairs
        self._order = order
        self._emitted = emitted
        self._group_pairs = group_pairs
        self._starts = starts
        self._ends = ends
        #: ``(joins, spread, -depth, oid)`` per meet — exactly
        #: :meth:`NearestConceptEngine._rank_keys`, index-aligned.
        self.rank_keys: List[Tuple[int, int, int, int]] = rank_keys

    @classmethod
    def empty(cls) -> "TaggedBatch":
        return cls([], [], [], [], [], [], [])

    def __len__(self) -> int:
        return len(self._emitted)

    def __bool__(self) -> bool:
        return len(self._emitted) > 0

    def __iter__(self) -> Iterator[TaggedMeet]:
        for position in range(len(self._emitted)):
            yield self[position]

    def __getitem__(self, position):
        if isinstance(position, slice):
            return [
                self[index]
                for index in range(*position.indices(len(self._emitted)))
            ]
        if position < 0:
            position += len(self._emitted)
        if not 0 <= position < len(self._emitted):
            raise IndexError(position)
        pairs = self._pairs
        return TaggedMeet(
            oid=int(self._order[self._emitted[position]]),
            tokens=frozenset(
                pairs[index]
                for index in self._group_pairs[
                    self._starts[position]:self._ends[position]
                ].tolist()
            ),
        )


class VectorBackend(IndexedBackend):
    """NumPy batch kernels over the same Euler-RMQ columns.

    Identical answer sets, ranking keys and emission order as
    :class:`IndexedBackend` — the differential suite holds them
    byte-identical — but every batched operation (``meet_many``, the
    Fig. 4/5 roll-ups) runs as whole-array passes over zero-copy
    ``int64`` views of the index columns (:mod:`repro.kernels`)
    instead of python-level per-element loops.  Only instantiate via
    :func:`resolve_backend`, which silently degrades a ``"vector"``
    request to :class:`IndexedBackend` when NumPy is missing; scalar
    operations (``meet``, ``distance``) inherit the O(1) python
    kernels, which beat a one-element array round-trip.
    """

    name = "vector"

    @property
    def kernels(self):
        """The memoized batch kernels of the current-generation index."""
        from ..kernels.lca import get_kernels

        return get_kernels(self.index)

    def meet_many(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> List[PairMeet]:
        import numpy as np

        materialized = list(pairs)
        if not materialized:
            return []
        table = np.asarray(materialized, dtype=np.int64).reshape(-1, 2)
        left, right = table[:, 0], table[:, 1]
        meets = left.copy()
        distances = np.zeros(len(meets), dtype=np.int64)
        # Equal pairs answer without index validation, like the
        # scalar short-circuit in IndexedBackend.meet_many.
        unequal = left != right
        if unequal.any():
            meets[unequal], distances[unequal] = self.kernels.lca_many(
                left[unequal], right[unequal]
            )
        return [
            PairMeet(meet, distance)
            for meet, distance in zip(meets.tolist(), distances.tolist())
        ]

    def meet_tagged(
        self, tagged: Iterable[Tuple[Token, int]]
    ) -> List[TaggedMeet]:
        """Fig. 5 as level-wise array passes over the auxiliary tree.

        The (token, OID) pairs are interned exactly like the python
        roll-up; from there propagation is
        :func:`repro.kernels.rollup.rollup_tagged`.
        """
        pairs: List[Tuple[Token, int]] = list(dict.fromkeys(
            (token, oid) for token, oid in tagged
        ))
        if not pairs:
            return []
        import numpy as np

        pair_oids = np.fromiter(
            (oid for _, oid in pairs), dtype=np.int64, count=len(pairs)
        )
        return list(self._materialize_tagged(pairs, pair_oids))

    def meet_term_hits(self, term_hits) -> "TaggedBatch":
        """The engine's batched fast path: (term, Hits) straight in.

        Each term contributes its cached distinct-OID column
        (:meth:`repro.fulltext.index.Hits.oid_column`).  The result is
        a :class:`TaggedBatch`: a lazy ``Sequence[TaggedMeet]`` whose
        ranking keys are already computed array-wise — consumers that
        only rank and keep the top-k never pay for materializing the
        losers' token frozensets.
        """
        import numpy as np

        terms: List[Token] = []
        columns: List[np.ndarray] = []
        for term, hits in term_hits:
            column = np.asarray(hits.oid_column(), dtype=np.int64)
            if len(column):
                terms.append(term)
                columns.append(column)
        if not columns:
            return TaggedBatch.empty()
        pair_oids = columns[0] if len(columns) == 1 else np.concatenate(columns)
        return self._materialize_tagged(_TermPairs(terms, columns), pair_oids)

    def _materialize_tagged(self, pairs, pair_oids) -> "TaggedBatch":
        import numpy as np

        from ..kernels.rollup import rollup_tagged

        order, emitted, group_pairs, boundaries = rollup_tagged(
            self.kernels, pair_oids
        )
        if not len(emitted):
            return TaggedBatch.empty()
        keys = self._rank_key_rows(order, emitted, pair_oids, group_pairs,
                                   boundaries)
        return TaggedBatch(
            pairs,
            order,
            emitted.tolist(),
            group_pairs,
            np.concatenate(([0], boundaries)).tolist(),
            np.concatenate((boundaries, [len(group_pairs)])).tolist(),
            keys,
        )

    def _rank_key_rows(self, order, emitted, pair_oids, group_pairs,
                       boundaries) -> List[Tuple[int, int, int, int]]:
        """The engine's §4 sort keys for every emitted meet, array-wise.

        Byte-identical to :meth:`NearestConceptEngine._rank_keys` —
        ``(joins, spread, -depth, oid)`` with summary depths and
        live-node spreads — but computed with five whole-array passes
        while the roll-up's flat arrays are still in hand, instead of
        one python loop per meet over its origin frozenset.
        """
        import numpy as np

        from ..kernels.lca import sorted_unique

        store = self.store
        first = store.first_oid
        pid_column, depth_by_pid = self._rank_columns()

        # Distinct origin OIDs per emitted meet: one combined
        # (group, OID) key, uniqued — groups stay contiguous and the
        # origins inside a group come out sorted ascending.
        group_count = len(emitted)
        lengths = np.diff(
            np.concatenate(([0], boundaries, [len(group_pairs)]))
        )
        group_of = np.repeat(
            np.arange(group_count, dtype=np.int64), lengths
        )
        span = np.int64(store.node_count)
        origin_keys = sorted_unique(
            group_of * span + (pair_oids[group_pairs] - first)
        )
        origin_groups = origin_keys // span
        origin_oids = origin_keys % span  # still OID - first_oid
        starts = np.concatenate(
            ([0], np.nonzero(np.diff(origin_groups))[0] + 1)
        )
        counts = np.diff(np.concatenate((starts, [len(origin_keys)])))

        meet_oids = order[emitted]
        meet_depths = depth_by_pid[pid_column[meet_oids - first]]
        origin_depths = depth_by_pid[pid_column[origin_oids]]
        joins = np.add.reduceat(origin_depths, starts) - meet_depths * counts

        # Spread = live distance between the outermost origins (§4);
        # origins are sorted within a group, so they sit at the group
        # edges.  With tombstones, dead nodes below each endpoint are
        # subtracted via the store's prefix table (live_position).
        lows = origin_oids[starts] + first
        highs = origin_oids[starts + counts - 1] + first
        tomb_starts, dead_prefix = store.tombstone_table()
        if tomb_starts:
            tomb = np.asarray(tomb_starts, dtype=np.int64)
            dead = np.asarray(dead_prefix, dtype=np.int64)
            spreads = (
                highs - dead[np.searchsorted(tomb, highs, side="right")]
            ) - (lows - dead[np.searchsorted(tomb, lows, side="right")])
        else:
            spreads = highs - lows

        rows = np.empty((group_count, 4), dtype=np.int64)
        rows[:, 0] = joins
        rows[:, 1] = spreads
        rows[:, 2] = -meet_depths
        rows[:, 3] = meet_oids
        return list(map(tuple, rows.tolist()))

    def _rank_columns(self):
        """(pid column, depth-by-pid) as int64 arrays, generation-keyed.

        The store's dense pid column is a plain python list; copying it
        into an array once per generation keeps the per-query key pass
        free of per-element conversions.  Tombstones are *not* cached
        here — deletes may add them without touching these columns —
        so :meth:`_rank_key_rows` reads the prefix table fresh.
        """
        import numpy as np

        store = self.store
        cached = getattr(self, "_rank_columns_cache", None)
        if cached is not None and cached[0] == store.generation:
            return cached[1], cached[2]
        pid_column = np.asarray(store.dense_columns()[0], dtype=np.int64)
        summary = store.summary
        depth_by_pid = np.fromiter(
            (summary.depth(pid) for pid in range(len(summary))),
            dtype=np.int64,
            count=len(summary),
        )
        self._rank_columns_cache = (store.generation, pid_column, depth_by_pid)
        return pid_column, depth_by_pid

    def meet_sets(
        self, left: Iterable[int], right: Iterable[int]
    ) -> List[SetMeet]:
        import numpy as np

        from ..kernels.rollup import rollup_sets

        left_set, right_set = set(left), set(right)
        # Same homogeneity contract (and error message) as Fig. 4.
        _common_pid(self.store, left_set, "left")
        _common_pid(self.store, right_set, "right")
        if not left_set or not right_set:
            return []
        inputs = np.fromiter(
            sorted(left_set | right_set),
            dtype=np.int64,
            count=len(left_set | right_set),
        )
        in_left = np.isin(
            inputs,
            np.fromiter(left_set, dtype=np.int64, count=len(left_set)),
        )
        in_right = np.isin(
            inputs,
            np.fromiter(right_set, dtype=np.int64, count=len(right_set)),
        )
        order, emitted, origin_indexes, boundaries = rollup_sets(
            self.kernels, inputs, in_left, in_right
        )
        order_list = order.tolist()
        input_list = inputs.tolist()
        origins = origin_indexes.tolist()
        left_flags = in_left[origin_indexes].tolist()
        right_flags = in_right[origin_indexes].tolist()
        bounds = boundaries.tolist()
        meets: List[SetMeet] = []
        for position, start, end in zip(
            emitted.tolist(), [0, *bounds], [*bounds, len(origins)]
        ):
            meets.append(
                SetMeet(
                    oid=order_list[position],
                    left_origins=tuple(
                        input_list[i]
                        for i, flag in zip(
                            origins[start:end], left_flags[start:end]
                        )
                        if flag
                    ),
                    right_origins=tuple(
                        input_list[i]
                        for i, flag in zip(
                            origins[start:end], right_flags[start:end]
                        )
                        if flag
                    ),
                )
            )
        return meets


def snapshot_default_backend() -> str:
    """The backend snapshot serving defaults to.

    ``vector`` when the NumPy kernels are importable, else ``indexed``
    — both answer from the bundle's seeded LCA index without a
    rebuild, and the vector tier is answer-identical, so preferring it
    whenever it can run is free.
    """
    from .. import kernels

    return "vector" if kernels.available() else "indexed"


def resolve_backend(store: MonetXML, spec: BackendSpec = None) -> "MeetBackend":
    """Normalize a backend spec: name, instance, or ``None`` (steered).

    ``"vector"`` degrades silently to :class:`IndexedBackend` when
    NumPy is not importable — the kernels are an optional extra, and
    both backends are answer-identical.  An instance is returned
    as-is when it is bound to ``store``; binding it to a different
    store is almost certainly a bug and raises.
    """
    if spec is None:
        return SteeredBackend(store)
    if isinstance(spec, str):
        if spec == "steered":
            return SteeredBackend(store)
        if spec == "indexed":
            return IndexedBackend(store)
        if spec == "vector":
            from .. import kernels

            if kernels.available():
                return VectorBackend(store)
            return IndexedBackend(store)
        raise ValueError(
            f"unknown meet backend {spec!r}; expected one of {BACKEND_NAMES}"
        )
    if getattr(spec, "store", None) is not store:
        raise ValueError(
            "backend instance is bound to a different store (or has no "
            "store attribute; MeetBackend implementations must carry one)"
        )
    return spec
