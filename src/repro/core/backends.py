"""Pluggable meet backends — the engine's structural-query seam.

Every operator of the paper reduces to "find the lowest common
ancestor(s) of some hit nodes, plus distances".  This module makes
*how* that happens a pluggable choice:

* :class:`SteeredBackend` — the paper, verbatim: per-query
  ``parent()`` walks steered by the ⪯ prefix order on π (Fig. 3), the
  set-wise relational loop (Fig. 4) and the schema-driven bottom-up
  roll-up (Fig. 5).  Zero preprocessing; the join count *is* the
  distance, so traces stay meaningful.  This is the default and the
  reference semantics.

* :class:`IndexedBackend` — a per-store Euler-tour + sparse-table
  index (:mod:`repro.core.lca_index`) built once and cached, giving
  O(1) pairwise meets and distances.  Set-wise and n-ary meets run the
  *same bottom-up roll-up contract* as Figs. 4/5, but over the
  **auxiliary (virtual) tree** spanned by the hit nodes and the LCAs
  of Euler-order neighbours — O(m log m) in the number of hits m,
  independent of tree depth and of the path-summary size.  Answer
  sets are provably identical to the steered operators (the auxiliary
  tree is exactly the subgraph where input chains can converge); only
  the emission *order* differs, and every consumer re-ranks.

Choosing: for one ad-hoc query the steered walk wins — no index
build, and you get the paper's join-count trace for free.  For query
*volumes* (servers, benchmarks, ranking thousands of hit pairs) the
indexed backend amortizes one O(n log n) build into O(1) queries; see
``benchmarks/bench_backends.py`` for the crossover.

The seam is threaded everywhere structural queries happen: the module
functions (``meet2``, ``meet_sets``, ``meet_general``, ``graph_meet``,
``bounded_meet2``, ``distance``) accept ``backend=``, the
:class:`~repro.core.engine.NearestConceptEngine` takes
``backend="steered"|"indexed"`` and exposes the batched
``meet_many`` / ``nearest_concepts_batch`` APIs, and the CLI exposes
``--backend``.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Protocol,
    Set,
    Tuple,
    Union,
    runtime_checkable,
)

from ..monet.engine import MonetXML
from .lca_index import LcaIndex, get_lca_index
from .meet_general import (
    GeneralMeet,
    TaggedMeet,
    Token,
    _as_oid_tokens,
    meet_general,
    meet_tagged,
)
from .meet_pair import PairMeet, meet2_traced
from .meet_sets import SetMeet, _common_pid, meet_sets

__all__ = [
    "MeetBackend",
    "SteeredBackend",
    "IndexedBackend",
    "BACKEND_NAMES",
    "BackendSpec",
    "resolve_backend",
]

#: CLI / engine spellings of the built-in backends.
BACKEND_NAMES: Tuple[str, ...] = ("steered", "indexed")

BackendSpec = Union[str, "MeetBackend", None]


@runtime_checkable
class MeetBackend(Protocol):
    """What a meet implementation must provide to plug into the engine.

    Implementations must agree on answer *sets* (meet OIDs, origin
    coverage, distances); they may differ in emission order and in
    which execution traces they can produce.
    """

    name: str
    store: MonetXML

    def meet(self, oid1: int, oid2: int) -> PairMeet:
        """Pairwise meet with distance (Fig. 3 / Def. 6)."""
        ...

    def meet_within(self, oid1: int, oid2: int, k: int) -> Optional[PairMeet]:
        """The §4 k-meet: ``None`` when d(o₁,o₂) > k."""
        ...

    def meet_many(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> List[PairMeet]:
        """Batched pairwise meets — the ranking hot path."""
        ...

    def distance(self, oid1: int, oid2: int) -> int:
        """Tree distance d(o₁,o₂) in edges."""
        ...

    def meet_sets(
        self, left: Iterable[int], right: Iterable[int]
    ) -> List[SetMeet]:
        """Set-wise minimal meets of two homogeneous sets (Fig. 4)."""
        ...

    def meet_general(
        self, relations: Mapping[Hashable, Iterable[int]]
    ) -> List[GeneralMeet]:
        """General n-ary meet over typed relations (Fig. 5)."""
        ...

    def meet_tagged(
        self, tagged: Iterable[Tuple[Token, int]]
    ) -> List[TaggedMeet]:
        """Roll-up over (token, OID) pairs; meets cover ≥ 2 tokens."""
        ...


class SteeredBackend:
    """The paper's path-steered walks — no preprocessing, traceable.

    Join counts reported by :class:`~repro.core.meet_pair.PairMeet`
    come from the actual Fig. 3 walk, so the paper's "number of joins
    = distance = ranking signal" reading holds literally.
    """

    name = "steered"

    def __init__(self, store: MonetXML):
        self.store = store

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SteeredBackend {self.store!r}>"

    def meet(self, oid1: int, oid2: int) -> PairMeet:
        return meet2_traced(self.store, oid1, oid2)

    def meet_within(self, oid1: int, oid2: int, k: int) -> Optional[PairMeet]:
        from .restrictions import bounded_meet2

        return bounded_meet2(self.store, oid1, oid2, k)

    def meet_many(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> List[PairMeet]:
        store = self.store
        return [meet2_traced(store, oid1, oid2) for oid1, oid2 in pairs]

    def distance(self, oid1: int, oid2: int) -> int:
        return meet2_traced(self.store, oid1, oid2).joins

    def meet_sets(
        self, left: Iterable[int], right: Iterable[int]
    ) -> List[SetMeet]:
        return meet_sets(self.store, left, right)

    def meet_general(
        self, relations: Mapping[Hashable, Iterable[int]]
    ) -> List[GeneralMeet]:
        return meet_general(self.store, relations)

    def meet_tagged(
        self, tagged: Iterable[Tuple[Token, int]]
    ) -> List[TaggedMeet]:
        return meet_tagged(self.store, tagged)


class IndexedBackend:
    """Euler-RMQ-indexed meets: O(1) pairs, auxiliary-tree roll-ups.

    The underlying :class:`~repro.core.lca_index.LcaIndex` is fetched
    through the generation-keyed cache on every operation, so a store
    that was invalidated (:meth:`MonetXML.invalidate_caches`) or
    rebuilt transparently gets a fresh index.
    """

    name = "indexed"

    def __init__(self, store: MonetXML):
        self.store = store

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<IndexedBackend {self.store!r}>"

    @property
    def index(self) -> LcaIndex:
        return get_lca_index(self.store)

    # -- pairwise --------------------------------------------------------
    # Equal OIDs short-circuit before any index look-up, mirroring the
    # steered walks (which answer o == o without touching the store).
    def meet(self, oid1: int, oid2: int) -> PairMeet:
        if oid1 == oid2:
            return PairMeet(oid1, 0)
        meet, distance = self.index.lca_with_distance(oid1, oid2)
        return PairMeet(meet, distance)

    def meet_within(self, oid1: int, oid2: int, k: int) -> Optional[PairMeet]:
        if k < 0:
            return None
        if oid1 == oid2:
            return PairMeet(oid1, 0)
        meet, distance = self.index.lca_with_distance(oid1, oid2)
        if distance > k:
            return None
        return PairMeet(meet, distance)

    def meet_many(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> List[PairMeet]:
        lca_with_distance = self.index.lca_with_distance
        return [
            PairMeet(oid1, 0)
            if oid1 == oid2
            else PairMeet(*lca_with_distance(oid1, oid2))
            for oid1, oid2 in pairs
        ]

    def distance(self, oid1: int, oid2: int) -> int:
        return self.index.distance(oid1, oid2)

    # -- auxiliary-tree roll-up ------------------------------------------
    def meet_tagged(
        self, tagged: Iterable[Tuple[Token, int]]
    ) -> List[TaggedMeet]:
        by_oid: Dict[int, Set[Tuple[Token, int]]] = {}
        for token, oid in tagged:
            by_oid.setdefault(oid, set()).add((token, oid))
        if not by_oid:
            return []
        order, parent = self.index.auxiliary_tree(by_oid)
        # Reverse pre-order visits every auxiliary node after all of
        # its auxiliary descendants — the roll-up order of Fig. 5.
        accumulated: Dict[int, Set[Tuple[Token, int]]] = {
            oid: set(tokens) for oid, tokens in by_oid.items()
        }
        meets: List[TaggedMeet] = []
        for oid in reversed(order):
            tokens = accumulated.get(oid)
            if not tokens:
                continue
            if len(tokens) >= 2:
                # Emitted meets do not propagate (minimality, Fig. 5).
                meets.append(TaggedMeet(oid=oid, tokens=frozenset(tokens)))
                continue
            above = parent[oid]
            if above is not None:
                accumulated.setdefault(above, set()).update(tokens)
        return meets

    def meet_general(
        self, relations: Mapping[Hashable, Iterable[int]]
    ) -> List[GeneralMeet]:
        return [
            GeneralMeet(oid=meet.oid, origins=meet.origins)
            for meet in self.meet_tagged(_as_oid_tokens(relations))
        ]

    def meet_sets(
        self, left: Iterable[int], right: Iterable[int]
    ) -> List[SetMeet]:
        left_set, right_set = set(left), set(right)
        # Same homogeneity contract (and error message) as Fig. 4.
        _common_pid(self.store, left_set, "left")
        _common_pid(self.store, right_set, "right")
        if not left_set or not right_set:
            return []
        order, parent = self.index.auxiliary_tree(left_set | right_set)
        sides: Dict[int, Tuple[Set[int], Set[int]]] = {}
        for oid in left_set:
            sides.setdefault(oid, (set(), set()))[0].add(oid)
        for oid in right_set:
            sides.setdefault(oid, (set(), set()))[1].add(oid)
        meets: List[SetMeet] = []
        for oid in reversed(order):
            entry = sides.get(oid)
            if entry is None:
                continue
            lefts, rights = entry
            if lefts and rights:
                meets.append(
                    SetMeet(
                        oid=oid,
                        left_origins=tuple(sorted(lefts)),
                        right_origins=tuple(sorted(rights)),
                    )
                )
                continue
            above = parent[oid]
            if above is not None and (lefts or rights):
                target = sides.setdefault(above, (set(), set()))
                target[0].update(lefts)
                target[1].update(rights)
        return meets


def resolve_backend(store: MonetXML, spec: BackendSpec = None) -> "MeetBackend":
    """Normalize a backend spec: name, instance, or ``None`` (steered).

    An instance is returned as-is when it is bound to ``store``;
    binding it to a different store is almost certainly a bug and
    raises.
    """
    if spec is None:
        return SteeredBackend(store)
    if isinstance(spec, str):
        if spec == "steered":
            return SteeredBackend(store)
        if spec == "indexed":
            return IndexedBackend(store)
        raise ValueError(
            f"unknown meet backend {spec!r}; expected one of {BACKEND_NAMES}"
        )
    if getattr(spec, "store", None) is not store:
        raise ValueError(
            "backend instance is bound to a different store (or has no "
            "store attribute; MeetBackend implementations must carry one)"
        )
    return spec
