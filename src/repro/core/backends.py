"""Pluggable meet backends — the engine's structural-query seam.

Every operator of the paper reduces to "find the lowest common
ancestor(s) of some hit nodes, plus distances".  This module makes
*how* that happens a pluggable choice:

* :class:`SteeredBackend` — the paper, verbatim: per-query
  ``parent()`` walks steered by the ⪯ prefix order on π (Fig. 3), the
  set-wise relational loop (Fig. 4) and the schema-driven bottom-up
  roll-up (Fig. 5).  Zero preprocessing; the join count *is* the
  distance, so traces stay meaningful.  This is the default and the
  reference semantics.

* :class:`IndexedBackend` — a per-store Euler-tour + sparse-table
  index (:mod:`repro.core.lca_index`) built once and cached, giving
  O(1) pairwise meets and distances.  Set-wise and n-ary meets run the
  *same bottom-up roll-up contract* as Figs. 4/5, but over the
  **auxiliary (virtual) tree** spanned by the hit nodes and the LCAs
  of Euler-order neighbours — O(m log m) in the number of hits m,
  independent of tree depth and of the path-summary size.  Answer
  sets are provably identical to the steered operators (the auxiliary
  tree is exactly the subgraph where input chains can converge); only
  the emission *order* differs, and every consumer re-ranks.

Choosing: for one ad-hoc query the steered walk wins — no index
build, and you get the paper's join-count trace for free.  For query
*volumes* (servers, benchmarks, ranking thousands of hit pairs) the
indexed backend amortizes one O(n log n) build into O(1) queries; see
``benchmarks/bench_backends.py`` for the crossover.

The seam is threaded everywhere structural queries happen: the module
functions (``meet2``, ``meet_sets``, ``meet_general``, ``graph_meet``,
``bounded_meet2``, ``distance``) accept ``backend=``, the
:class:`~repro.core.engine.NearestConceptEngine` takes
``backend="steered"|"indexed"`` and exposes the batched
``meet_many`` / ``nearest_concepts_batch`` APIs, and the CLI exposes
``--backend``.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    Union,
    runtime_checkable,
)

from ..monet.engine import MonetXML
from .lca_index import LcaIndex, get_lca_index
from .meet_general import (
    GeneralMeet,
    TaggedMeet,
    Token,
    _as_oid_tokens,
    meet_general,
    meet_tagged,
)
from .meet_pair import PairMeet, meet2_traced
from .meet_sets import SetMeet, _common_pid, meet_sets

__all__ = [
    "MeetBackend",
    "SteeredBackend",
    "IndexedBackend",
    "BACKEND_NAMES",
    "BackendSpec",
    "resolve_backend",
]

#: CLI / engine spellings of the built-in backends.
BACKEND_NAMES: Tuple[str, ...] = ("steered", "indexed")

BackendSpec = Union[str, "MeetBackend", None]


def _decode_bits(mask: int, items: Sequence) -> Iterator:
    """The items whose interned bit is set, in bit (= intern) order."""
    while mask:
        low = mask & -mask
        yield items[low.bit_length() - 1]
        mask ^= low


@runtime_checkable
class MeetBackend(Protocol):
    """What a meet implementation must provide to plug into the engine.

    Implementations must agree on answer *sets* (meet OIDs, origin
    coverage, distances); they may differ in emission order and in
    which execution traces they can produce.
    """

    name: str
    store: MonetXML

    def meet(self, oid1: int, oid2: int) -> PairMeet:
        """Pairwise meet with distance (Fig. 3 / Def. 6)."""
        ...

    def meet_within(self, oid1: int, oid2: int, k: int) -> Optional[PairMeet]:
        """The §4 k-meet: ``None`` when d(o₁,o₂) > k."""
        ...

    def meet_many(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> List[PairMeet]:
        """Batched pairwise meets — the ranking hot path."""
        ...

    def distance(self, oid1: int, oid2: int) -> int:
        """Tree distance d(o₁,o₂) in edges."""
        ...

    def meet_sets(
        self, left: Iterable[int], right: Iterable[int]
    ) -> List[SetMeet]:
        """Set-wise minimal meets of two homogeneous sets (Fig. 4)."""
        ...

    def meet_general(
        self, relations: Mapping[Hashable, Iterable[int]]
    ) -> List[GeneralMeet]:
        """General n-ary meet over typed relations (Fig. 5)."""
        ...

    def meet_tagged(
        self, tagged: Iterable[Tuple[Token, int]]
    ) -> List[TaggedMeet]:
        """Roll-up over (token, OID) pairs; meets cover ≥ 2 tokens."""
        ...


class SteeredBackend:
    """The paper's path-steered walks — no preprocessing, traceable.

    Join counts reported by :class:`~repro.core.meet_pair.PairMeet`
    come from the actual Fig. 3 walk, so the paper's "number of joins
    = distance = ranking signal" reading holds literally.
    """

    name = "steered"

    def __init__(self, store: MonetXML):
        self.store = store

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SteeredBackend {self.store!r}>"

    def meet(self, oid1: int, oid2: int) -> PairMeet:
        return meet2_traced(self.store, oid1, oid2)

    def meet_within(self, oid1: int, oid2: int, k: int) -> Optional[PairMeet]:
        from .restrictions import bounded_meet2

        return bounded_meet2(self.store, oid1, oid2, k)

    def meet_many(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> List[PairMeet]:
        store = self.store
        return [meet2_traced(store, oid1, oid2) for oid1, oid2 in pairs]

    def distance(self, oid1: int, oid2: int) -> int:
        return meet2_traced(self.store, oid1, oid2).joins

    def meet_sets(
        self, left: Iterable[int], right: Iterable[int]
    ) -> List[SetMeet]:
        return meet_sets(self.store, left, right)

    def meet_general(
        self, relations: Mapping[Hashable, Iterable[int]]
    ) -> List[GeneralMeet]:
        return meet_general(self.store, relations)

    def meet_tagged(
        self, tagged: Iterable[Tuple[Token, int]]
    ) -> List[TaggedMeet]:
        return meet_tagged(self.store, tagged)


class IndexedBackend:
    """Euler-RMQ-indexed meets: O(1) pairs, auxiliary-tree roll-ups.

    The underlying :class:`~repro.core.lca_index.LcaIndex` is fetched
    through the generation-keyed cache on every operation, so a store
    that was invalidated (:meth:`MonetXML.invalidate_caches`) or
    rebuilt transparently gets a fresh index.
    """

    name = "indexed"

    def __init__(self, store: MonetXML):
        self.store = store

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<IndexedBackend {self.store!r}>"

    @property
    def index(self) -> LcaIndex:
        return get_lca_index(self.store)

    # -- pairwise --------------------------------------------------------
    # Equal OIDs short-circuit before any index look-up, mirroring the
    # steered walks (which answer o == o without touching the store).
    def meet(self, oid1: int, oid2: int) -> PairMeet:
        if oid1 == oid2:
            return PairMeet(oid1, 0)
        meet, distance = self.index.lca_with_distance(oid1, oid2)
        return PairMeet(meet, distance)

    def meet_within(self, oid1: int, oid2: int, k: int) -> Optional[PairMeet]:
        if k < 0:
            return None
        if oid1 == oid2:
            return PairMeet(oid1, 0)
        meet, distance = self.index.lca_with_distance(oid1, oid2)
        if distance > k:
            return None
        return PairMeet(meet, distance)

    def meet_many(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> List[PairMeet]:
        lca_with_distance = self.index.lca_with_distance
        return [
            PairMeet(oid1, 0)
            if oid1 == oid2
            else PairMeet(*lca_with_distance(oid1, oid2))
            for oid1, oid2 in pairs
        ]

    def distance(self, oid1: int, oid2: int) -> int:
        return self.index.distance(oid1, oid2)

    # -- auxiliary-tree roll-up ------------------------------------------
    def meet_tagged(
        self, tagged: Iterable[Tuple[Token, int]]
    ) -> List[TaggedMeet]:
        """Fig. 5's propagation over flat arrays with interned token-sets.

        Every distinct (token, OID) input pair is interned to an integer
        index; the roll-up then runs over the auxiliary tree in array
        form (:meth:`~repro.core.lca_index.LcaIndex.auxiliary_tree_arrays`)
        propagating plain ints instead of per-OID ``set`` objects.

        The key structural fact: a node accumulating ≥ 2 pairs is
        emitted as a meet and *stops propagating* (minimality, Fig. 5),
        so everything that travels upward is a **singleton** — one
        integer slot per auxiliary node suffices, and each propagation
        step is O(1).  (A width-``m`` bitmask would make each step
        O(m/64): a Python int's cost follows its highest set bit, not
        its popcount.)  Multi-pair token sets exist only at emission
        nodes, exactly where the output must materialize them anyway.
        """
        pair_index: Dict[Tuple[Token, int], int] = {}
        pairs: List[Tuple[Token, int]] = []
        by_oid: Dict[int, Union[int, List[int]]] = {}
        for token, oid in tagged:
            pair = (token, oid)
            index = pair_index.get(pair)
            if index is None:
                pair_index[pair] = index = len(pairs)
                pairs.append(pair)
                current = by_oid.get(oid)
                if current is None:
                    by_oid[oid] = index
                elif isinstance(current, list):
                    current.append(index)
                else:
                    by_oid[oid] = [current, index]
        if not by_oid:
            return []
        order, parent_index = self.index.auxiliary_tree_arrays(by_oid)
        single: List[int] = [-1] * len(order)  # the lone pending pair
        multi: Dict[int, List[int]] = {}       # ≥ 2 pending pairs (meets)
        for position, oid in enumerate(order):
            entry = by_oid.get(oid)
            if entry is None:
                continue
            if isinstance(entry, list):
                multi[position] = entry
            else:
                single[position] = entry
        # Reverse pre-order visits every auxiliary node after all of
        # its auxiliary descendants — the roll-up order of Fig. 5.
        meets: List[TaggedMeet] = []
        for position in range(len(order) - 1, -1, -1):
            accumulated = multi.get(position)
            if accumulated is not None:
                # Emitted meets do not propagate (minimality, Fig. 5).
                meets.append(
                    TaggedMeet(
                        oid=order[position],
                        tokens=frozenset(pairs[i] for i in accumulated),
                    )
                )
                continue
            index = single[position]
            if index < 0:
                continue
            above = parent_index[position]
            if above < 0:
                continue
            pending = single[above]
            if pending < 0:
                grown = multi.get(above)
                if grown is not None:
                    grown.append(index)
                else:
                    single[above] = index
            else:
                multi[above] = [pending, index]
                single[above] = -1
        return meets

    # The per-OID-set roll-up this class shipped with originally; kept
    # as the differential-test oracle and the serving benchmark's
    # emulated pre-optimization baseline.
    def _meet_tagged_sets(
        self, tagged: Iterable[Tuple[Token, int]]
    ) -> List[TaggedMeet]:
        by_oid: Dict[int, Set[Tuple[Token, int]]] = {}
        for token, oid in tagged:
            by_oid.setdefault(oid, set()).add((token, oid))
        if not by_oid:
            return []
        order, parent = self.index.auxiliary_tree(by_oid)
        accumulated: Dict[int, Set[Tuple[Token, int]]] = {
            oid: set(tokens) for oid, tokens in by_oid.items()
        }
        meets: List[TaggedMeet] = []
        for oid in reversed(order):
            tokens = accumulated.get(oid)
            if not tokens:
                continue
            if len(tokens) >= 2:
                meets.append(TaggedMeet(oid=oid, tokens=frozenset(tokens)))
                continue
            above = parent[oid]
            if above is not None:
                accumulated.setdefault(above, set()).update(tokens)
        return meets

    def meet_general(
        self, relations: Mapping[Hashable, Iterable[int]]
    ) -> List[GeneralMeet]:
        return [
            GeneralMeet(oid=meet.oid, origins=meet.origins)
            for meet in self.meet_tagged(_as_oid_tokens(relations))
        ]

    def meet_sets(
        self, left: Iterable[int], right: Iterable[int]
    ) -> List[SetMeet]:
        """Fig. 4 over the auxiliary tree, with one bit per input OID.

        Two parallel mask arrays (left-origin bits, right-origin bits)
        replace the per-node pair-of-sets; a node is a meet exactly
        when both masks are non-zero, and the origin tuples are decoded
        only for emitted meets.
        """
        left_set, right_set = set(left), set(right)
        # Same homogeneity contract (and error message) as Fig. 4.
        _common_pid(self.store, left_set, "left")
        _common_pid(self.store, right_set, "right")
        if not left_set or not right_set:
            return []
        inputs = sorted(left_set | right_set)
        oid_bit = {oid: 1 << position for position, oid in enumerate(inputs)}
        order, parent_index = self.index.auxiliary_tree_arrays(inputs)
        left_masks = [0] * len(order)
        right_masks = [0] * len(order)
        position_of = {oid: position for position, oid in enumerate(order)}
        for oid in left_set:
            left_masks[position_of[oid]] = oid_bit[oid]
        for oid in right_set:
            right_masks[position_of[oid]] = oid_bit[oid]
        meets: List[SetMeet] = []
        for position in range(len(order) - 1, -1, -1):
            lefts = left_masks[position]
            rights = right_masks[position]
            if lefts and rights:
                meets.append(
                    SetMeet(
                        oid=order[position],
                        left_origins=tuple(_decode_bits(lefts, inputs)),
                        right_origins=tuple(_decode_bits(rights, inputs)),
                    )
                )
                continue
            above = parent_index[position]
            if above >= 0 and (lefts or rights):
                left_masks[above] |= lefts
                right_masks[above] |= rights
        return meets


def resolve_backend(store: MonetXML, spec: BackendSpec = None) -> "MeetBackend":
    """Normalize a backend spec: name, instance, or ``None`` (steered).

    An instance is returned as-is when it is bound to ``store``;
    binding it to a different store is almost certainly a bug and
    raises.
    """
    if spec is None:
        return SteeredBackend(store)
    if isinstance(spec, str):
        if spec == "steered":
            return SteeredBackend(store)
        if spec == "indexed":
            return IndexedBackend(store)
        raise ValueError(
            f"unknown meet backend {spec!r}; expected one of {BACKEND_NAMES}"
        )
    if getattr(spec, "store", None) is not store:
        raise ValueError(
            "backend instance is bound to a different store (or has no "
            "store attribute; MeetBackend implementations must carry one)"
        )
    return spec
