"""Keyword search as a special case of the meet operator (paper §6).

"Furthermore, by restricting the result types, the operator can be
used to implement keyword search as a special case."  This module is
that special case, packaged: the caller names the result type(s) — as
paths or as plain tags — and gets back the matching instances ranked
by tightness, i.e. a classic keyword-search-over-XML API built purely
from ``meet`` + ``meet_X`` machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..datamodel.paths import Path
from .engine import NearestConceptEngine

__all__ = ["KeywordHit", "keyword_search"]


@dataclass(frozen=True, slots=True)
class KeywordHit:
    """One keyword-search answer: the typed result instance."""

    oid: int
    path: Path
    tag: str
    joins: int
    terms: Tuple[str, ...]


def _result_pids(
    engine: NearestConceptEngine,
    result_types: Iterable[Union[str, Path]],
) -> Set[int]:
    """Resolve tags and paths to the pid set of allowed result types."""
    store = engine.store
    pids: Set[int] = set()
    for wanted in result_types:
        if isinstance(wanted, Path):
            pid = store.summary.maybe_pid(wanted)
            if pid is not None:
                pids.add(pid)
            continue
        if "/" in wanted or "@" in wanted:
            pid = store.summary.maybe_pid(Path.parse(wanted))
            if pid is not None:
                pids.add(pid)
            continue
        # a bare tag: every element path ending in that label
        for pid in store.summary.element_pids():
            if store.summary.label(pid) == wanted:
                pids.add(pid)
    return pids


def keyword_search(
    engine: NearestConceptEngine,
    terms: Sequence[str],
    result_types: Iterable[Union[str, Path]],
    require_all_terms: bool = True,
    limit: Optional[int] = None,
) -> List[KeywordHit]:
    """Typed keyword search via the meet operator.

    Unlike :meth:`NearestConceptEngine.nearest_concepts`, the result
    type *is* specified here — that is the point: §6's observation
    that the schema-oblivious operator subsumes the schema-aware
    search the related systems ([12], Lore) offer.

    A result of type T matches when a meet falls on T **or strictly
    below it** (hits clustering inside one title still identify the
    enclosing article); the reported hit is the enclosing T instance.
    """
    store = engine.store
    allowed = _result_pids(engine, result_types)
    if not allowed:
        return []
    concepts = engine.nearest_concepts(
        *terms, require_all_terms=require_all_terms
    )

    hits: List[KeywordHit] = []
    seen: Set[int] = set()
    for concept in concepts:
        container = _enclosing_instance(store, concept.oid, allowed)
        if container is None or container in seen:
            continue
        seen.add(container)
        hits.append(
            KeywordHit(
                oid=container,
                path=store.path_of(container),
                tag=store.summary.label(store.pid_of(container)),
                joins=concept.joins,
                terms=concept.terms,
            )
        )
        if limit is not None and len(hits) >= limit:
            break
    return hits


def _enclosing_instance(store, oid: int, allowed: Set[int]) -> Optional[int]:
    """The nearest self-or-ancestor whose pid is an allowed type."""
    current: Optional[int] = oid
    while current is not None:
        if store.pid_of(current) in allowed:
            return current
        current = store.parent_of(current)
    return None
