"""The paper's primary contribution: the meet operator family (§3–§4).

* :func:`meet2` / :func:`meet2_traced` — pairwise meet (Fig. 3).
* :func:`meet_sets` — set-at-a-time minimal meets (Fig. 4).
* :func:`meet_general` / :func:`meet_depthwise` — n-ary roll-up (Fig. 5).
* :func:`meet_excluding` / :func:`bounded_meet2` — §4 restrictions.
* :mod:`~repro.core.distance` / :mod:`~repro.core.ranking` — §4
  distance measure and ranking heuristics.
* :class:`NearestConceptEngine` — the end-to-end query pipeline.
* :mod:`~repro.core.backends` — pluggable meet execution:
  :class:`SteeredBackend` (the paper's walks) vs
  :class:`IndexedBackend` (precomputed Euler-RMQ
  :class:`~repro.core.lca_index.LcaIndex`).
"""

from .backends import (
    BACKEND_NAMES,
    IndexedBackend,
    MeetBackend,
    SteeredBackend,
    resolve_backend,
)
from .crossdoc import CrossMatch, distinctive_terms, find_elsewhere
from .lca_index import LcaIndex, get_lca_index
from .distance import (
    MeetContext,
    contexts,
    distance,
    document_distance,
    shortest_path,
)
from .engine import NearestConcept, NearestConceptEngine
from .graph_meet import (
    GraphMeet,
    ReferenceIndex,
    graph_distance,
    graph_meet,
    graph_shortest_path,
)
from .keyword import KeywordHit, keyword_search
from .ranking_ir import IRRanker, IRWeights, ScoredConcept
from .meet_general import (
    GeneralMeet,
    TaggedMeet,
    group_by_pid,
    meet_depthwise,
    meet_general,
    meet_tagged,
)
from .meet_pair import PairMeet, meet2, meet2_traced
from .meet_sets import SetMeet, SetMeetTrace, meet_sets, meet_sets_traced
from .ranking import RankedMeet, join_count, origin_spread, rank_meets
from .restrictions import (
    bounded_meet2,
    meet_excluding,
    meet_restricted_to,
    resolve_pids,
)
from .result_cache import ResultCache, ResultCacheInfo, resolve_result_cache

__all__ = [
    "BACKEND_NAMES",
    "CrossMatch",
    "GeneralMeet",
    "IndexedBackend",
    "LcaIndex",
    "MeetBackend",
    "SteeredBackend",
    "GraphMeet",
    "IRRanker",
    "IRWeights",
    "KeywordHit",
    "MeetContext",
    "NearestConcept",
    "NearestConceptEngine",
    "PairMeet",
    "RankedMeet",
    "ReferenceIndex",
    "ScoredConcept",
    "SetMeet",
    "SetMeetTrace",
    "TaggedMeet",
    "meet_tagged",
    "bounded_meet2",
    "contexts",
    "distance",
    "distinctive_terms",
    "find_elsewhere",
    "graph_distance",
    "graph_meet",
    "graph_shortest_path",
    "keyword_search",
    "document_distance",
    "get_lca_index",
    "group_by_pid",
    "resolve_backend",
    "join_count",
    "meet2",
    "meet2_traced",
    "meet_depthwise",
    "meet_excluding",
    "meet_general",
    "meet_restricted_to",
    "meet_sets",
    "meet_sets_traced",
    "origin_spread",
    "rank_meets",
    "resolve_pids",
    "ResultCache",
    "ResultCacheInfo",
    "resolve_result_cache",
    "shortest_path",
]
