"""Distances, shortest paths and contexts derived from the meet (§3.1, §4).

The paper reads several byproducts off a ``meet₂`` computation:

* ``d(o₁, o₂)`` — "the number of joins executed while calculating
  meet₂ corresponds to the number of edges on the shortest path";
* the *contexts* ``path(o₁) − path(meet)`` and ``path(o₂) − path(meet)``
  describing what one traverses between the two nodes;
* the shortest instance path itself (up from o₁ to the meet, down to
  o₂).

A second, cheaper heuristic from §4 is the *source-file distance*
(difference of positions in the serialized document); with pre-order
OIDs that is simply the OID difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from ..datamodel.paths import Path, relative_suffix
from ..monet.engine import MonetXML
from .meet_pair import meet2_traced

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .backends import MeetBackend

__all__ = [
    "distance",
    "document_distance",
    "shortest_path",
    "contexts",
    "MeetContext",
]


def distance(
    store: MonetXML,
    oid1: int,
    oid2: int,
    backend: "Optional[MeetBackend]" = None,
) -> int:
    """Tree distance in edges — the paper's d(o₁, o₂) (§4).

    The steered default *counts joins walked*; an indexed backend
    reads the same number off depths and the O(1) LCA.
    """
    if backend is not None:
        return backend.distance(oid1, oid2)
    return meet2_traced(store, oid1, oid2).joins


def document_distance(store: MonetXML, oid1: int, oid2: int) -> int:
    """Distance in the source file, approximated by pre-order OIDs (§4)."""
    if oid1 not in store or oid2 not in store:
        raise ValueError(f"OIDs {oid1}/{oid2} outside the store")
    return abs(oid1 - oid2)


def shortest_path(
    store: MonetXML,
    oid1: int,
    oid2: int,
    backend: "Optional[MeetBackend]" = None,
) -> List[int]:
    """OIDs along the unique shortest path o₁ → meet → o₂, inclusive."""
    if backend is not None:
        meet = backend.meet(oid1, oid2).oid
    else:
        meet = meet2_traced(store, oid1, oid2).oid
    up: List[int] = []
    current = oid1
    while current != meet:
        up.append(current)
        parent = store.parent_of(current)
        assert parent is not None
        current = parent
    down: List[int] = []
    current = oid2
    while current != meet:
        down.append(current)
        parent = store.parent_of(current)
        assert parent is not None
        current = parent
    return up + [meet] + list(reversed(down))


@dataclass(frozen=True, slots=True)
class MeetContext:
    """The §3.1 interpretation bundle of one pairwise meet."""

    meet_oid: int
    meet_path: Path
    left_context: Path
    right_context: Path
    distance: int

    def describe(self) -> str:
        """One-line human description of the relationship found."""
        left = str(self.left_context) or "·"
        right = str(self.right_context) or "·"
        return (
            f"nearest concept {self.meet_path} "
            f"(distance {self.distance}; contexts {left} / {right})"
        )


def contexts(store: MonetXML, oid1: int, oid2: int) -> MeetContext:
    """Compute meet, distance, and the two relative contexts of §3.1.

    ``path(o₁) − path(meet)`` "describe[s] the context of o₁ … with
    respect to [the meet]. Depending on the overall schema, this may
    describe a part-of or is-a relationship or a sequence thereof."
    """
    result = meet2_traced(store, oid1, oid2)
    meet_path = store.path_of(result.oid)
    return MeetContext(
        meet_oid=result.oid,
        meet_path=meet_path,
        left_context=relative_suffix(store.path_of(oid1), meet_path),
        right_context=relative_suffix(store.path_of(oid2), meet_path),
        distance=result.joins,
    )
