"""Precomputed Euler-tour + sparse-table LCA index (the backend seam's
fast path).

The paper's ``meet₂`` (Fig. 3) deliberately avoids preprocessing: its
per-query cost *is* the distance, which doubles as the §4 ranking
signal, and nothing beyond the Monet transform is needed.  That trade
is right for one ad-hoc query — and wrong for a server answering
thousands of nearest-concept queries against one loaded store.  This
module provides the classic offline answer the paper cites as refs.
[4, 5]: an Euler tour of the instance tree plus a sparse table over
tour depths gives O(1) LCA and O(1) depth-based distance

    d(o₁, o₂) = depth(o₁) + depth(o₂) − 2·depth(lca)

after O(n log n) preprocessing.  :class:`~repro.core.backends.IndexedBackend`
builds one :class:`LcaIndex` per store and reuses it across every
pairwise, set-wise and n-ary meet; :func:`get_lca_index` caches the
index per store, keyed on the store's ``generation`` so a rebuilt or
invalidated store transparently gets a fresh index.

Beyond plain LCA the index exposes the Euler order itself
(:meth:`LcaIndex.euler_position`) and an O(1) interval ancestor test
(:meth:`LcaIndex.is_ancestor`) — the two primitives the indexed
general-meet roll-up needs to build auxiliary ("virtual") trees over
hit sets without touching the full instance tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple
from weakref import WeakKeyDictionary

from ..datamodel.errors import UnknownOIDError
from ..monet.engine import MonetXML

__all__ = [
    "LcaIndex",
    "get_lca_index",
    "seed_lca_index",
    "clear_lca_index_cache",
    "lca_index_cache_info",
    "LcaIndexCacheInfo",
]


class LcaIndex:
    """O(1)-query LCA/distance index over one store.

    Preprocessing is O(n log n) time and space (Euler tour of length
    2n−1 plus its sparse table).  All queries after that are O(1):
    ``lca``, ``distance``, ``depth``, ``euler_position``,
    ``is_ancestor``.
    """

    def __init__(self, store: MonetXML):
        self.store = store
        #: Store generation this index was built against; a mismatch
        #: with ``store.generation`` means the index is stale.
        self.generation = getattr(store, "generation", 0)
        self._tour: List[int] = []          # node OID per Euler step
        self._tour_depth: List[int] = []    # depth per Euler step
        self._first: Dict[int, int] = {}    # OID → first tour position
        self._last: Dict[int, int] = {}     # OID → last tour position
        # Dense (oid − first_oid)-indexed first/last columns, built
        # lazily for the vector kernels (snapshot loads carry them in).
        self._first_column = None
        self._last_column = None
        self._build_tour()
        self._build_sparse_table()

    # -- preprocessing ----------------------------------------------------
    def _build_tour(self) -> None:
        store = self.store
        root = store.root_oid
        # Iterative Euler tour: (oid, depth, child cursor) frames; a
        # parent is re-appended every time a child frame returns.
        stack: List[List[int]] = [[root, 1, 0]]
        children_cache: Dict[int, List[int]] = {}
        while stack:
            frame = stack[-1]
            oid, depth, cursor = frame
            if cursor == 0:
                self._first.setdefault(oid, len(self._tour))
            self._last[oid] = len(self._tour)
            self._tour.append(oid)
            self._tour_depth.append(depth)
            children = children_cache.get(oid)
            if children is None:
                children = store.children_of(oid)
                children_cache[oid] = children
            if cursor < len(children):
                frame[2] += 1
                stack.append([children[cursor], depth + 1, 0])
            else:
                stack.pop()

    def _build_sparse_table(self) -> None:
        depths = self._tour_depth
        length = len(depths)
        log = [0] * (length + 1)
        for i in range(2, length + 1):
            log[i] = log[i // 2] + 1
        self._log = log
        # table[k][i] = position of min depth in tour[i : i + 2**k]
        table: List[List[int]] = [list(range(length))]
        k = 1
        while (1 << k) <= length:
            previous = table[k - 1]
            span = 1 << (k - 1)
            row = [0] * (length - (1 << k) + 1)
            for i in range(len(row)):
                left = previous[i]
                right = previous[i + span]
                row[i] = left if depths[left] <= depths[right] else right
            table.append(row)
            k += 1
        self._table = table

    # -- O(1) queries ---------------------------------------------------
    def euler_position(self, oid: int) -> int:
        """First Euler-tour position of a node (its pre-order slot)."""
        try:
            return self._first[oid]
        except KeyError:
            raise UnknownOIDError(oid) from None

    def depth(self, oid: int) -> int:
        """Tree depth of a node (root = 1), read off the tour."""
        return self._tour_depth[self.euler_position(oid)]

    def lca(self, oid1: int, oid2: int) -> int:
        """The lowest common ancestor (= ``meet₂``'s answer), O(1)."""
        try:
            first1 = self._first[oid1]
            first2 = self._first[oid2]
        except KeyError as exc:
            raise UnknownOIDError(int(str(exc.args[0]))) from None
        low, high = min(first1, first2), max(first1, first2)
        k = self._log[high - low + 1]
        left = self._table[k][low]
        right = self._table[k][high - (1 << k) + 1]
        position = (
            left if self._tour_depth[left] <= self._tour_depth[right] else right
        )
        return self._tour[position]

    def distance(self, oid1: int, oid2: int) -> int:
        """Tree distance d(o₁,o₂) via depths and the O(1) LCA.

        Equals the join count of the paper's traced Fig. 3 walk.
        """
        meet = self.lca(oid1, oid2)
        position1 = self._first[oid1]
        position2 = self._first[oid2]
        return (
            self._tour_depth[position1]
            + self._tour_depth[position2]
            - 2 * self._tour_depth[self._first[meet]]
        )

    def lca_with_distance(self, oid1: int, oid2: int) -> Tuple[int, int]:
        """(lca, distance) in one pass — the batched hot path."""
        meet = self.lca(oid1, oid2)
        distance = (
            self._tour_depth[self._first[oid1]]
            + self._tour_depth[self._first[oid2]]
            - 2 * self._tour_depth[self._first[meet]]
        )
        return meet, distance

    def is_ancestor(self, ancestor_oid: int, descendant_oid: int) -> bool:
        """Reflexive ancestor test via Euler interval containment, O(1)."""
        first = self.euler_position(ancestor_oid)
        return first <= self.euler_position(descendant_oid) <= self._last[ancestor_oid]

    def lca_many(self, pairs: Iterable[Tuple[int, int]]) -> List[int]:
        """Batched LCA — one vectorized sparse-table pass when NumPy is
        importable (:mod:`repro.kernels`), else a python loop over the
        O(1) scalar kernel.  Answers are identical either way."""
        from .. import kernels

        if kernels.available():
            from ..kernels.lca import get_kernels

            return get_kernels(self).lca_pairs(pairs)
        return [self.lca(oid1, oid2) for oid1, oid2 in pairs]

    def auxiliary_tree(
        self, oids: Iterable[int]
    ) -> Tuple[List[int], Dict[int, Optional[int]]]:
        """The virtual tree spanned by ``oids`` and their mutual LCAs.

        Returns ``(order, parent)``: the candidate nodes in Euler
        (pre-)order and the compressed parent map.  Candidates are the
        inputs plus the LCAs of Euler-order neighbours; that set is
        closed under LCA and is exactly where ≥ 2 input ancestor
        chains can first converge, so the Fig. 4/5 roll-ups restricted
        to it emit the same meets as the full instance tree.  Cost is
        O(m log m) for m inputs, independent of tree size and depth.
        """
        first = self._first
        last = self._last
        lca = self.lca
        try:
            ordered = sorted(set(oids), key=first.__getitem__)
        except KeyError as exc:
            raise UnknownOIDError(int(str(exc.args[0]))) from None
        candidates = set(ordered)
        for left_oid, right_oid in zip(ordered, ordered[1:]):
            candidates.add(lca(left_oid, right_oid))
        order = sorted(candidates, key=first.__getitem__)
        parent: Dict[int, Optional[int]] = {}
        stack: List[int] = []
        stack_last: List[int] = []
        for oid in order:
            position = first[oid]
            # The stack holds the ancestor chain of the previous node
            # (in pre-order); pop entries whose Euler interval ended.
            while stack and stack_last[-1] < position:
                stack.pop()
                stack_last.pop()
            parent[oid] = stack[-1] if stack else None
            stack.append(oid)
            stack_last.append(last[oid])
        return order, parent

    def auxiliary_tree_arrays(
        self, oids: Iterable[int]
    ) -> Tuple[List[int], List[int]]:
        """:meth:`auxiliary_tree` in array form — the roll-up hot path.

        Returns ``(order, parent_index)``: the candidate OIDs in Euler
        (pre-)order and, for each position, the *position* of its
        auxiliary parent in ``order`` (``-1`` at the virtual root).
        Parent links as positions let the Fig. 4/5 roll-ups propagate
        over flat parallel arrays instead of per-OID dict look-ups.
        """
        first = self._first
        last = self._last
        try:
            ordered = sorted(set(oids), key=first.__getitem__)
        except KeyError as exc:
            raise UnknownOIDError(int(str(exc.args[0]))) from None
        # Inlined range-minimum LCA over Euler-order neighbours: their
        # first positions are already the sort keys, so the kernel runs
        # straight off the sparse table without re-resolving OIDs.
        log = self._log
        table = self._table
        depths = self._tour_depth
        tour = self._tour
        candidates = set(ordered)
        add_candidate = candidates.add
        low = -1
        for oid in ordered:
            high = first[oid]
            if low >= 0:
                k = log[high - low + 1]
                left = table[k][low]
                right = table[k][high - (1 << k) + 1]
                position = left if depths[left] <= depths[right] else right
                add_candidate(tour[position])
            low = high
        order = sorted(candidates, key=first.__getitem__)
        parent_index: List[int] = [-1] * len(order)
        stack: List[int] = []          # positions in ``order``
        stack_last: List[int] = []     # matching Euler interval ends
        for position, oid in enumerate(order):
            euler = first[oid]
            while stack and stack_last[-1] < euler:
                stack.pop()
                stack_last.pop()
            parent_index[position] = stack[-1] if stack else -1
            stack.append(position)
            stack_last.append(last[oid])
        return order, parent_index

    # -- flat columns (the vector kernels' contract) --------------------
    def kernel_columns(self) -> Dict[str, object]:
        """The raw index state as flat columns for the batch kernels.

        ``first``/``last`` are dense ``(oid − first_oid)``-indexed
        columns with ``-1`` marking OIDs absent from the tour
        (tombstones); snapshot-loaded indexes return the deserialized
        columns as-is (zero-copy for the kernels' buffer views), while
        freshly built indexes densify their dicts once and memoize.
        Unlike :meth:`to_arrays` this never assumes a compacted store.
        """
        if self._first_column is None:
            from array import array

            base = self.store.first_oid
            count = self.store.node_count
            first_of = self._first.get
            last_of = self._last.get
            self._first_column = array(
                "q", (first_of(base + i, -1) for i in range(count))
            )
            self._last_column = array(
                "q", (last_of(base + i, -1) for i in range(count))
            )
        return {
            "base": self.store.first_oid,
            "tour": self._tour,
            "depth": self._tour_depth,
            "first": self._first_column,
            "last": self._last_column,
            "log": self._log,
            "table": self._table,
        }

    # -- persistence (the snapshot store's contract) --------------------
    def to_arrays(self) -> Dict[str, object]:
        """The raw index state as flat int columns, for serialization.

        ``first``/``last`` are emitted in dense OID order (position =
        ``oid - store.first_oid``), ``table_rows`` are the sparse-table
        rows above row 0 (row 0 is the identity and is regenerated on
        load).  Together with the store the columns reconstruct an
        equivalent index via :meth:`from_arrays` with zero tour or
        table rebuilding.
        """
        store = self.store
        base = store.first_oid
        count = store.node_count
        return {
            "tour": self._tour,
            "depth": self._tour_depth,
            "first": [self._first[base + i] for i in range(count)],
            "last": [self._last[base + i] for i in range(count)],
            "log": self._log,
            "table_rows": self._table[1:],
        }

    @classmethod
    def from_arrays(
        cls,
        store: MonetXML,
        *,
        tour,
        depth,
        first,
        last,
        log,
        table_rows,
    ) -> "LcaIndex":
        """Rebind deserialized columns as a ready index — O(columns).

        No Euler tour is walked and no sparse table is computed: the
        columns (any int sequences, e.g. zero-copy memoryview casts)
        are used as-is.  Only the dense ``first``/``last`` columns are
        lifted back into the OID-keyed dicts the query kernels expect.
        """
        self = cls.__new__(cls)
        self.store = store
        self.generation = getattr(store, "generation", 0)
        self._tour = tour
        self._tour_depth = depth
        base = store.first_oid
        oids = range(base, base + store.node_count)
        self._first = dict(zip(oids, first))
        self._last = dict(zip(oids, last))
        # Keep the dense columns as loaded: the vector kernels view
        # them zero-copy (they may be memoryview casts over an mmap'd
        # snapshot) instead of re-densifying the dicts above.
        self._first_column = first
        self._last_column = last
        self._log = log
        # Row 0 of the sparse table is position→position; ``range`` is
        # an O(1) stand-in with identical indexing behaviour.
        self._table = [range(len(tour)), *table_rows]
        return self

    @property
    def tour_length(self) -> int:
        return len(self._tour)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LcaIndex nodes={len(self._first)} tour={len(self._tour)} "
            f"generation={self.generation}>"
        )


# ---------------------------------------------------------------------------
# Per-store cache, keyed on store identity + generation.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LcaIndexCacheInfo:
    """Counters of the per-store index cache (for tests and benches)."""

    builds: int
    hits: int
    currsize: int


_cache: "WeakKeyDictionary[MonetXML, LcaIndex]" = WeakKeyDictionary()
_builds = 0
_hits = 0


def get_lca_index(store: MonetXML) -> LcaIndex:
    """The cached :class:`LcaIndex` of a store, (re)built on demand.

    The cache is keyed on the store object (weakly, so dropped stores
    free their index) *and* its ``generation``: calling
    :meth:`repro.monet.engine.MonetXML.invalidate_caches` — or loading
    / transforming a fresh store object — yields a fresh index, which
    is what keeps the index transparently correct when a store is
    rebuilt.
    """
    global _builds, _hits
    cached = _cache.get(store)
    if cached is not None and cached.generation == getattr(store, "generation", 0):
        _hits += 1
        return cached
    index = LcaIndex(store)
    _cache[store] = index
    _builds += 1
    return index


def seed_lca_index(store: MonetXML, index: LcaIndex) -> None:
    """Install a ready index into the per-store cache without a build.

    The snapshot loader's hook: a deserialized
    :meth:`LcaIndex.from_arrays` index is registered so that every
    subsequent :func:`get_lca_index` call — engines, backends, the CLI
    — is a cache hit.  Neither the build nor the hit counter moves,
    keeping the "zero constructions on warm start" property testable.
    """
    if index.store is not store:
        raise ValueError("cannot seed the cache with an index of another store")
    index.generation = getattr(store, "generation", 0)
    _cache[store] = index


def clear_lca_index_cache() -> None:
    """Drop every cached index and reset the counters (test isolation)."""
    global _builds, _hits
    _cache.clear()
    _builds = 0
    _hits = 0


def lca_index_cache_info() -> LcaIndexCacheInfo:
    return LcaIndexCacheInfo(builds=_builds, hits=_hits, currsize=len(_cache))
