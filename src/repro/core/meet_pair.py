"""``meet₂`` — the pairwise meet operator (paper Fig. 3, Def. 6).

Given two nodes o₁, o₂ of the syntax tree, ``meet₂(o₁, o₂)`` is their
lowest common ancestor: the unique node o₃ with

1. path(o₁) ⪯ path(o₃)   (o₃ on the root path of o₁),
2. path(o₂) ⪯ path(o₃)   and
3. no o₄ strictly below o₃ satisfying both.

The algorithm walks ``parent()`` pointers, *steered by the ⪯ prefix
order on* π: comparing π(o₁) and π(o₂) "steers the search direction
of the algorithm and avoids superfluous look-ups" — only the argument
whose path is strictly deeper ascends; when the paths are equal (or
incomparable at equal depth) both ascend in lock-step.  π look-ups are
free in the Monet model (the relation name carries the path).

The number of ``parent`` look-ups (= joins on the Monet engine) is
exactly the tree distance d(o₁, o₂), which §4 reuses as the distance
measure and ranking heuristic.

This module *is* the ``steered`` meet backend's pairwise kernel; pass
``backend=`` (see :mod:`repro.core.backends`) to answer the same
queries from the precomputed Euler-RMQ index instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from ..datamodel.errors import ModelError
from ..monet.engine import MonetXML

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .backends import MeetBackend

__all__ = ["PairMeet", "meet2", "meet2_traced", "meet_many"]


@dataclass(frozen=True, slots=True)
class PairMeet:
    """Result of a pairwise meet: the ancestor OID and the join count."""

    oid: int
    joins: int

    @property
    def distance(self) -> int:
        """d(o₁, o₂): the paper defines it as the number of joins."""
        return self.joins


def meet2(
    store: MonetXML,
    oid1: int,
    oid2: int,
    backend: "Optional[MeetBackend]" = None,
) -> int:
    """The meet (LCA) of two nodes; both must belong to the store."""
    if backend is not None:
        return backend.meet(oid1, oid2).oid
    return meet2_traced(store, oid1, oid2).oid


def meet_many(
    store: MonetXML,
    pairs: Iterable[Tuple[int, int]],
    backend: "Optional[MeetBackend]" = None,
) -> List[PairMeet]:
    """Batched pairwise meets.

    With the default steered backend this is just the Fig. 3 walk in a
    loop; with :class:`~repro.core.backends.IndexedBackend` the whole
    batch is answered from one Euler-RMQ index in O(1) per pair.
    """
    if backend is not None:
        return backend.meet_many(pairs)
    return [meet2_traced(store, oid1, oid2) for oid1, oid2 in pairs]


def meet2_traced(store: MonetXML, oid1: int, oid2: int) -> PairMeet:
    """Fig. 3 verbatim, additionally counting parent look-ups (joins).

    Raises :class:`ModelError` if the two OIDs have no common ancestor,
    which cannot happen for nodes of one rooted document.
    """
    if oid1 == oid2:
        return PairMeet(oid1, 0)

    summary = store.summary
    joins = 0
    current1: Optional[int] = oid1
    current2: Optional[int] = oid2
    while current1 != current2:
        if current1 is None or current2 is None:
            raise ModelError(
                f"OIDs {oid1} and {oid2} have no common ancestor"
            )
        pid1 = store.pid_of(current1)
        pid2 = store.pid_of(current2)
        if pid1 != pid2 and summary.prefix_leq(pid1, pid2):
            # π(o1) strictly below π(o2): only o1 can be the deeper node.
            current1 = store.parent_of(current1)
            joins += 1
        elif pid1 != pid2 and summary.prefix_leq(pid2, pid1):
            current2 = store.parent_of(current2)
            joins += 1
        elif summary.depth(pid1) > summary.depth(pid2):
            # Incomparable paths: ascend the deeper side first.
            current1 = store.parent_of(current1)
            joins += 1
        elif summary.depth(pid2) > summary.depth(pid1):
            current2 = store.parent_of(current2)
            joins += 1
        else:
            # Same depth (equal or incomparable paths): lock-step.
            current1 = store.parent_of(current1)
            current2 = store.parent_of(current2)
            joins += 2
    assert current1 is not None
    return PairMeet(current1, joins)
