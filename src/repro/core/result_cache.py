"""Generation-keyed LRU result cache — the serving layer's memory.

A server answering heavy nearest-concept traffic sees the same handful
of queries over and over; recomputing the full pipeline (search →
roll-up → restrict → rank) for each repeat wastes exactly the work
this repo keeps optimizing.  :class:`ResultCache` memoizes finished
answers keyed on ``(store.generation, normalized query, options)``:

* the **generation** component makes staleness structurally
  impossible — a key minted against an invalidated store can never be
  produced again, and :meth:`ResultCache.sync_generation` (called by
  every cache user on access) drops the dead entries wholesale the
  moment the store moves on;
* the **normalized query** component canonicalizes whatever in the
  request provably cannot change the answer (term order and duplicate
  terms for the engine, surrounding whitespace for the query
  processor), so equivalent requests share one entry;
* the **options** are the remaining knobs verbatim.

Eviction is plain LRU.  Hit/miss/eviction counters are exposed via
:meth:`ResultCache.cache_info` so benchmarks and the CLI ``--stats``
flag can report serving behaviour.

The cache is **thread-safe**: one lock guards the LRU order and the
counters, so a single instance can back the multi-threaded HTTP
service (:mod:`repro.api.server`) where concurrent readers share one
engine.  Values are immutable tuples, so a returned entry needs no
further protection.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, List, Optional, Union

from ..obs.metrics import Counter, Gauge

__all__ = ["ResultCache", "ResultCacheInfo", "resolve_result_cache"]

#: Default capacity when a cache is requested without an explicit size.
DEFAULT_MAXSIZE = 1024


@dataclass(frozen=True)
class ResultCacheInfo:
    """A snapshot of the cache counters (mirrors functools.lru_cache)."""

    hits: int
    misses: int
    maxsize: int
    currsize: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """A small LRU mapping from query keys to finished result lists.

    Values are stored as the immutable tuples the callers hand in;
    callers re-materialize mutable containers on the way out so cached
    entries can never be corrupted by a consumer.
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._generation: Optional[Hashable] = None
        self._hits = Counter(
            "repro_cache_hits_total", "Result-cache lookups that hit."
        )
        self._misses = Counter(
            "repro_cache_misses_total", "Result-cache lookups that missed."
        )
        self._evictions = Counter(
            "repro_cache_evictions_total",
            "Result-cache entries evicted by the LRU policy.",
        )
        self._size_gauge = Gauge(
            "repro_cache_entries", "Result-cache entries currently held."
        )
        self._size_gauge.set_function(lambda: len(self._entries))
        self._lock = threading.Lock()

    def sync_generation(self, generation: Hashable) -> None:
        """Drop everything when the store moved to a new generation.

        Every entry's key embeds the generation it was computed
        against, so after :meth:`~repro.monet.engine.MonetXML.
        invalidate_caches` no surviving entry could ever hit again —
        purging them eagerly keeps the cache from squatting on dead
        results.  ``generation`` is any hashable token: a store's
        integer generation, or a sharded collection's layout
        fingerprint + generation vector (shard count and ranges
        included, so re-sharding can never serve stale merged results).
        """
        with self._lock:
            if self._generation != generation:
                self._generation = generation
                self._entries.clear()

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses.inc()
                return None
            self._entries.move_to_end(key)
            self._hits.inc()
            return entry

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            entries = self._entries
            if key in entries:
                entries.move_to_end(key)
            entries[key] = value
            if len(entries) > self.maxsize:
                entries.popitem(last=False)
                self._evictions.inc()

    def clear(self) -> None:
        """Drop all entries (counters survive; they describe the run)."""
        with self._lock:
            self._entries.clear()

    def metric_objects(self) -> List[object]:
        """The typed metrics backing :meth:`cache_info`."""
        return [
            self._hits,
            self._misses,
            self._evictions,
            self._size_gauge,
        ]

    def cache_info(self) -> ResultCacheInfo:
        with self._lock:
            return ResultCacheInfo(
                hits=self._hits.value,
                misses=self._misses.value,
                maxsize=self.maxsize,
                currsize=len(self._entries),
                evictions=self._evictions.value,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self.cache_info()
        return (
            f"<ResultCache {info.currsize}/{info.maxsize} "
            f"hits={info.hits} misses={info.misses}>"
        )


CacheSpec = Union[None, bool, int, ResultCache]


def resolve_result_cache(spec: CacheSpec) -> Optional[ResultCache]:
    """Normalize a cache spec: off (``None``/``False``), a capacity,
    ``True`` (default capacity), or a ready instance (shared caches)."""
    if spec is None or spec is False:
        return None
    if spec is True:
        return ResultCache(DEFAULT_MAXSIZE)
    if isinstance(spec, int):
        return ResultCache(spec)
    return spec
