"""Ranking heuristics for meet results (paper §4).

"The number of joins is … a simple yet effective heuristic for
establishing a ranking between the result OIDs."  For a general meet
the join count equals the total number of edges between the meet and
the original inputs it covers — the tighter the cluster, the better
the result.  §4 additionally suggests "distances in the source file";
with pre-order OIDs that is the OID spread of the origin set.

Scores are *lower-is-better*.  :func:`rank_meets` combines:

1. join count (primary — tighter concepts first),
2. origin spread in document order (secondary),
3. depth, descending (deeper = more specific concepts first),
4. OID (document order) as the deterministic tie-breaker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from ..datamodel.paths import Path
from ..monet.engine import MonetXML
from .meet_general import GeneralMeet

__all__ = ["RankedMeet", "join_count", "origin_spread", "rank_meets"]


@dataclass(frozen=True, slots=True)
class RankedMeet:
    """A general meet annotated with its ranking features."""

    oid: int
    path: Path
    origins: Tuple[int, ...]
    joins: int
    spread: int
    depth: int

    def sort_key(self) -> Tuple[int, int, int, int]:
        return (self.joins, self.spread, -self.depth, self.oid)


def join_count(store: MonetXML, result: GeneralMeet) -> int:
    """Edges between the meet and its origins = joins spent finding it.

    Because the meet is a common ancestor, the edge count from origin
    ``o`` is simply ``depth(o) − depth(meet)``; no walking needed.
    """
    meet_depth = store.depth_of(result.oid)
    return sum(store.depth_of(oid) - meet_depth for oid in result.origins)


def origin_spread(result: GeneralMeet) -> int:
    """Document-order spread of the origins (§4 source-file distance)."""
    origins = result.origins
    return max(origins) - min(origins)


def rank_meets(
    store: MonetXML, results: Iterable[GeneralMeet]
) -> List[RankedMeet]:
    """Annotate and sort general meets, best first; deterministic."""
    ranked = [
        RankedMeet(
            oid=result.oid,
            path=store.path_of(result.oid),
            origins=tuple(sorted(result.origins)),
            joins=join_count(store, result),
            spread=origin_spread(result),
            depth=store.depth_of(result.oid),
        )
        for result in results
    ]
    ranked.sort(key=RankedMeet.sort_key)
    return ranked
