"""Restricted meet variants (paper §4).

Two knobs give the user "more control over what the operator
returns":

* **Result-type restriction** ``meet_X``: discard result candidates
  whose path lies in an exclusion set X — e.g. exclude the document
  root path in large bibliographies so the query never degenerates to
  "these two strings occur in the same database".  The §5 case study
  runs with the root excluded.  An *allow*-variant (keep only listed
  paths) is also provided; the paper notes it turns the operator into
  plain keyword search over chosen result types.

* **Distance bound** ``k-meet``: return ⊥ (``None``) when
  d(o₁, o₂) > k, "occasionally useful to block undesired matches".
  The bound aborts the ancestor walk after k joins, so an out-of-range
  pair costs at most k look-ups.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Mapping, Optional, Set, Union

from ..datamodel.paths import Path
from ..monet.engine import MonetXML
from .meet_general import GeneralMeet, meet_general
from .meet_pair import PairMeet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .backends import MeetBackend

__all__ = [
    "resolve_pids",
    "meet_excluding",
    "meet_restricted_to",
    "bounded_meet2",
]

PathLike = Union[Path, str, int]


def resolve_pids(store: MonetXML, paths: Iterable[PathLike]) -> Set[int]:
    """Normalize a mixed path/str/pid collection to a pid set.

    Unknown paths are ignored (they cannot match any result anyway).
    """
    pids: Set[int] = set()
    for item in paths:
        if isinstance(item, int):
            pids.add(item)
            continue
        path = Path.parse(item) if isinstance(item, str) else item
        pid = store.summary.maybe_pid(path)
        if pid is not None:
            pids.add(pid)
    return pids


def meet_excluding(
    store: MonetXML,
    relations: Mapping[int, Iterable[int]],
    excluded: Iterable[PathLike],
    backend: "Optional[MeetBackend]" = None,
) -> List[GeneralMeet]:
    """``meet_X``: the general meet minus results typed in ``excluded``.

    Matches the paper's definition: results are computed by the
    unrestricted operator and candidates with π(o) ∈ X are discarded —
    the roll-up itself is unchanged, so minimality of the surviving
    meets is untouched.
    """
    excluded_pids = resolve_pids(store, excluded)
    return [
        result
        for result in meet_general(store, relations, backend=backend)
        if store.pid_of(result.oid) not in excluded_pids
    ]


def meet_restricted_to(
    store: MonetXML,
    relations: Mapping[int, Iterable[int]],
    allowed: Iterable[PathLike],
    backend: "Optional[MeetBackend]" = None,
) -> List[GeneralMeet]:
    """Keep only meets whose path is in ``allowed``.

    "By restricting the result types, the operator can be used to
    implement keyword search as a special case" (§6).
    """
    allowed_pids = resolve_pids(store, allowed)
    return [
        result
        for result in meet_general(store, relations, backend=backend)
        if store.pid_of(result.oid) in allowed_pids
    ]


def bounded_meet2(
    store: MonetXML,
    oid1: int,
    oid2: int,
    k: int,
    backend: "Optional[MeetBackend]" = None,
) -> Optional[PairMeet]:
    """The §4 k-meet: ``meet₂`` if d(o₁,o₂) ≤ k, else ``None`` (⊥).

    Implemented as the Fig. 3 walk with an early abort, so rejected
    pairs cost at most k parent look-ups; with an indexed backend the
    bound is checked against the O(1) depth-based distance instead.
    """
    if backend is not None:
        return backend.meet_within(oid1, oid2, k)
    if k < 0:
        return None
    if oid1 == oid2:
        return PairMeet(oid1, 0)

    summary = store.summary
    joins = 0
    current1, current2 = oid1, oid2
    while current1 != current2:
        if joins >= k:
            return None
        pid1 = store.pid_of(current1)
        pid2 = store.pid_of(current2)
        if pid1 != pid2 and summary.prefix_leq(pid1, pid2):
            current1 = store.parent_of(current1)  # type: ignore[assignment]
            joins += 1
        elif pid1 != pid2 and summary.prefix_leq(pid2, pid1):
            current2 = store.parent_of(current2)  # type: ignore[assignment]
            joins += 1
        elif summary.depth(pid1) > summary.depth(pid2):
            current1 = store.parent_of(current1)  # type: ignore[assignment]
            joins += 1
        elif summary.depth(pid2) > summary.depth(pid1):
            current2 = store.parent_of(current2)  # type: ignore[assignment]
            joins += 1
        else:
            current1 = store.parent_of(current1)  # type: ignore[assignment]
            current2 = store.parent_of(current2)  # type: ignore[assignment]
            joins += 2
        if current1 is None or current2 is None:
            return None
    if joins > k:
        return None
    return PairMeet(current1, joins)
