"""Meets over reference-augmented graphs (the paper's §7 future work).

"XML documents may also contain references (IDs and IDREFs) that
potentially break the tree structure … If we interpret the meet
operator as some variant of nearest neighbor search, we might find
generalizations on graph structures … However, the fact that we then
have to take care of circular structures may add significant
complexity" (§3.2/§7).

This module implements that generalization:

* :class:`ReferenceIndex` — extracts ID → OID bindings and reference
  edges from a store's string associations (configurable attribute
  names, multi-valued IDREFS supported, dangling references reported);
* :func:`graph_distance` / :func:`graph_shortest_path` —
  bidirectional BFS over the undirected union of tree edges and
  reference edges; cycle-safe by construction;
* :func:`graph_meet` — the nearest-concept generalization: the
  *shallowest node on the shortest connecting path*.  On a pure tree
  this is exactly ``meet₂`` (the LCA is the unique minimum-depth node
  of the tree path), so the operator is a conservative extension; with
  references it returns the concept through which the two hits are
  most closely related, even when that relation crosses an IDREF.

Distances through references count 1 per reference edge, so the §4
k-restriction and ranking carry over unchanged.

All graph entry points accept ``backend=``: when there are no
reference edges in play the query degenerates to the tree case, and a
meet backend (notably the Euler-RMQ-indexed one) answers it without
the bidirectional BFS — the apex and distance come from the backend,
only the unique tree path is reconstructed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..monet.engine import MonetXML

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .backends import MeetBackend

__all__ = [
    "ReferenceIndex",
    "GraphMeet",
    "graph_distance",
    "graph_shortest_path",
    "graph_meet",
]


class ReferenceIndex:
    """ID/IDREF extraction over a store.

    Parameters
    ----------
    store:
        The Monet XML instance.
    id_attributes:
        Attribute names whose value *defines* an identifier.
    ref_attributes:
        Attribute names whose (whitespace-separated) values *refer* to
        identifiers (IDREF and IDREFS alike).
    """

    def __init__(
        self,
        store: MonetXML,
        id_attributes: Sequence[str] = ("id", "xml:id"),
        ref_attributes: Sequence[str] = ("idref", "idrefs", "ref", "crossref"),
    ):
        self.store = store
        self.id_attributes = tuple(id_attributes)
        self.ref_attributes = tuple(ref_attributes)
        self._ids: Dict[str, int] = {}
        self._edges: Dict[int, List[int]] = {}
        self._dangling: List[Tuple[int, str]] = []
        self._build()

    def _build(self) -> None:
        summary = self.store.summary
        referers: List[Tuple[int, str]] = []
        for pid, relation in self.store.string_relations():
            label = summary.label(pid)
            if label in self.id_attributes:
                for oid, value in relation:
                    self._ids.setdefault(value, oid)
            elif label in self.ref_attributes:
                for oid, value in relation:
                    for token in value.split():
                        referers.append((oid, token))
        for oid, token in referers:
            target = self._ids.get(token)
            if target is None:
                self._dangling.append((oid, token))
                continue
            self._edges.setdefault(oid, []).append(target)
            self._edges.setdefault(target, []).append(oid)

    # -- accessors --------------------------------------------------------
    @property
    def id_count(self) -> int:
        return len(self._ids)

    @property
    def edge_count(self) -> int:
        """Number of (undirected) reference edges."""
        return sum(len(targets) for targets in self._edges.values()) // 2

    @property
    def dangling(self) -> List[Tuple[int, str]]:
        """(referring OID, unresolved identifier) pairs."""
        return list(self._dangling)

    def resolve(self, identifier: str) -> Optional[int]:
        return self._ids.get(identifier)

    def neighbours(self, oid: int) -> List[int]:
        """Reference-adjacent OIDs (both directions)."""
        return list(self._edges.get(oid, ()))


def _adjacent(store: MonetXML, refs: Optional[ReferenceIndex], oid: int):
    parent = store.parent_of(oid)
    if parent is not None:
        yield parent
    yield from store.children_of(oid)
    if refs is not None:
        yield from refs.neighbours(oid)


def _tree_only(refs: Optional[ReferenceIndex]) -> bool:
    """No reference edges ⇒ the graph operators equal the tree ones."""
    return refs is None or refs.edge_count == 0


def graph_shortest_path(
    store: MonetXML,
    oid1: int,
    oid2: int,
    refs: Optional[ReferenceIndex] = None,
    max_distance: Optional[int] = None,
    backend: "Optional[MeetBackend]" = None,
) -> Optional[List[int]]:
    """Shortest path over tree ∪ reference edges (BFS, cycle-safe).

    Returns the OID sequence from ``oid1`` to ``oid2`` inclusive, or
    ``None`` when no path exists within ``max_distance``.
    """
    if oid1 == oid2:
        return [oid1]
    if backend is not None and _tree_only(refs):
        if max_distance is not None and backend.distance(oid1, oid2) > max_distance:
            return None
        from .distance import shortest_path

        return shortest_path(store, oid1, oid2, backend=backend)
    parents: Dict[int, Optional[int]] = {oid1: None}
    frontier = deque([(oid1, 0)])
    while frontier:
        current, depth = frontier.popleft()
        if max_distance is not None and depth >= max_distance:
            continue
        for neighbour in _adjacent(store, refs, current):
            if neighbour in parents:
                continue
            parents[neighbour] = current
            if neighbour == oid2:
                path = [neighbour]
                back: Optional[int] = current
                while back is not None:
                    path.append(back)
                    back = parents[back]
                path.reverse()
                return path
            frontier.append((neighbour, depth + 1))
    return None


def graph_distance(
    store: MonetXML,
    oid1: int,
    oid2: int,
    refs: Optional[ReferenceIndex] = None,
    max_distance: Optional[int] = None,
    backend: "Optional[MeetBackend]" = None,
) -> Optional[int]:
    """Edge count of the shortest connecting path, or ``None``."""
    if backend is not None and _tree_only(refs):
        dist = backend.distance(oid1, oid2)
        return None if max_distance is not None and dist > max_distance else dist
    path = graph_shortest_path(store, oid1, oid2, refs, max_distance)
    return None if path is None else len(path) - 1


@dataclass(frozen=True, slots=True)
class GraphMeet:
    """The graph nearest concept: connecting path + its apex."""

    oid: int
    distance: int
    path: Tuple[int, ...]
    via_references: int

    @property
    def crosses_reference(self) -> bool:
        return self.via_references > 0


def graph_meet(
    store: MonetXML,
    oid1: int,
    oid2: int,
    refs: Optional[ReferenceIndex] = None,
    max_distance: Optional[int] = None,
    backend: "Optional[MeetBackend]" = None,
) -> Optional[GraphMeet]:
    """The nearest concept over the reference-augmented graph.

    The meet is the minimum-depth node of the shortest connecting
    path.  Without references (or when the tree route is shorter) this
    coincides with ``meet₂``; across a reference it is the shallowest
    concept on the crossing route.  Ties on depth resolve to the node
    closest to ``oid1`` (deterministic).
    """
    path = graph_shortest_path(store, oid1, oid2, refs, max_distance, backend)
    if path is None:
        return None
    apex = min(path, key=lambda oid: (store.depth_of(oid), path.index(oid)))
    via_references = 0
    for left, right in zip(path, path[1:]):
        if store.parent_of(left) != right and store.parent_of(right) != left:
            via_references += 1
    return GraphMeet(
        oid=apex,
        distance=len(path) - 1,
        path=tuple(path),
        via_references=via_references,
    )
