"""IR-flavoured ranking of nearest concepts (paper §4 outlook).

"We believe that it is worthwhile to apply … even more complicated
information retrieval techniques to improve the ranking of the answer
set."  This module adds the textbook ingredients on top of the join
count:

* **idf** term weighting from the full-text index's document
  frequencies — concepts found through *rare* terms outrank concepts
  found through ubiquitous ones;
* **tightness** — the §4 join count, turned into a [0, 1] decay so it
  can be combined;
* **locality** — the source-file distance heuristic (OID spread),
  likewise decayed.

Scores are *higher-is-better* (IR convention), in contrast to the
lower-is-better sort keys of :mod:`repro.core.ranking`; both orders
agree when idf weights are uniform, which the tests assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..fulltext.index import FullTextIndex
from .engine import NearestConcept

__all__ = ["IRWeights", "ScoredConcept", "IRRanker"]


@dataclass(frozen=True, slots=True)
class IRWeights:
    """Mixing weights of the three signals (defaults favour rarity)."""

    idf: float = 1.0
    tightness: float = 1.0
    locality: float = 0.25
    #: joins at which tightness has decayed to 1/2.
    half_joins: float = 6.0
    #: OID spread at which locality has decayed to 1/2.
    half_spread: float = 64.0


@dataclass(frozen=True, slots=True)
class ScoredConcept:
    """A nearest concept with its combined IR score (higher = better)."""

    concept: NearestConcept
    score: float
    idf_score: float
    tightness: float
    locality: float


class IRRanker:
    """Score and re-rank concepts using index statistics.

    Parameters
    ----------
    index:
        The full-text index whose document frequencies drive idf.
    weights:
        Signal mix; see :class:`IRWeights`.
    """

    def __init__(self, index: FullTextIndex, weights: Optional[IRWeights] = None):
        self.index = index
        self.weights = weights or IRWeights()

    # -- signals ---------------------------------------------------------
    def idf(self, term: str) -> float:
        """log-scaled inverse document frequency; 0 for unseen terms."""
        df = self.index.document_frequency(term)
        if df == 0:
            return 0.0
        n = max(self.index.indexed_associations, 1)
        return math.log(1.0 + n / df)

    def _idf_score(self, terms: Sequence[str]) -> float:
        if not terms:
            return 0.0
        return sum(self.idf(term) for term in terms) / len(terms)

    def _tightness(self, joins: int) -> float:
        return 1.0 / (1.0 + joins / self.weights.half_joins)

    def _locality(self, spread: int) -> float:
        return 1.0 / (1.0 + spread / self.weights.half_spread)

    # -- ranking -----------------------------------------------------------
    def score(self, concept: NearestConcept) -> ScoredConcept:
        idf_score = self._idf_score(concept.terms)
        tightness = self._tightness(concept.joins)
        locality = self._locality(concept.spread)
        weights = self.weights
        combined = (
            weights.idf * idf_score
            + weights.tightness * tightness
            + weights.locality * locality
        )
        return ScoredConcept(
            concept=concept,
            score=combined,
            idf_score=idf_score,
            tightness=tightness,
            locality=locality,
        )

    def rank(self, concepts: Iterable[NearestConcept]) -> List[ScoredConcept]:
        """Best first; ties broken by document order for determinism."""
        scored = [self.score(concept) for concept in concepts]
        scored.sort(key=lambda s: (-s.score, s.concept.oid))
        return scored
