"""Cross-bibliography lookup — the §4 application, packaged.

"Staying in the bibliography domain, we may want to know whether a
certain bibliographical item that we found in one bibliography also
lives in another bibliography; however, we have no idea how the
relevant information is marked up.  So a good approach is to combine
the meet operator with fulltext search similar to the introductory
example and use the results as a starting point for displaying and
browsing."

Workflow implemented here:

1. find the item in the *source* store with a nearest-concept query;
2. extract its most *distinctive* terms (rarest-first by the target
   store's document frequencies — unseen terms are useless probes and
   are skipped);
3. run a nearest-concept query with those probes on the *target*
   store, whatever its mark-up;
4. return ranked candidates with their term coverage, ready for
   "displaying and browsing".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..fulltext.tokenizer import tokenize
from ..monet.reassembly import object_text
from .engine import NearestConcept, NearestConceptEngine

__all__ = ["CrossMatch", "distinctive_terms", "find_elsewhere"]


@dataclass(frozen=True, slots=True)
class CrossMatch:
    """A candidate occurrence of the item in the target store."""

    concept: NearestConcept
    probes: Tuple[str, ...]
    matched_terms: Tuple[str, ...]

    @property
    def coverage(self) -> float:
        """Fraction of probe terms the candidate covers."""
        if not self.probes:
            return 0.0
        return len(self.matched_terms) / len(self.probes)


def distinctive_terms(
    source_engine: NearestConceptEngine,
    oid: int,
    target_engine: NearestConceptEngine,
    max_terms: int = 4,
    min_length: int = 2,
) -> List[str]:
    """The item's rarest terms *in the target store*, rarest first.

    Terms absent from the target are skipped (they cannot anchor a
    search); frequency ties resolve by first appearance in the item's
    text so the probe set is deterministic.
    """
    text = object_text(source_engine.store, oid)
    seen: Dict[str, int] = {}
    for position, token in enumerate(
        tokenize(text, target_engine.index.case_sensitive)
    ):
        if len(token) >= min_length and token not in seen:
            seen[token] = position
    candidates: List[Tuple[int, int, str]] = []
    for token, position in seen.items():
        frequency = target_engine.index.document_frequency(token)
        if frequency == 0:
            continue
        candidates.append((frequency, position, token))
    candidates.sort()
    return [token for _freq, _pos, token in candidates[:max_terms]]


def find_elsewhere(
    source_engine: NearestConceptEngine,
    item_oid: int,
    target_engine: NearestConceptEngine,
    max_terms: int = 4,
    limit: Optional[int] = 5,
    require_all_terms: bool = False,
) -> List[CrossMatch]:
    """Locate the source item's counterpart(s) in the target store.

    Returns ranked :class:`CrossMatch` candidates (possibly empty: the
    item may genuinely not live in the other bibliography, or share no
    vocabulary with it).
    """
    probes = distinctive_terms(
        source_engine, item_oid, target_engine, max_terms=max_terms
    )
    if len(probes) < 2:
        return []
    concepts = target_engine.nearest_concepts(
        *probes,
        exclude_root=True,
        require_all_terms=require_all_terms,
        limit=limit,
    )
    matches = [
        CrossMatch(
            concept=concept,
            probes=tuple(probes),
            matched_terms=concept.terms,
        )
        for concept in concepts
    ]
    matches.sort(key=lambda m: (-m.coverage, m.concept.sort_key()))
    return matches
