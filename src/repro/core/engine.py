"""The end-to-end nearest-concept query engine (the paper's headline).

``NearestConceptEngine`` wires the pipeline the paper demonstrates:

    full-text search per term  →  tagged inputs (term, OID)
    →  general meet roll-up (Fig. 5)  →  meet_X restriction (§4)
    →  join-count ranking (§4)

so that a user "familiar with the content but unaware of tags and
hierarchies" can write::

    engine = NearestConceptEngine(store)
    for concept in engine.nearest_concepts("Bit", "1999"):
        print(concept.path, concept.oid)

and get back the ``article`` node — the re-formulated intro query of
§3.2.  Inputs are tagged with their search term so that two terms
matching one association surface that node itself (the paper's
"Bob Byte" example).  ``require_all_terms=True`` keeps only concepts
covering every term — the conjunctive reading of the §5 case study
("publications containing *both* ICDE and the year"), which eliminates
the paper's "two false positives".

The engine also exposes the lower-level operators (pairwise, set-wise,
distance-bounded) under one roof.

Execution is delegated to a pluggable :class:`~repro.core.backends.MeetBackend`:
``backend="steered"`` (default) runs the paper's path-steered walks
with their join-count traces; ``backend="indexed"`` answers every meet
from a per-store Euler-RMQ index (built once, cached on the store's
generation) — the right choice for query volumes, and what the
batched entry points (:meth:`NearestConceptEngine.meet_many`,
:meth:`NearestConceptEngine.nearest_concepts_batch`) are designed
around.  Both backends return identical answer sets; ranking is
backend-independent because join counts are recomputed from depths.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from operator import itemgetter
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..datamodel.paths import Path
from ..fulltext.index import FullTextIndex, Hits
from ..fulltext.search import SearchEngine
from ..monet.engine import MonetXML
from ..monet.reassembly import object_text, reassemble_subtree
from .backends import BackendSpec, MeetBackend, resolve_backend
from .meet_general import GeneralMeet, TaggedMeet
from .meet_pair import PairMeet
from .meet_sets import SetMeet
from .restrictions import PathLike, resolve_pids
from .result_cache import (
    CacheSpec,
    ResultCache,
    ResultCacheInfo,
    resolve_result_cache,
)

__all__ = ["NearestConcept", "NearestConceptEngine"]

#: Key extractor for the (sort_key, result) ranking pairs.
_key_of = itemgetter(0)


@dataclass(frozen=True, slots=True)
class NearestConcept:
    """One ranked answer of a nearest-concept query."""

    oid: int
    path: Path
    origins: Tuple[int, ...]
    terms: Tuple[str, ...]
    joins: int
    spread: int
    depth: int

    @property
    def tag(self) -> str:
        """The result *type* the user did not have to specify."""
        return self.path.last.label if len(self.path) else ""

    def sort_key(self) -> Tuple[int, int, int, int]:
        """Lower-is-better ranking key (§4 heuristics)."""
        return (self.joins, self.spread, -self.depth, self.oid)


class NearestConceptEngine:
    """Schema-oblivious keyword querying over one Monet XML store."""

    def __init__(
        self,
        store: MonetXML,
        index: Optional[FullTextIndex] = None,
        case_sensitive: bool = False,
        thesaurus=None,
        broaden_below: int = 1,
        backend: BackendSpec = None,
        cache: CacheSpec = None,
    ):
        """``thesaurus`` (a :class:`repro.fulltext.thesaurus.Thesaurus`)
        enables the §4 broadening: terms whose plain search returns
        fewer than ``broaden_below`` hits are expanded with synonyms.

        ``backend`` selects the meet execution strategy: ``"steered"``
        (default), ``"indexed"``, or a ready
        :class:`~repro.core.backends.MeetBackend` instance.

        ``cache`` enables the serving-layer result cache: ``True``
        (default capacity), a capacity, or a shared
        :class:`~repro.core.result_cache.ResultCache`.  Keys embed the
        store generation, so invalidated stores never serve stale
        answers; see :meth:`cache_info` for hit/miss statistics.
        """
        self.store = store
        self.backend: MeetBackend = resolve_backend(store, backend)
        self.search = SearchEngine(store, index=index, case_sensitive=case_sensitive)
        self.result_cache: Optional[ResultCache] = resolve_result_cache(cache)
        self.thesaurus = thesaurus
        self._broadener = None
        if thesaurus is not None:
            from ..fulltext.thesaurus import BroadeningSearch

            self._broadener = BroadeningSearch(
                self.search, thesaurus, min_hits=broaden_below
            )

    @classmethod
    def from_snapshot(cls, snapshot, **options) -> "NearestConceptEngine":
        """An engine over a loaded snapshot bundle — warm from query one.

        ``snapshot`` is a :class:`repro.snapshot.codec.Snapshot`: its
        loader has already seeded the generation-keyed LCA and
        full-text caches, so this engine's first query performs zero
        index constructions.  Defaults follow the bundle (the
        ``vector`` backend when NumPy is importable, else ``indexed``
        — either way the seeded index is already paid for — and the
        bundled case mode); any keyword accepted by the constructor
        overrides.
        """
        from .backends import snapshot_default_backend

        options.setdefault("backend", snapshot_default_backend())
        options.setdefault(
            "case_sensitive", snapshot.fulltext_index.case_sensitive
        )
        return cls(snapshot.store, **options)

    @property
    def index(self) -> FullTextIndex:
        """The full-text index (shared per store, fresh per generation)."""
        return self.search.index

    def cache_info(self) -> Optional[ResultCacheInfo]:
        """Result-cache counters, or ``None`` when caching is off."""
        if self.result_cache is None:
            return None
        return self.result_cache.cache_info()

    # -- primitive operators --------------------------------------------
    def meet(self, oid1: int, oid2: int) -> PairMeet:
        """Pairwise meet with distance (Fig. 3)."""
        return self.backend.meet(oid1, oid2)

    def meet_within(self, oid1: int, oid2: int, k: int) -> Optional[PairMeet]:
        """Distance-bounded pairwise meet (§4); ``None`` beyond k."""
        return self.backend.meet_within(oid1, oid2, k)

    def meet_many(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> List[PairMeet]:
        """Batched pairwise meets — one backend, many pairs.

        On the indexed backend the Euler-RMQ index is built (or
        fetched from cache) once and every pair is answered in O(1);
        the steered backend degrades gracefully to a loop of Fig. 3
        walks.
        """
        return self.backend.meet_many(pairs)

    def meet_of_sets(
        self, left: Iterable[int], right: Iterable[int]
    ) -> List[SetMeet]:
        """Set-wise minimal meets of two homogeneous OID sets (Fig. 4)."""
        return self.backend.meet_sets(left, right)

    def meet_of_relations(
        self, relations: Dict[int, List[int]]
    ) -> List[GeneralMeet]:
        """General n-ary meet over typed relations (Fig. 5)."""
        return self.backend.meet_general(relations)

    # -- the full pipeline -----------------------------------------------
    def term_hits(self, term: str) -> Hits:
        """Full-text hits of one term (token or substring semantics).

        With a thesaurus configured, scarce hits are broadened by
        synonyms; the hits still carry the user's term downstream.
        """
        if self._broadener is not None:
            hits, _used = self._broadener.find(term)
            return hits
        return self.search.find(term)

    def nearest_concepts(
        self,
        *terms: str,
        exclude_paths: Iterable[PathLike] = (),
        exclude_root: bool = False,
        require_all_terms: bool = False,
        within: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[NearestConcept]:
        """Rank the nearest concepts relating the given terms.

        Parameters
        ----------
        terms:
            Two or more search strings (one full-text search each).
        exclude_paths:
            ``meet_X`` exclusion set (paths, strings or pids), §4.
        exclude_root:
            Shortcut adding the document-root path to the exclusion
            set — the configuration of the §5 case study.
        require_all_terms:
            Keep only concepts whose origins cover every term
            (conjunctive extension; off = faithful Fig. 5 behaviour,
            including its occasional same-term false positives).
        within:
            Keep only concepts whose total join count is ≤ ``within``
            (the §4 k-restriction generalized to sets).
        limit:
            Truncate the ranked list.
        """
        if len(terms) < 2:
            raise ValueError("nearest_concepts needs at least two terms")
        excluded: Set[int] = resolve_pids(self.store, exclude_paths)
        if exclude_root:
            excluded.add(self.store.pid_of(self.store.root_oid))

        cache = self.result_cache
        key = None
        if cache is not None:
            # Normalized query: term order and duplicates provably do
            # not change the answer (inputs are tagged sets and the
            # ranking key is term-independent), so they normalize away.
            # Spelling/case stay verbatim — result tags carry them.
            # The engine configuration that changes answers (case mode,
            # thesaurus broadening) is part of the key, so one cache
            # can safely be shared across differently tuned engines;
            # keying the thesaurus *object* keeps it alive alongside
            # its entries (identity is its only equality).
            cache.sync_generation(self.store.generation)
            key = (
                self.store.generation,
                self.search.case_sensitive,
                self.thesaurus,
                None if self._broadener is None else self._broadener.min_hits,
                tuple(sorted(set(terms))),
                frozenset(excluded),
                require_all_terms,
                within,
                limit,
            )
            cached = cache.get(key)
            if cached is not None:
                return list(cached)

        batched = getattr(self.backend, "meet_term_hits", None)
        if batched is not None:
            # Vector fast path: hand each term's cached distinct-OID
            # column to the backend whole — no python pair list.
            # Duplicate terms dedupe here exactly as duplicate
            # (term, OID) pairs dedupe inside meet_tagged.
            results = batched(
                (term, self.term_hits(term))
                for term in dict.fromkeys(terms)
            )
        else:
            tagged: List[Tuple[str, int]] = []
            for term in terms:
                for oid in self.term_hits(term).oids():
                    tagged.append((term, oid))
            results = self.backend.meet_tagged(tagged)
        # A TaggedBatch arrives with the §4 sort keys already computed
        # array-wise; filters below keep the two sequences aligned.
        keys = getattr(results, "rank_keys", None)
        if excluded:
            pid_of = self.store.pid_of
            if keys is not None:
                kept = [
                    i for i, key in enumerate(keys)
                    if pid_of(key[3]) not in excluded  # key[3] == oid
                ]
                results = [results[i] for i in kept]
                keys = [keys[i] for i in kept]
            else:
                results = [
                    r for r in results if pid_of(r.oid) not in excluded
                ]
        if require_all_terms:
            wanted = set(terms)
            if keys is not None:
                kept = [
                    i for i, r in enumerate(results)
                    if set(r.tags) >= wanted
                ]
                results = [results[i] for i in kept]
                keys = [keys[i] for i in kept]
            else:
                results = [r for r in results if set(r.tags) >= wanted]

        if limit is not None and len(results) > limit:
            # Serving fast path: rank on the cheap key ingredients and
            # fully annotate (paths, sorted term tuples) only the top-k.
            # sort_key is a strict total order (the OID tiebreak), so
            # the selection equals sort-then-truncate exactly.
            if keys is not None:
                candidates: Iterable[int] = range(len(results))
                if within is not None:
                    candidates = [
                        i for i in candidates if keys[i][0] <= within
                    ]
                top = heapq.nsmallest(limit, candidates,
                                      key=keys.__getitem__)
                concepts = [self._annotate(results[i]) for i in top]
            else:
                keyed = self._rank_keys(results)
                if within is not None:
                    keyed = [(k, r) for k, r in keyed if k[0] <= within]
                winners = heapq.nsmallest(limit, keyed, key=_key_of)
                concepts = [self._annotate(result) for _, result in winners]
        else:
            concepts = [self._annotate(result) for result in results]
            concepts.sort(key=NearestConcept.sort_key)
            if within is not None:
                concepts = [c for c in concepts if c.joins <= within]
            if limit is not None:
                concepts = concepts[:limit]
        if cache is not None:
            cache.put(key, tuple(concepts))
        return concepts

    def _rank_keys(
        self, results: List[TaggedMeet]
    ) -> List[Tuple[Tuple[int, int, int, int], TaggedMeet]]:
        """(sort_key, result) pairs computed without full annotation."""
        pid_of = self.store.pid_of
        depth_of_pid = self.store.summary.depth
        spread_of = self.store.live_distance
        keyed = []
        for result in results:
            origins = result.origins
            meet_depth = depth_of_pid(pid_of(result.oid))
            joins = -meet_depth * len(origins)
            for oid in origins:
                joins += depth_of_pid(pid_of(oid))
            keyed.append(
                (
                    (
                        joins,
                        spread_of(min(origins), max(origins)),
                        -meet_depth,
                        result.oid,
                    ),
                    result,
                )
            )
        return keyed

    def nearest_concepts_batch(
        self,
        queries: Iterable[Sequence[str]],
        **options,
    ) -> List[List[NearestConcept]]:
        """Evaluate many term-tuples against one store and one backend.

        ``options`` are forwarded to :meth:`nearest_concepts`.  The
        point of the batched entry is amortization: the full-text
        index, the search engine and (on the indexed backend) the
        Euler-RMQ LCA index are all built once and shared by every
        query, so evaluating thousands of hit-pair roll-ups costs one
        preprocessing pass instead of thousands of parent re-walks.
        """
        return [self.nearest_concepts(*terms, **options) for terms in queries]

    def _annotate(self, result: TaggedMeet) -> NearestConcept:
        origins = tuple(sorted(result.origins))
        meet_depth = self.store.depth_of(result.oid)
        joins = sum(self.store.depth_of(oid) - meet_depth for oid in origins)
        return NearestConcept(
            oid=result.oid,
            path=self.store.path_of(result.oid),
            origins=origins,
            terms=tuple(sorted(str(tag) for tag in result.tags)),
            joins=joins,
            # Spread counts *live* nodes between the outermost origins,
            # so ranking is identical before and after deletes open
            # tombstone gaps in the OID space (== plain OID distance on
            # an unmutated store).
            spread=self.store.live_distance(origins[0], origins[-1]),
            depth=meet_depth,
        )

    # -- presentation helpers ---------------------------------------------
    def snippet(self, concept: Union[NearestConcept, int], width: int = 120) -> str:
        """Character data under a concept, truncated — for display."""
        oid = concept.oid if isinstance(concept, NearestConcept) else concept
        text = object_text(self.store, oid)
        return text if len(text) <= width else text[: width - 1] + "…"

    def to_xml(self, concept: Union[NearestConcept, int], indent: int = 2) -> str:
        """Serialize the concept's subtree — "displaying and browsing"."""
        from ..datamodel.serializer import serialize_node

        oid = concept.oid if isinstance(concept, NearestConcept) else concept
        return serialize_node(reassemble_subtree(self.store, oid), indent=indent)
