"""``meet_S`` — set-at-a-time meet of two OID sets (paper Fig. 4).

Inputs are two *homogeneous* sets O₁, O₂ (all members of one set share
a single path — e.g. all the ``year/cdata`` hits of one full-text
search).  The procedure keeps, per side, a binary relation

    (current ancestor OID, original input OID)

initialized with the identity.  Each round it:

1. intersects the two current-ancestor columns — every match is a
   *minimal* meet: it is emitted together with the original inputs it
   covers and **removed** from both relations ("as soon as the first
   meet … is found, subsequent meets are not considered anymore"),
   which is the paper's defence against the combinatorial explosion
   and what makes the operator invariant of input order;
2. steers by the ⪯ prefix order on the (single) path of each side —
   only the deeper side performs the set-wise ``parent`` join
   (``shift(O₁, O₂) = join(O₁, O₂)`` projecting out the inner
   columns, per §3.2), or both sides in lock-step for equal paths.

The loop ends when either side runs empty or both have left the root.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

from ..datamodel.errors import ModelError
from ..monet.engine import MonetXML

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .backends import MeetBackend

__all__ = ["SetMeet", "meet_sets", "meet_sets_traced", "SetMeetTrace"]


@dataclass(frozen=True, slots=True)
class SetMeet:
    """One emitted meet: the ancestor and the inputs it is the LCA of."""

    oid: int
    left_origins: Tuple[int, ...]
    right_origins: Tuple[int, ...]

    @property
    def origins(self) -> Tuple[int, ...]:
        return tuple(sorted(set(self.left_origins) | set(self.right_origins)))


@dataclass(slots=True)
class SetMeetTrace:
    """Execution statistics of one ``meet_S`` run."""

    meets: List[SetMeet]
    rounds: int = 0
    parent_joins: int = 0
    intersections: int = 0


def _common_pid(store: MonetXML, oids: Iterable[int], side: str) -> Optional[int]:
    """The single pid shared by all OIDs; raises if the set is mixed."""
    pid: Optional[int] = None
    for oid in oids:
        current = store.pid_of(oid)
        if pid is None:
            pid = current
        elif pid != current:
            raise ModelError(
                f"meet_S requires a homogeneous {side} input set: "
                f"{store.summary.path(pid)} vs {store.summary.path(current)}"
            )
    return pid


def _ascend(
    store: MonetXML, pairs: Dict[int, Set[int]]
) -> Dict[int, Set[int]]:
    """The set-wise parent join: re-key every entry by its parent OID."""
    lifted: Dict[int, Set[int]] = {}
    for current, origins in pairs.items():
        parent = store.parent_of(current)
        if parent is None:
            continue  # fell off the root; the entry cannot meet anything
        lifted.setdefault(parent, set()).update(origins)
    return lifted


def meet_sets_traced(
    store: MonetXML, left: Iterable[int], right: Iterable[int]
) -> SetMeetTrace:
    """Fig. 4 with execution statistics; see module docstring."""
    left_pairs: Dict[int, Set[int]] = {}
    for oid in left:
        left_pairs.setdefault(oid, set()).add(oid)
    right_pairs: Dict[int, Set[int]] = {}
    for oid in right:
        right_pairs.setdefault(oid, set()).add(oid)

    pid1 = _common_pid(store, left_pairs, "left")
    pid2 = _common_pid(store, right_pairs, "right")
    trace = SetMeetTrace(meets=[])
    if pid1 is None or pid2 is None:
        return trace

    summary = store.summary
    while left_pairs and right_pairs:
        trace.rounds += 1
        # 1. Emit and remove every current match (minimal meets).
        trace.intersections += 1
        matches = left_pairs.keys() & right_pairs.keys()
        if matches:
            for oid in sorted(matches):
                trace.meets.append(
                    SetMeet(
                        oid=oid,
                        left_origins=tuple(sorted(left_pairs.pop(oid))),
                        right_origins=tuple(sorted(right_pairs.pop(oid))),
                    )
                )
            if not left_pairs or not right_pairs:
                break

        # 2. Steer by the prefix order of the two (homogeneous) paths.
        depth1, depth2 = summary.depth(pid1), summary.depth(pid2)
        ascend_left = depth1 >= depth2
        ascend_right = depth2 >= depth1
        if summary.prefix_leq(pid1, pid2) and pid1 != pid2:
            ascend_left, ascend_right = True, False
        elif summary.prefix_leq(pid2, pid1) and pid1 != pid2:
            ascend_left, ascend_right = False, True
        if ascend_left:
            if depth1 <= 1:
                break  # already at the root; nothing above to meet at
            left_pairs = _ascend(store, left_pairs)
            pid1 = summary.parent(pid1)
            trace.parent_joins += 1
        if ascend_right:
            if depth2 <= 1:
                break
            right_pairs = _ascend(store, right_pairs)
            pid2 = summary.parent(pid2)
            trace.parent_joins += 1
    return trace


def meet_sets(
    store: MonetXML,
    left: Iterable[int],
    right: Iterable[int],
    backend: "Optional[MeetBackend]" = None,
) -> List[SetMeet]:
    """All minimal meets between two homogeneous OID sets (Fig. 4).

    ``backend=`` selects the execution strategy (default: the Fig. 4
    relational loop above; the indexed backend answers from an
    auxiliary tree with the identical meet set).
    """
    if backend is not None:
        return backend.meet_sets(left, right)
    return meet_sets_traced(store, left, right).meets
