"""``meet`` — the general n-ary meet over typed relations (paper Fig. 5).

The most general algorithm takes an arbitrary set of nodes grouped
into relations R₁ … Rₙ by association type (path) — in practice the
grouped result of one or more full-text searches — and returns every
node that is the lowest common ancestor of **at least two** distinct
input nodes (the paper's §3.2 extension of Def. 6).

Instead of comparing paths pairwise (which "would become dependent on
the input order"), the algorithm *rolls up the tree-shaped schema from
the bottom*: it repeatedly contracts a path-summary node whose pending
children have all been processed, mapping the pending OID relations to
their parents.  Every ancestor OID that accumulates ≥ 2 distinct
original inputs is a meet — **minimal by construction** — and is
emitted and dropped, "thus avoiding a combinatorial explosion of the
result set and dependence on the input order".

Three entry points:

* :func:`meet_general` — schema-driven roll-up, faithful to Fig. 5
  (post-order over the path summary); inputs are OID sets.
* :func:`meet_depthwise` — depth-synchronous roll-up exploiting
  ``len(π(o)) == depth(o)``; simpler, property-tested equivalent.
* :func:`meet_tagged` — the same roll-up over *tagged* inputs
  (token, OID): a node is a meet when it covers two distinct tokens,
  even if they name the same OID.  This realizes the paper's
  "Bob"/"Byte" example (two search terms hitting one association make
  that association's node the nearest concept) at set scale, and is
  what the :class:`~repro.core.engine.NearestConceptEngine` pipeline
  uses with (term, OID) tokens.

All public entry points accept ``backend=`` (see
:mod:`repro.core.backends`): the default runs the schema roll-up
below; :class:`~repro.core.backends.IndexedBackend` emits the same
meet set from an auxiliary tree over the inputs in O(m log m),
independent of instance depth and path-summary size.  Emission order
may differ between backends (schema post-order vs reverse pre-order);
consumers that rank — :mod:`repro.core.ranking`, the engine — are
order-insensitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..monet.engine import MonetXML

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .backends import MeetBackend

__all__ = [
    "GeneralMeet",
    "TaggedMeet",
    "meet_general",
    "meet_depthwise",
    "meet_tagged",
    "group_by_pid",
]

Token = Hashable


@dataclass(frozen=True, slots=True)
class GeneralMeet:
    """A meet node together with the original input OIDs it covers."""

    oid: int
    origins: FrozenSet[int]


@dataclass(frozen=True, slots=True)
class TaggedMeet:
    """A meet over tagged inputs: which (token, OID) pairs it covers."""

    oid: int
    tokens: FrozenSet[Tuple[Token, int]]

    @property
    def origins(self) -> FrozenSet[int]:
        return frozenset(oid for _, oid in self.tokens)

    @property
    def tags(self) -> FrozenSet[Token]:
        return frozenset(token for token, _ in self.tokens)


def group_by_pid(store: MonetXML, oids: Iterable[int]) -> Dict[int, List[int]]:
    """Group a flat OID set into the typed relations Fig. 5 expects.

    Full-text hits arrive per association (attribute path); they are
    re-keyed here by the *node's own* path pid.
    """
    grouped: Dict[int, List[int]] = {}
    for oid in oids:
        grouped.setdefault(store.pid_of(oid), []).append(oid)
    return grouped


# ---------------------------------------------------------------------------
# The roll-up core, shared by all three public variants.
# ---------------------------------------------------------------------------

def _roll_up_schema(
    store: MonetXML, tagged: Iterable[Tuple[Token, int]]
) -> List[Tuple[int, FrozenSet[Tuple[Token, int]]]]:
    """Schema-driven bottom-up contraction (Fig. 5).

    ``tagged`` yields (token, OID) pairs; a current ancestor holding
    ≥ 2 distinct (token, OID) pairs is emitted as a meet and removed.
    Returns (meet OID, covered pairs) in schema post-order.
    """
    summary = store.summary
    # pending[pid][current ancestor OID] = accumulated origin tokens
    pending: Dict[int, Dict[int, Set[Tuple[Token, int]]]] = {}
    for token, oid in tagged:
        bucket = pending.setdefault(store.pid_of(oid), {})
        bucket.setdefault(oid, set()).add((token, oid))

    meets: List[Tuple[int, FrozenSet[Tuple[Token, int]]]] = []
    for pid in summary.postorder():
        entries = pending.get(pid)
        if not entries:
            continue
        # Emit every current OID covering >= 2 tokens; drop it.
        for oid in sorted(entries):
            tokens = entries[oid]
            if len(tokens) >= 2:
                meets.append((oid, frozenset(tokens)))
                del entries[oid]
        parent_pid = summary.parent(pid)
        if parent_pid == 0:
            del pending[pid]  # survivors at a root path die out
            continue
        target = pending.setdefault(parent_pid, {})
        for current, tokens in entries.items():
            parent = store.parent_of(current)
            if parent is None:
                continue
            target.setdefault(parent, set()).update(tokens)
        del pending[pid]
    return meets


def _roll_up_depthwise(
    store: MonetXML, tagged: Iterable[Tuple[Token, int]]
) -> List[Tuple[int, FrozenSet[Tuple[Token, int]]]]:
    """Depth-synchronous contraction; emits the same meets as above."""
    by_depth: Dict[int, Dict[int, Set[Tuple[Token, int]]]] = {}
    for token, oid in tagged:
        level = by_depth.setdefault(store.depth_of(oid), {})
        level.setdefault(oid, set()).add((token, oid))

    meets: List[Tuple[int, FrozenSet[Tuple[Token, int]]]] = []
    if not by_depth:
        return meets
    for depth in range(max(by_depth), 0, -1):
        entries = by_depth.get(depth)
        if not entries:
            continue
        for oid in sorted(entries):
            tokens = entries[oid]
            if len(tokens) >= 2:
                meets.append((oid, frozenset(tokens)))
                del entries[oid]
        if depth == 1:
            break
        target = by_depth.setdefault(depth - 1, {})
        for current, tokens in entries.items():
            parent = store.parent_of(current)
            if parent is None:
                continue
            target.setdefault(parent, set()).update(tokens)
    return meets


# ---------------------------------------------------------------------------
# Public variants.
# ---------------------------------------------------------------------------

def _as_oid_tokens(
    relations: Mapping[Hashable, Iterable[int]]
) -> Iterable[Tuple[Token, int]]:
    """Fig. 5 inputs: the OID is its own origin token (set semantics)."""
    for oids in relations.values():
        for oid in oids:
            yield (oid, oid)


def meet_general(
    store: MonetXML,
    relations: Mapping[Hashable, Iterable[int]],
    backend: "Optional[MeetBackend]" = None,
) -> List[GeneralMeet]:
    """Fig. 5: schema-driven bottom-up roll-up; see module docstring.

    ``relations`` maps a relation key (normally a pid, as produced by
    :meth:`repro.fulltext.index.Hits.by_pid` or :func:`group_by_pid`)
    to the OIDs of that type.  Duplicate OIDs collapse: inputs form a
    set, exactly as in the paper.  Results are emitted in schema
    post-order (per-branch deepest first); use
    :mod:`repro.core.ranking` for a global ranking.
    """
    if backend is not None:
        return backend.meet_general(relations)
    return [
        GeneralMeet(oid=oid, origins=frozenset(o for _, o in tokens))
        for oid, tokens in _roll_up_schema(store, _as_oid_tokens(relations))
    ]


def meet_depthwise(
    store: MonetXML, relations: Mapping[Hashable, Iterable[int]]
) -> List[GeneralMeet]:
    """Depth-synchronous variant: contract one instance level at a time.

    Because ``len(π(o)) == depth(o)``, grouping pending entries by
    depth instead of by schema node performs the same contractions in a
    coarser order; OIDs on different paths can never collide, so the
    emitted meets are identical to :func:`meet_general`.
    """
    return [
        GeneralMeet(oid=oid, origins=frozenset(o for _, o in tokens))
        for oid, tokens in _roll_up_depthwise(store, _as_oid_tokens(relations))
    ]


def meet_tagged(
    store: MonetXML,
    tagged: Iterable[Tuple[Token, int]],
    backend: "Optional[MeetBackend]" = None,
) -> List[TaggedMeet]:
    """Roll-up over (token, OID) pairs; meets cover ≥ 2 distinct tokens.

    With tokens = search terms, a node whose single association matches
    two different terms is itself emitted (paper §3.1, "Bob Byte").
    """
    if backend is not None:
        return backend.meet_tagged(tagged)
    return [
        TaggedMeet(oid=oid, tokens=tokens)
        for oid, tokens in _roll_up_schema(store, tagged)
    ]
