"""Vectorized postings set algebra for the full-text index (NumPy tier).

Postings are parallel (pid, oid) ``array('q')`` columns.  The python
implementations of conjunctive / disjunctive search materialize python
tuple sets per term; here the same operations run over a combined
``pid * stride + oid`` key column (the stride exceeds every OID, so
key order *is* lexicographic (pid, oid) order and the decode is exact):

* :func:`intersect_columns` — sorted-array intersection
  (``np.intersect1d`` over per-term unique keys), emitting (pid, oid)
  ascending exactly like ``sorted(set & set & ...)``;
* :func:`union_columns` — first-seen-order deduplicating union
  (``np.unique(..., return_index=True)`` then an index sort), matching
  the python loop's insertion order;
* :func:`group_boundaries` — pid group starts over a sorted pid
  column via ``searchsorted``/``diff``, for by-pid regrouping.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .lca import _as_int64

__all__ = ["intersect_columns", "union_columns", "group_boundaries"]

_INT64 = np.int64

_EMPTY = np.empty(0, dtype=_INT64)


def _stride(columns: Sequence[Tuple[np.ndarray, np.ndarray]]) -> int:
    """A combined-key stride exceeding every OID in the columns."""
    highest = 0
    for _, oids in columns:
        if len(oids):
            highest = max(highest, int(oids.max()))
    return highest + 1


def _as_column_pairs(
    columns,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    return [(_as_int64(pids), _as_int64(oids)) for pids, oids in columns]


def intersect_columns(columns) -> Tuple[np.ndarray, np.ndarray]:
    """(pid, oid) pairs present in *every* column, ascending.

    ``columns`` is an iterable of (pid column, oid column) pairs, one
    per term.  Equivalent to intersecting python tuple-sets and
    sorting, without materializing a tuple per posting.
    """
    pairs = _as_column_pairs(columns)
    if not pairs:
        return _EMPTY, _EMPTY
    stride = _stride(pairs)
    keys = np.unique(pairs[0][0] * stride + pairs[0][1])
    for pids, oids in pairs[1:]:
        if not len(keys):
            break
        keys = np.intersect1d(
            keys, np.unique(pids * stride + oids), assume_unique=True
        )
    return keys // stride, keys % stride


def union_columns(columns) -> Tuple[np.ndarray, np.ndarray]:
    """(pid, oid) pairs of any column, deduplicated, first-seen order.

    Matches the python merge loop exactly: a posting appears at the
    position of its first occurrence across the concatenated columns.
    """
    pairs = _as_column_pairs(columns)
    pairs = [(pids, oids) for pids, oids in pairs if len(oids)]
    if not pairs:
        return _EMPTY, _EMPTY
    stride = _stride(pairs)
    all_pids = np.concatenate([pids for pids, _ in pairs])
    all_oids = np.concatenate([oids for _, oids in pairs])
    _, first_seen = np.unique(all_pids * stride + all_oids, return_index=True)
    order = np.sort(first_seen)
    return all_pids[order], all_oids[order]


def group_boundaries(sorted_pids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(distinct pids, group start offsets) of a sorted pid column."""
    pids = _as_int64(sorted_pids)
    if not len(pids):
        return _EMPTY, _EMPTY
    starts = np.concatenate(([0], np.nonzero(np.diff(pids))[0] + 1))
    return pids[starts], starts
