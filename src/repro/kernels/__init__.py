"""Optional vectorized batch kernels over the engine's flat columns.

The paper's pitch is columnar execution over Monet BATs, yet the hot
serving path is pure-python loops over ``array('q')`` columns.  This
package supplies the batch half of that bargain: NumPy kernels that
view the *existing* generation-keyed columns through the buffer
protocol (``np.frombuffer`` — zero copies over ``array('q')`` columns
and mmap'd snapshot sections) and replace the per-element python loops
with whole-array passes:

* :mod:`repro.kernels.lca` — batched Euler-RMQ LCA (``lca_many``) and
  a fully vectorized auxiliary-tree construction;
* :mod:`repro.kernels.rollup` — the Fig. 4/5 roll-ups as level-wise
  array passes over the auxiliary tree;
* :mod:`repro.kernels.postings` — sorted-array postings intersection /
  union / grouping for the full-text index;
* :mod:`repro.kernels.native` — a build stub for a cffi/Cython tier
  behind the same seam (not compiled by default).

NumPy is an *optional* extra (``pip install repro-meet[native]``).
Nothing in this package's import requires it: :func:`available` probes
for it once, every consumer checks the probe before importing a kernel
module, and an import failure silently degrades to the pure-python
implementations.  Setting ``REPRO_KERNELS=python`` in the environment
forces the pure-python tier even when NumPy is importable — the knob
the no-numpy CI leg and A/B benchmarks use.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = [
    "available",
    "tier",
    "active_tier",
    "numpy",
    "KernelUnavailable",
    "KERNEL_TIERS",
]

#: The kernel tiers a process can run in.  ``native`` is reserved for
#: the compiled (cffi/Cython) tier stubbed in :mod:`.native`.
KERNEL_TIERS = ("python", "vector", "native")

#: Environment values of ``REPRO_KERNELS`` that force pure python.
_FORCE_PYTHON = {"python", "off", "0", "disabled"}

_probe: Optional[bool] = None
_numpy = None


class KernelUnavailable(RuntimeError):
    """Raised when a kernel module is used without NumPy available."""


def _forced_off() -> bool:
    return os.environ.get("REPRO_KERNELS", "").strip().lower() in _FORCE_PYTHON


def available() -> bool:
    """Whether the vectorized kernel tier can run in this process.

    True when NumPy is importable and ``REPRO_KERNELS`` does not force
    the pure-python tier.  The import probe runs at most once; the
    environment override is consulted on every call so tests can flip
    tiers without reloading modules.
    """
    global _probe, _numpy
    if _forced_off():
        return False
    if _probe is None:
        try:
            import numpy
        except Exception:  # pragma: no cover - exercised on no-numpy CI
            _probe = False
        else:
            _numpy = numpy
            _probe = True
    return _probe


def numpy():
    """The probed NumPy module, or :class:`KernelUnavailable`."""
    if not available():
        raise KernelUnavailable(
            "NumPy is not importable (or REPRO_KERNELS forces the "
            "python tier); install the 'native' extra to enable the "
            "vectorized kernels"
        )
    return _numpy


def tier() -> str:
    """The kernel tier this process runs: ``"vector"`` or ``"python"``."""
    return "vector" if available() else "python"


def active_tier(backend_name: Optional[str]) -> str:
    """The tier a collection actually serves with.

    A collection runs vectorized only when its resolved backend is the
    vector one *and* the kernels are importable; every other backend —
    including a ``vector`` request that silently degraded — serves
    from the pure-python tier.
    """
    return "vector" if backend_name == "vector" and available() else "python"
