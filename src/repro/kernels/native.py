"""Build stub for a compiled (cffi/Cython) kernel tier.

The vector tier already removes the per-element python loops; the next
rung — a compiled RMQ/roll-up core — slots in behind the *same* seam:
:func:`load` returns a module exposing the :class:`LcaKernels` batch
surface (``lca_many``, ``rmq_positions``, ``auxiliary_tree``) or
``None``, and :mod:`repro.core.backends` would prefer it over the
NumPy implementations exactly like NumPy is preferred over python.

Nothing here compiles by default: the repository ships no C sources
and the container may lack a toolchain, so :func:`load` only probes
for a previously built extension module (``repro._native_kernels``)
and reports its absence quietly.  :func:`build` documents the cffi
route for environments that do carry a compiler.
"""

from __future__ import annotations

import importlib
from typing import Optional

__all__ = ["load", "build"]

#: Import name a compiled extension must register under to be picked up.
EXTENSION_MODULE = "repro._native_kernels"

_probe = False
_module = None


def load() -> Optional[object]:
    """The compiled kernel module, or ``None`` when not built.

    The probe runs once per process; absence is the expected state and
    is never an error (the vector tier covers the gap).
    """
    global _probe, _module
    if not _probe:
        _probe = True
        try:
            _module = importlib.import_module(EXTENSION_MODULE)
        except ImportError:
            _module = None
    return _module


def build() -> None:  # pragma: no cover - requires a C toolchain
    """Compile the native kernels with cffi (opt-in, never automatic).

    Sketch of the contract a build must satisfy: an extension module
    named :data:`EXTENSION_MODULE` exporting ``lca_many(tour, depth,
    first, log, table, oids_a, oids_b) -> (meets, distances)`` over
    int64 buffers, mirroring :class:`repro.kernels.lca.LcaKernels`.
    Until sources ship, this raises to make the stub's status explicit.
    """
    raise NotImplementedError(
        "the native kernel tier is a build seam, not yet an implementation; "
        "the vector (NumPy) tier is the fastest shipped path"
    )
