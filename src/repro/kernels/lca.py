"""Batched Euler-RMQ LCA and auxiliary-tree kernels (NumPy tier).

This module is only imported once :func:`repro.kernels.available` has
confirmed NumPy; it binds zero-copy ``int64`` views over an
:class:`~repro.core.lca_index.LcaIndex`'s flat columns (the Euler
tour, its depths, the dense first/last columns and the sparse-table
rows) and answers *batches* of LCA/distance queries and whole
auxiliary-tree constructions without a python-level loop per element.

Two vectorization facts carry the module:

* the sparse-table RMQ groups naturally by the block exponent ``k``:
  a batch of (low, high) ranges decomposes into at most ``log₂ tour``
  groups, each answered by two fancy-indexed row gathers and one
  elementwise depth compare;
* for a candidate set closed under pairwise LCA and sorted in
  pre-order, the auxiliary-tree parent of ``c_i`` is exactly
  ``lca(c_{i-1}, c_i)`` — so the stack walk of
  :meth:`LcaIndex.auxiliary_tree_arrays` becomes one more batched RMQ
  plus a ``searchsorted`` to turn parent OIDs into positions.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from ..datamodel.errors import UnknownOIDError

__all__ = ["LcaKernels", "get_kernels", "sorted_unique", "tree_depths"]

_INT64 = np.int64


def sorted_unique(values: np.ndarray) -> np.ndarray:
    """``np.unique`` by sort + neighbour compare.

    For the small-to-medium int64 batches the kernels see, sorting
    beats NumPy's hash-table unique kernel by several times — and the
    callers all want the sorted order anyway.
    """
    values = np.sort(values)
    if len(values) < 2:
        return values
    keep = np.empty(len(values), dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


def _as_int64(column) -> np.ndarray:
    """A zero-copy ``int64`` view of a flat column where possible.

    ``array('q')`` columns and mmap'd snapshot memoryviews go through
    the buffer protocol; python lists (freshly built indexes) and
    ``range`` (sparse-table row 0) fall back to a one-time copy.
    """
    if isinstance(column, np.ndarray):
        return column if column.dtype == _INT64 else column.astype(_INT64)
    try:
        return np.frombuffer(column, dtype=_INT64)
    except (TypeError, ValueError, BufferError):
        return np.asarray(column, dtype=_INT64)


def tree_depths(parent_index: np.ndarray) -> np.ndarray:
    """Depth of every node given parent *positions* (−1 at roots).

    Pointer doubling: roots self-loop contributing zero, so after
    O(log depth) rounds of ``depth += depth[jump]; jump = jump[jump]``
    every chain has collapsed.  Whole-array gathers only — no
    sequential python walk.
    """
    size = len(parent_index)
    depth = (parent_index >= 0).astype(_INT64)
    jump = np.where(parent_index >= 0, parent_index, np.arange(size))
    while True:
        advanced = depth + depth[jump]
        if np.array_equal(advanced, depth):
            return depth
        depth = advanced
        jump = jump[jump]


class LcaKernels:
    """Vector views + batch kernels bound to one :class:`LcaIndex`.

    Instances are cached per index (:func:`get_kernels`), and indexes
    are themselves generation-cached per store, so the view binding —
    and the one-time densification of a freshly built index's
    first/last dicts — amortizes over every query of a generation.
    """

    __slots__ = (
        "index",
        "base",
        "tour",
        "depth",
        "first",
        "last",
        "log",
        "table",
    )

    def __init__(self, index):
        columns = index.kernel_columns()
        self.index = index
        self.base = int(columns["base"])
        self.tour = _as_int64(columns["tour"])
        self.depth = _as_int64(columns["depth"])
        self.first = _as_int64(columns["first"])
        self.last = _as_int64(columns["last"])
        self.log = _as_int64(columns["log"])
        # The sparse-table rows consolidated into one (log, tour)
        # matrix (row k right-padded; the pad is never gathered), so a
        # whole RMQ batch is two 2-D fancy indexes with no python loop
        # over exponents.
        rows = [_as_int64(row) for row in columns["table"]]
        width = len(rows[0]) if rows else 0
        table = np.zeros((max(len(rows), 1), width), dtype=_INT64)
        for exponent, row in enumerate(rows):
            table[exponent, : len(row)] = row
        self.table = table

    # -- primitives ------------------------------------------------------
    def first_positions(self, oids: np.ndarray) -> np.ndarray:
        """First Euler positions of a batch of OIDs, validated.

        Out-of-span OIDs and tombstoned OIDs (``-1`` in the dense
        first column) raise :class:`UnknownOIDError` naming the first
        offender, matching the scalar kernels' contract.
        """
        oids = np.asarray(oids, dtype=_INT64)
        slots = oids - self.base
        bad = (slots < 0) | (slots >= len(self.first))
        if bad.any():
            raise UnknownOIDError(int(oids[int(bad.argmax())]))
        firsts = self.first[slots]
        dead = firsts < 0
        if dead.any():
            raise UnknownOIDError(int(oids[int(dead.argmax())]))
        return firsts

    def rmq_positions(self, low: np.ndarray, high: np.ndarray) -> np.ndarray:
        """Position of the min-depth tour entry in each ``[low, high]``.

        Each query reads its sparse-table exponent ``k`` and gathers
        the two covering blocks straight out of the consolidated table
        matrix; ties break to the left entry exactly like the scalar
        RMQ.
        """
        exponents = self.log[high - low + 1]
        depth = self.depth
        left = self.table[exponents, low]
        right = self.table[
            exponents, high - (np.int64(1) << exponents) + 1
        ]
        return np.where(depth[left] <= depth[right], left, right)

    # -- batched LCA -----------------------------------------------------
    def lca_many(
        self, oids_a: np.ndarray, oids_b: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(meet OIDs, distances) for parallel OID arrays — one pass."""
        first_a = self.first_positions(oids_a)
        first_b = self.first_positions(oids_b)
        low = np.minimum(first_a, first_b)
        high = np.maximum(first_a, first_b)
        positions = self.rmq_positions(low, high)
        depth = self.depth
        distances = depth[first_a] + depth[first_b] - 2 * depth[positions]
        return self.tour[positions], distances

    def lca_pairs(self, pairs: Iterable[Tuple[int, int]]) -> List[int]:
        """Batched LCA over an iterable of pairs, as plain python ints."""
        materialized = pairs if isinstance(pairs, np.ndarray) else list(pairs)
        if len(materialized) == 0:
            return []
        table = np.asarray(materialized, dtype=_INT64).reshape(-1, 2)
        meets, _ = self.lca_many(table[:, 0], table[:, 1])
        return meets.tolist()

    # -- auxiliary (virtual) tree ---------------------------------------
    def auxiliary_tree(
        self, oids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`LcaIndex.auxiliary_tree_arrays`.

        Returns ``(order, order_firsts, parent_index)``: the candidate
        OIDs (inputs plus LCAs of pre-order neighbours) in pre-order,
        their first Euler positions, and each candidate's parent
        *position* (−1 at the root).  Candidate-set closure under LCA
        makes ``parent(c_i) = lca(c_{i-1}, c_i)``, so parents come
        from one more batched RMQ instead of a python stack walk.
        """
        input_firsts = sorted_unique(self.first_positions(oids))
        if len(input_firsts) > 1:
            neighbour_pos = self.rmq_positions(input_firsts[:-1], input_firsts[1:])
            neighbour_firsts = self.first[self.tour[neighbour_pos] - self.base]
            order_firsts = sorted_unique(
                np.concatenate([input_firsts, neighbour_firsts])
            )
        else:
            order_firsts = input_firsts
        order = self.tour[order_firsts]
        parent_index = np.full(len(order), -1, dtype=_INT64)
        if len(order_firsts) > 1:
            parent_pos = self.rmq_positions(order_firsts[:-1], order_firsts[1:])
            parent_firsts = self.first[self.tour[parent_pos] - self.base]
            parent_index[1:] = np.searchsorted(order_firsts, parent_firsts)
        return order, order_firsts, parent_index


def get_kernels(index) -> LcaKernels:
    """The memoized :class:`LcaKernels` of an index (built on first use)."""
    kernels = getattr(index, "_vector_kernels", None)
    if kernels is None:
        kernels = LcaKernels(index)
        index._vector_kernels = kernels
    return kernels
