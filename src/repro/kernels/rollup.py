"""Vectorized Fig. 4/5 roll-ups over the auxiliary tree (NumPy tier).

The pure-python roll-ups (:meth:`IndexedBackend.meet_tagged`,
:meth:`IndexedBackend.meet_sets`) walk the auxiliary tree in reverse
pre-order, one node at a time.  Both walks are really level-wise
dataflow on the auxiliary tree — a node's state depends only on its
(strictly deeper) auxiliary children — so they vectorize as a handful
of whole-array passes per auxiliary *level* (tree depth, not node
count, bounds the python-level loop):

* tagged roll-up (Fig. 5): a node accumulating ≥ 2 (token, OID) pairs
  emits and stops propagating, so everything travelling upward is a
  singleton.  ``count`` is an integer column, the pending singleton an
  index column, and each level is one boolean mask, one
  ``np.add.at`` scatter and one assignment scatter;
* set roll-up (Fig. 4): a node emits when both sides reach it; counts
  propagate like above, and origin sets are recovered afterwards by
  assigning every input to its nearest emitting ancestor-or-self
  (one top-down pass), avoiding per-node set unions entirely.

Both kernels reproduce the python walks' emission order (reverse
pre-order over auxiliary positions) and origin/token sets exactly —
the differential suite holds them byte-identical.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .lca import LcaKernels, tree_depths

__all__ = ["rollup_tagged", "rollup_sets"]

_INT64 = np.int64


def _levels(depth: np.ndarray):
    """Positions grouped by depth: (sorted positions, sorted depths)."""
    by_depth = np.argsort(depth, kind="stable")
    return by_depth, depth[by_depth]


def rollup_tagged(
    kernels: LcaKernels, pair_oids: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The Fig. 5 roll-up over one flat (token, OID)-pair OID column.

    ``pair_oids[i]`` is the OID of distinct pair ``i`` (token identity
    is irrelevant to propagation — only pair multiplicity per node
    matters).  Returns ``(order, emitted_positions, group_pairs,
    boundaries)``: the auxiliary pre-order OIDs, the emitting
    positions in reverse pre-order, one flat column of covered pair
    indexes, and the start offsets splitting it per emitting position
    — flat + boundaries instead of ``np.split`` so no per-group
    subarray is ever created.
    """
    order, order_firsts, parent_index = kernels.auxiliary_tree(pair_oids)
    size = len(order)
    pair_positions = np.searchsorted(
        order_firsts, kernels.first_positions(pair_oids)
    )
    own_count = np.bincount(pair_positions, minlength=size)
    count = own_count.astype(_INT64)
    # The lone pending pair per position; positions holding ≥ 2 own
    # pairs emit regardless, so their clobbered slot is never read.
    pending = np.full(size, -1, dtype=_INT64)
    pending[pair_positions] = np.arange(len(pair_oids))

    contribution_targets: List[np.ndarray] = [pair_positions]
    contribution_pairs: List[np.ndarray] = [np.arange(len(pair_oids))]

    depth = tree_depths(parent_index)
    by_depth, sorted_depths = _levels(depth)
    for level in range(int(depth.max(initial=0)), 0, -1):
        lo = np.searchsorted(sorted_depths, level, "left")
        hi = np.searchsorted(sorted_depths, level, "right")
        positions = by_depth[lo:hi]
        # Exactly the nodes whose accumulated pair is a singleton
        # propagate (emitted nodes stop; empty nodes have nothing).
        senders = positions[count[positions] == 1]
        if not len(senders):
            continue
        targets = parent_index[senders]
        np.add.at(count, targets, 1)
        contribution_targets.append(targets)
        contribution_pairs.append(pending[senders])
        pending[targets] = pending[senders]

    emit_mask = count >= 2
    all_targets = np.concatenate(contribution_targets)
    all_pairs = np.concatenate(contribution_pairs)
    keep = emit_mask[all_targets]
    kept_targets = all_targets[keep]
    if not len(kept_targets):
        empty = np.empty(0, dtype=_INT64)
        return order, empty, empty, empty
    # A pair reaches any given target at most once, so one combined
    # key sorts by target and keeps groups contiguous in a single
    # pass; reversing the ascending keys yields the python walk's
    # reverse pre-order emission (pair order within a group is
    # irrelevant — the pairs become a frozenset).
    span = np.int64(len(pair_oids))
    keys = np.sort(kept_targets * span + all_pairs[keep])[::-1]
    group_targets = keys // span
    group_pairs = keys % span
    boundaries = np.nonzero(np.diff(group_targets))[0] + 1
    emitted = group_targets[np.concatenate(([0], boundaries))]
    return order, emitted, group_pairs, boundaries


def rollup_sets(
    kernels: LcaKernels,
    inputs: np.ndarray,
    in_left: np.ndarray,
    in_right: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The Fig. 4 set roll-up over sorted distinct input OIDs.

    ``in_left`` / ``in_right`` flag each input's side membership (an
    OID may carry both).  Returns ``(order, emitted_positions,
    origin_indexes, boundaries)``: emitting positions in reverse
    pre-order and one flat column of origin indexes (into ``inputs``)
    split per position by the boundary offsets — within a position the
    indexes ascend, i.e. the python walk's bit order.
    """
    order, order_firsts, parent_index = kernels.auxiliary_tree(inputs)
    size = len(order)
    input_positions = np.searchsorted(
        order_firsts, kernels.first_positions(inputs)
    )
    left_count = np.bincount(input_positions[in_left], minlength=size)
    right_count = np.bincount(input_positions[in_right], minlength=size)

    depth = tree_depths(parent_index)
    by_depth, sorted_depths = _levels(depth)
    max_level = int(depth.max(initial=0))
    # Bottom-up: non-emitting nodes forward both side counts upward.
    for level in range(max_level, 0, -1):
        lo = np.searchsorted(sorted_depths, level, "left")
        hi = np.searchsorted(sorted_depths, level, "right")
        positions = by_depth[lo:hi]
        lefts = left_count[positions]
        rights = right_count[positions]
        forwarding = positions[
            ((lefts == 0) | (rights == 0)) & ((lefts + rights) > 0)
        ]
        if not len(forwarding):
            continue
        targets = parent_index[forwarding]
        np.add.at(left_count, targets, left_count[forwarding])
        np.add.at(right_count, targets, right_count[forwarding])

    emit_mask = (left_count > 0) & (right_count > 0)
    # Top-down: every position's nearest emitting ancestor-or-self —
    # exactly where an input's origin bit comes to rest.
    nearest_emitter = np.full(size, -1, dtype=_INT64)
    for level in range(0, max_level + 1):
        lo = np.searchsorted(sorted_depths, level, "left")
        hi = np.searchsorted(sorted_depths, level, "right")
        positions = by_depth[lo:hi]
        parents = parent_index[positions]
        inherited = np.where(parents >= 0, nearest_emitter[parents], -1)
        nearest_emitter[positions] = np.where(
            emit_mask[positions], positions, inherited
        )

    targets = nearest_emitter[input_positions]
    keep = targets >= 0
    kept_targets = targets[keep]
    if not len(kept_targets):
        empty = np.empty(0, dtype=_INT64)
        return order, empty, empty, empty
    kept_inputs = np.arange(len(inputs), dtype=_INT64)[keep]
    # Input indexes are distinct, so one combined key both sorts by
    # descending target and keeps indexes ascending within a group
    # (the reversal flips targets to reverse pre-order; negating the
    # index part restores its ascending order).
    span = np.int64(len(inputs))
    keys = np.sort(kept_targets * span + (span - 1 - kept_inputs))[::-1]
    group_targets = keys // span
    origin_indexes = span - 1 - keys % span
    boundaries = np.nonzero(np.diff(group_targets))[0] + 1
    emitted = group_targets[np.concatenate(([0], boundaries))]
    return order, emitted, origin_indexes, boundaries
