"""Full-text search over string associations (the paper's search engine).

* :class:`FullTextIndex` — inverted token index; postings are
  (pid, OID) associations, pre-grouped for the meet operator.
* :class:`SearchEngine` — token search plus substring scans, the
  ``contains`` semantics of the query language.
"""

from .index import FullTextIndex, Hits, Posting
from .search import SearchEngine, contains
from .thesaurus import BroadeningSearch, Thesaurus, expand_term
from .tokenizer import normalize, tokenize

__all__ = [
    "FullTextIndex",
    "Hits",
    "Posting",
    "BroadeningSearch",
    "SearchEngine",
    "Thesaurus",
    "expand_term",
    "contains",
    "normalize",
    "tokenize",
]
