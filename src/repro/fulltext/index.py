"""Inverted index over the string associations of a Monet XML store.

The paper combines the meet operator with "an already existing search
engine for semi-structured or XML data" (§5); this module is that
engine.  It indexes every (OID, string) association of every string
relation — attribute values *and* character data, exactly the search
surface of Def. 2's oid × string associations.

A posting is the pair (pid, oid): the association's relation (= path)
and its OID.  Postings grouped by pid are precisely the typed input
relations R₁ … Rₙ that the general meet algorithm of Fig. 5 consumes.

Storage is allocation-light: each term's postings live in two parallel
``array('q')`` columns (pids, oids) behind an interned term
dictionary, with the by-pid grouping and the distinct-OID set
precomputed at build time.  :class:`Posting` and :class:`Hits` remain
the public face, but a :class:`Hits` is now a thin *view* over the
shared columns — ``oids()`` and ``by_pid()`` answer from the
prebuilt structures and individual :class:`Posting` objects are only
materialized when somebody actually iterates ``hits.postings``.
"""

from __future__ import annotations

import sys
from array import array
from dataclasses import dataclass
from types import MappingProxyType
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)
from weakref import WeakKeyDictionary

from .. import kernels as _kernels
from ..monet.engine import MonetXML
from .tokenizer import normalize, tokenize

__all__ = [
    "Posting",
    "Hits",
    "FullTextIndex",
    "get_fulltext_index",
    "cached_fulltext_index",
    "seed_fulltext_index",
    "clear_fulltext_index_cache",
    "fulltext_index_cache_info",
    "FullTextIndexCacheInfo",
]


@dataclass(frozen=True, slots=True)
class Posting:
    """One matching association: its relation (pid) and its OID."""

    pid: int
    oid: int


_EMPTY_COLUMN = array("q")


def _unique_oid_column(oids: Sequence[int]):
    """Distinct OIDs of a column, ascending, as one flat column.

    NumPy tier: a zero-copy buffer view plus ``np.unique``; python
    tier: a sorted set.  Both return ``array('q')`` — iterating the
    column must yield plain python ints (``np.int64`` is *not* an
    ``int`` subclass and would fail downstream OID validation).
    """
    if _kernels.available():
        np = _kernels.numpy()
        try:
            column = np.frombuffer(oids, dtype=np.int64)
        except (TypeError, ValueError, BufferError):
            column = np.asarray(oids, dtype=np.int64)
        return _as_q_column(np.unique(column))
    return array("q", sorted(set(oids)))


def _as_q_column(np_column) -> array:
    """An ``array('q')`` copy of an int64 NumPy column (one memcpy)."""
    out = array("q")
    out.frombytes(np_column.tobytes())
    return out


class Hits:
    """Result of one term search; groups postings for the meet operator.

    A view over two parallel (pid, oid) columns.  ``postings`` (the
    historical list-of-:class:`Posting` API), ``oids()`` and
    ``by_pid()`` are all memoized on the instance: a term's hits are
    consumed at least once per query, often several times, and none of
    those consumers should pay a rebuild.
    """

    __slots__ = (
        "term",
        "_pids",
        "_oids",
        "_postings",
        "_grouped",
        "_oid_set",
        "_oid_column",
    )

    def __init__(
        self,
        term: str,
        postings: Optional[Iterable[Posting]] = None,
        *,
        columns: Optional[Tuple[Sequence[int], Sequence[int]]] = None,
        grouped: Optional[Mapping[int, Sequence[int]]] = None,
        oid_set: Optional[FrozenSet[int]] = None,
        oid_column: Optional[Sequence[int]] = None,
    ):
        self.term = term
        self._postings: Optional[List[Posting]] = None
        self._grouped = grouped
        self._oid_set = oid_set
        self._oid_column = oid_column
        if columns is not None:
            self._pids, self._oids = columns
        else:
            materialized = list(postings) if postings is not None else []
            self._postings = materialized
            self._pids = array("q", (p.pid for p in materialized))
            self._oids = array("q", (p.oid for p in materialized))

    @property
    def postings(self) -> List[Posting]:
        """The postings as :class:`Posting` views (materialized lazily)."""
        if self._postings is None:
            self._postings = [
                Posting(pid, oid) for pid, oid in zip(self._pids, self._oids)
            ]
        return self._postings

    def oids(self) -> AbstractSet[int]:
        """The distinct OIDs hit (memoized; do not mutate the result)."""
        if self._oid_set is None:
            self._oid_set = frozenset(self._oids)
        return self._oid_set

    @property
    def columns(self) -> Tuple[Sequence[int], Sequence[int]]:
        """The raw parallel (pid, oid) columns — zero-copy views.

        The batched path reads these instead of ``postings`` so no
        python :class:`Posting` tuple is materialized per element.
        """
        return self._pids, self._oids

    def oid_column(self) -> Sequence[int]:
        """Distinct hit OIDs as one sorted flat column (memoized).

        Index-backed hits share the column cached per term on the
        index itself, so repeated queries of a term pay the dedup
        once per index generation; the vector kernels consume the
        column directly without round-tripping through the
        ``oids()`` frozenset.
        """
        if self._oid_column is None:
            self._oid_column = _unique_oid_column(self._oids)
        return self._oid_column

    def by_pid(self) -> Mapping[int, Sequence[int]]:
        """pid → OID sequence: the typed relations handed to meet (Fig. 5).

        Memoized on the instance; index-backed hits share the grouping
        precomputed at index build time, so the mapping is returned
        read-only (callers needing to regroup should copy).
        """
        if self._grouped is None:
            grouped: Dict[int, List[int]] = {}
            for pid, oid in zip(self._pids, self._oids):
                grouped.setdefault(pid, []).append(oid)
            self._grouped = grouped
        if not isinstance(self._grouped, MappingProxyType):
            self._grouped = MappingProxyType(self._grouped)
        return self._grouped

    def __len__(self) -> int:
        return len(self._oids)

    def __bool__(self) -> bool:
        return bool(len(self._oids))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hits):
            return NotImplemented
        return self.term == other.term and self.postings == other.postings

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Hits(term={self.term!r}, postings={len(self._oids)})"


class _TermPostings:
    """Frozen per-term columns: parallel pid/oid arrays plus roll-ups.

    Index builds precompute the by-pid grouping and the distinct-OID
    set eagerly (queries always consume them); snapshot loads wrap the
    deserialized columns via :meth:`from_frozen` and derive the
    roll-ups lazily on first use, keeping warm starts O(bytes).
    """

    __slots__ = ("pids", "oids", "_grouped", "_oid_set", "_unique_oids")

    def __init__(self, pids: Sequence[int], oids: Sequence[int]):
        self.pids = pids
        self.oids = oids
        self._grouped: Optional[Mapping[int, Sequence[int]]] = None
        self._oid_set: Optional[FrozenSet[int]] = None
        self._unique_oids: Optional[Sequence[int]] = None
        # Touch the properties so build-time postings stay precomputed.
        self.grouped
        self.oid_set

    @classmethod
    def from_frozen(
        cls, pids: Sequence[int], oids: Sequence[int]
    ) -> "_TermPostings":
        """Wrap already-built columns without materializing roll-ups."""
        self = cls.__new__(cls)
        self.pids = pids
        self.oids = oids
        self._grouped = None
        self._oid_set = None
        self._unique_oids = None
        return self

    @property
    def unique_oids(self) -> Sequence[int]:
        """Distinct OIDs as one sorted flat column (lazy, memoized).

        Shared by every :class:`Hits` view of the term across queries
        — the batched serving path's input column.
        """
        cached = self._unique_oids
        if cached is None:
            cached = self._unique_oids = _unique_oid_column(self.oids)
        return cached

    @property
    def grouped(self) -> Mapping[int, Sequence[int]]:
        cached = self._grouped
        if cached is None:
            built: Dict[int, array] = {}
            for pid, oid in zip(self.pids, self.oids):
                column = built.get(pid)
                if column is None:
                    built[pid] = column = array("q")
                column.append(oid)
            # Read-only view: this grouping is shared by every Hits
            # view of the term (and, via the cache, by every engine).
            cached = self._grouped = MappingProxyType(built)
        return cached

    @property
    def oid_set(self) -> FrozenSet[int]:
        cached = self._oid_set
        if cached is None:
            cached = self._oid_set = frozenset(self.oids)
        return cached

    def __len__(self) -> int:
        return len(self.oids)


class FullTextIndex:
    """Token → postings inverted index over a store's string relations.

    Parameters
    ----------
    store:
        The Monet XML instance to index.
    case_sensitive:
        Keep token case (off by default, like most search engines).

    Notes
    -----
    OIDs recorded in postings are the association OIDs: for character
    data that is the ``cdata`` node (so a hit *is* a node of the tree
    and can itself be a meet, as in the paper's "Bob"/"Byte" example);
    for an attribute value it is the element owning the attribute.

    The index records the store ``generation`` it was built against;
    :func:`get_fulltext_index` uses it to rebuild transparently after
    :meth:`~repro.monet.engine.MonetXML.invalidate_caches`.
    """

    def __init__(self, store: MonetXML, case_sensitive: bool = False):
        self.store = store
        self.case_sensitive = case_sensitive
        #: Store generation this index was built against.
        self.generation = getattr(store, "generation", 0)
        self._terms: Dict[str, _TermPostings] = {}
        self._indexed_associations = 0
        self._build()

    def _build(self) -> None:
        global _builds
        _builds += 1
        pending: Dict[str, Tuple[List[int], List[int]]] = {}
        intern = sys.intern
        case_sensitive = self.case_sensitive
        for pid, relation in self.store.string_relations():
            # Postings reference the *element* path of the carrying node
            # so the meet roll-up starts from real tree nodes.
            element_pid = self.store.summary.parent(pid)
            for oid, value in relation:
                self._indexed_associations += 1
                seen: Set[str] = set()
                for token in tokenize(value, case_sensitive):
                    if token in seen:
                        continue
                    seen.add(token)
                    columns = pending.get(token)
                    if columns is None:
                        pending[intern(token)] = columns = ([], [])
                    columns[0].append(element_pid)
                    columns[1].append(oid)
        self._terms = {
            token: _TermPostings(array("q", pids), array("q", oids))
            for token, (pids, oids) in pending.items()
        }

    # -- persistence (the snapshot store's contract) --------------------
    def iter_term_columns(self) -> Iterator[Tuple[str, Sequence[int], Sequence[int]]]:
        """(term, pid column, oid column) per term, in dictionary order.

        The snapshot writer serializes exactly these columns; the
        roll-ups (grouping, distinct-OID sets) are derivable and are
        not part of the on-disk contract.
        """
        for term, entry in self._terms.items():
            yield term, entry.pids, entry.oids

    @classmethod
    def from_term_columns(
        cls,
        store: MonetXML,
        term_columns: Iterable[Tuple[str, Sequence[int], Sequence[int]]],
        *,
        case_sensitive: bool = False,
        indexed_associations: int = 0,
    ) -> "FullTextIndex":
        """Rebind deserialized term columns as a ready index.

        No string relation is scanned and no tokenization runs (the
        build counter stays untouched): the columns — e.g. zero-copy
        memoryview casts over a snapshot buffer — are wrapped as frozen
        postings whose roll-ups materialize lazily on first query.
        """
        self = cls.__new__(cls)
        self.store = store
        self.case_sensitive = case_sensitive
        self.generation = getattr(store, "generation", 0)
        self._indexed_associations = indexed_associations
        self._terms = {
            sys.intern(term): _TermPostings.from_frozen(pids, oids)
            for term, pids, oids in term_columns
        }
        return self

    # -- incremental maintenance ----------------------------------------
    def patched(self, records: Iterable[object]) -> "FullTextIndex":
        """A copy of this index rolled forward over mutation records.

        Put records contribute their ``added_strings`` associations
        (tokenized exactly like a build); delete records prune postings
        by tombstoned OID span.  The receiver is left untouched — the
        copy shares the posting columns of unaffected terms — so racing
        readers can each patch the cached index and install their copy
        without ever observing a half-patched structure.
        """
        clone = FullTextIndex.__new__(FullTextIndex)
        clone.store = self.store
        clone.case_sensitive = self.case_sensitive
        clone.generation = self.generation
        clone._indexed_associations = self._indexed_associations
        clone._terms = dict(self._terms)
        intern = sys.intern
        summary = self.store.summary
        for record in records:
            kind = getattr(record, "kind", None)
            if kind == "put":
                pending: Dict[str, Tuple[List[int], List[int]]] = {}
                for attr_pid, oid, value in record.added_strings:
                    element_pid = summary.parent(attr_pid)
                    clone._indexed_associations += 1
                    seen: Set[str] = set()
                    for token in tokenize(value, clone.case_sensitive):
                        if token in seen:
                            continue
                        seen.add(token)
                        columns = pending.get(token)
                        if columns is None:
                            pending[intern(token)] = columns = ([], [])
                        columns[0].append(element_pid)
                        columns[1].append(oid)
                for token, (pids, oids) in pending.items():
                    entry = clone._terms.get(token)
                    if entry is None:
                        clone._terms[token] = _TermPostings(
                            array("q", pids), array("q", oids)
                        )
                    else:
                        merged_pids = array("q", entry.pids)
                        merged_pids.extend(pids)
                        merged_oids = array("q", entry.oids)
                        merged_oids.extend(oids)
                        clone._terms[token] = _TermPostings(
                            merged_pids, merged_oids
                        )
            elif kind == "delete":
                low, high = record.span
                clone._indexed_associations -= record.removed_associations
                for token, entry in list(clone._terms.items()):
                    if not any(low <= oid <= high for oid in entry.oids):
                        continue
                    kept = [
                        (pid, oid)
                        for pid, oid in zip(entry.pids, entry.oids)
                        if not low <= oid <= high
                    ]
                    if kept:
                        clone._terms[token] = _TermPostings(
                            array("q", (pid for pid, _ in kept)),
                            array("q", (oid for _, oid in kept)),
                        )
                    else:
                        del clone._terms[token]
            else:  # pragma: no cover - journal only holds put/delete
                raise ValueError(f"unknown mutation record {record!r}")
            clone.generation = record.to_generation
        return clone

    # -- statistics ------------------------------------------------------
    @property
    def vocabulary_size(self) -> int:
        return len(self._terms)

    @property
    def indexed_associations(self) -> int:
        return self._indexed_associations

    def vocabulary(self) -> Iterable[str]:
        return self._terms.keys()

    def document_frequency(self, term: str) -> int:
        entry = self._terms.get(normalize(term, self.case_sensitive))
        return 0 if entry is None else len(entry)

    # -- search ------------------------------------------------------------
    def search(self, term: str) -> Hits:
        """All associations whose string contains ``term`` as a token.

        A dictionary look-up plus one :class:`Hits` view — no posting
        copies, no per-posting allocation.
        """
        token = normalize(term, self.case_sensitive)
        entry = self._terms.get(token)
        if entry is None:
            return Hits(
                term=term,
                columns=(_EMPTY_COLUMN, _EMPTY_COLUMN),
                grouped={},
                oid_set=frozenset(),
                oid_column=_EMPTY_COLUMN,
            )
        return Hits(
            term=term,
            columns=(entry.pids, entry.oids),
            grouped=entry.grouped,
            oid_set=entry.oid_set,
            oid_column=entry.unique_oids,
        )

    def search_prefix(self, prefix: str) -> Hits:
        """All associations with a token starting with ``prefix``.

        Linear in vocabulary size; fine for the interactive use-case.
        """
        needle = normalize(prefix, self.case_sensitive)
        matching = [
            entry
            for token, entry in self._terms.items()
            if token.startswith(needle)
        ]
        return Hits(
            term=prefix + "*", columns=self._merge_columns(matching)
        )

    @staticmethod
    def _merge_columns(
        entries: Sequence[_TermPostings],
    ) -> Tuple[Sequence[int], Sequence[int]]:
        """Deduplicating union of posting columns, first-seen order.

        Vector tier: one combined-key pass
        (:func:`repro.kernels.postings.union_columns`); python tier:
        the historical seen-set merge loop.  Identical output order.
        """
        if _kernels.available():
            from ..kernels import postings as postings_kernels

            pids, oids = postings_kernels.union_columns(
                (entry.pids, entry.oids) for entry in entries
            )
            return _as_q_column(pids), _as_q_column(oids)
        merged_pids = array("q")
        merged_oids = array("q")
        seen: Set[Tuple[int, int]] = set()
        for entry in entries:
            for pid, oid in zip(entry.pids, entry.oids):
                key = (pid, oid)
                if key not in seen:
                    seen.add(key)
                    merged_pids.append(pid)
                    merged_oids.append(oid)
        return merged_pids, merged_oids

    def search_any(self, terms: Iterable[str]) -> Hits:
        """Union of single-term searches (duplicate postings removed)."""
        label: List[str] = []
        entries: List[_TermPostings] = []
        for term in terms:
            label.append(term)
            entry = self._terms.get(normalize(term, self.case_sensitive))
            if entry is not None:
                entries.append(entry)
        return Hits(term="|".join(label), columns=self._merge_columns(entries))

    def search_conjunctive(self, terms: Iterable[str]) -> Hits:
        """Associations whose string contains *all* the terms.

        This matches "Bob Byte" when searching for Bob *and* Byte — the
        paper's second §3.1 example where the meet is the cdata node
        itself.  The intersection runs as a sorted-array kernel when
        NumPy is importable; either tier emits (pid, oid) ascending.
        """
        term_list = list(terms)
        if not term_list:
            return Hits(term="")
        entries = [
            self._terms.get(normalize(term, self.case_sensitive))
            for term in term_list
        ]
        if any(entry is None for entry in entries):
            return Hits(term="&".join(term_list))
        if _kernels.available():
            from ..kernels import postings as postings_kernels

            pids, oids = postings_kernels.intersect_columns(
                (entry.pids, entry.oids) for entry in entries
            )
            return Hits(
                term="&".join(term_list),
                columns=(_as_q_column(pids), _as_q_column(oids)),
            )
        result = {(pid, oid) for pid, oid in zip(entries[0].pids, entries[0].oids)}
        for entry in entries[1:]:
            result &= {(pid, oid) for pid, oid in zip(entry.pids, entry.oids)}
        ordered = sorted(result)
        return Hits(
            term="&".join(term_list),
            columns=(
                array("q", (pid for pid, _ in ordered)),
                array("q", (oid for _, oid in ordered)),
            ),
        )


# ---------------------------------------------------------------------------
# Per-store cache, keyed on store identity + generation + case mode.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FullTextIndexCacheInfo:
    """Counters of the per-store index cache (for tests and benches)."""

    builds: int
    hits: int
    currsize: int
    patches: int = 0


_cache: "WeakKeyDictionary[MonetXML, Dict[bool, FullTextIndex]]" = (
    WeakKeyDictionary()
)
_builds = 0
_hits = 0
_patches = 0

#: Above this tombstone density an invalidated index rebuilds from the
#: (already pruned) relations instead of patching forward — the patch
#: would carry too much dead weight.
REBUILD_DENSITY = 0.25


def _journal_chain(store: MonetXML, generation: int):
    """Mutation records bridging ``generation`` → the store's current one.

    ``None`` when no contiguous chain exists (journal evicted, store
    without a journal, or a gap) — the caller must rebuild.
    """
    current = getattr(store, "generation", 0)
    if generation == current:
        return []
    chain = []
    expected = generation
    for record in getattr(store, "journal", ()):
        from_generation = getattr(record, "from_generation", None)
        if from_generation is None:
            return None
        if not chain and from_generation != expected:
            continue
        if chain and from_generation != expected:
            return None
        chain.append(record)
        expected = record.to_generation
    if not chain or expected != current:
        return None
    return chain


def get_fulltext_index(
    store: MonetXML, case_sensitive: bool = False
) -> FullTextIndex:
    """The cached :class:`FullTextIndex` of a store, (re)built on demand.

    Keyed on the store object (weakly), its ``generation`` and the case
    mode: every engine / processor serving the same store shares one
    index, and :meth:`~repro.monet.engine.MonetXML.invalidate_caches`
    transparently yields a fresh one on next use.  When the store's
    mutation journal bridges the cached index's generation to the
    current one and tombstone density is below :data:`REBUILD_DENSITY`,
    the index is patched forward (appends add postings, deletes prune
    by OID span) instead of rebuilt.
    """
    global _hits, _patches
    per_store = _cache.get(store)
    if per_store is None:
        per_store = _cache[store] = {}
    cached = per_store.get(case_sensitive)
    if cached is not None and cached.generation == getattr(store, "generation", 0):
        _hits += 1
        return cached
    if cached is not None and getattr(store, "dead_fraction", 1.0) <= REBUILD_DENSITY:
        chain = _journal_chain(store, cached.generation)
        if chain is not None:
            index = cached.patched(chain)
            per_store[case_sensitive] = index
            _patches += 1
            return index
    index = FullTextIndex(store, case_sensitive=case_sensitive)
    per_store[case_sensitive] = index
    return index


def seed_fulltext_index(store: MonetXML, index: FullTextIndex) -> None:
    """Install a ready index into the per-store cache without a build.

    The snapshot loader's hook: an index deserialized via
    :meth:`FullTextIndex.from_term_columns` is registered under its
    case mode so every subsequent :func:`get_fulltext_index` call is a
    cache hit.  Neither the build nor the hit counter moves, keeping
    the "zero constructions on warm start" property testable.
    """
    if index.store is not store:
        raise ValueError("cannot seed the cache with an index of another store")
    index.generation = getattr(store, "generation", 0)
    per_store = _cache.get(store)
    if per_store is None:
        per_store = _cache[store] = {}
    per_store[index.case_sensitive] = index


def cached_fulltext_index(
    store: MonetXML, case_sensitive: bool = False
) -> Optional[FullTextIndex]:
    """The cached index if it is current for the store, else ``None``.

    A pure peek — never builds, never patches, moves no counters.  The
    query planner uses it to estimate term fan-out without paying an
    index construction during planning.
    """
    per_store = _cache.get(store)
    if per_store is None:
        return None
    cached = per_store.get(case_sensitive)
    if cached is not None and cached.generation == getattr(store, "generation", 0):
        return cached
    return None


def clear_fulltext_index_cache() -> None:
    """Drop every cached index and reset the counters (test isolation)."""
    global _builds, _hits, _patches
    _cache.clear()
    _builds = 0
    _hits = 0
    _patches = 0


def fulltext_index_cache_info() -> FullTextIndexCacheInfo:
    return FullTextIndexCacheInfo(
        builds=_builds,
        hits=_hits,
        currsize=sum(len(entry) for entry in _cache.values()),
        patches=_patches,
    )
