"""Inverted index over the string associations of a Monet XML store.

The paper combines the meet operator with "an already existing search
engine for semi-structured or XML data" (§5); this module is that
engine.  It indexes every (OID, string) association of every string
relation — attribute values *and* character data, exactly the search
surface of Def. 2's oid × string associations.

A posting is the pair (pid, oid): the association's relation (= path)
and its OID.  Postings grouped by pid are precisely the typed input
relations R₁ … Rₙ that the general meet algorithm of Fig. 5 consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from ..monet.engine import MonetXML
from .tokenizer import normalize, tokenize

__all__ = ["Posting", "Hits", "FullTextIndex"]


@dataclass(frozen=True, slots=True)
class Posting:
    """One matching association: its relation (pid) and its OID."""

    pid: int
    oid: int


@dataclass(slots=True)
class Hits:
    """Result of one term search; groups postings for the meet operator."""

    term: str
    postings: List[Posting] = field(default_factory=list)

    def oids(self) -> Set[int]:
        return {posting.oid for posting in self.postings}

    def by_pid(self) -> Dict[int, List[int]]:
        """pid → OID list: the typed relations handed to meet (Fig. 5)."""
        grouped: Dict[int, List[int]] = {}
        for posting in self.postings:
            grouped.setdefault(posting.pid, []).append(posting.oid)
        return grouped

    def __len__(self) -> int:
        return len(self.postings)

    def __bool__(self) -> bool:
        return bool(self.postings)


class FullTextIndex:
    """Token → postings inverted index over a store's string relations.

    Parameters
    ----------
    store:
        The Monet XML instance to index.
    case_sensitive:
        Keep token case (off by default, like most search engines).

    Notes
    -----
    OIDs recorded in postings are the association OIDs: for character
    data that is the ``cdata`` node (so a hit *is* a node of the tree
    and can itself be a meet, as in the paper's "Bob"/"Byte" example);
    for an attribute value it is the element owning the attribute.
    """

    def __init__(self, store: MonetXML, case_sensitive: bool = False):
        self.store = store
        self.case_sensitive = case_sensitive
        self._postings: Dict[str, List[Posting]] = {}
        self._indexed_associations = 0
        self._build()

    def _build(self) -> None:
        for pid, relation in self.store.string_relations():
            # Postings reference the *element* path of the carrying node
            # so the meet roll-up starts from real tree nodes.
            element_pid = self.store.summary.parent(pid)
            for oid, value in relation:
                self._indexed_associations += 1
                seen: Set[str] = set()
                for token in tokenize(value, self.case_sensitive):
                    if token in seen:
                        continue
                    seen.add(token)
                    self._postings.setdefault(token, []).append(
                        Posting(element_pid, oid)
                    )

    # -- statistics ------------------------------------------------------
    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    @property
    def indexed_associations(self) -> int:
        return self._indexed_associations

    def vocabulary(self) -> Iterable[str]:
        return self._postings.keys()

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(normalize(term, self.case_sensitive), ()))

    # -- search ------------------------------------------------------------
    def search(self, term: str) -> Hits:
        """All associations whose string contains ``term`` as a token."""
        token = normalize(term, self.case_sensitive)
        postings = self._postings.get(token, [])
        return Hits(term=term, postings=list(postings))

    def search_prefix(self, prefix: str) -> Hits:
        """All associations with a token starting with ``prefix``.

        Linear in vocabulary size; fine for the interactive use-case.
        """
        needle = normalize(prefix, self.case_sensitive)
        merged: List[Posting] = []
        seen: Set[Tuple[int, int]] = set()
        for token, postings in self._postings.items():
            if not token.startswith(needle):
                continue
            for posting in postings:
                key = (posting.pid, posting.oid)
                if key not in seen:
                    seen.add(key)
                    merged.append(posting)
        return Hits(term=prefix + "*", postings=merged)

    def search_any(self, terms: Iterable[str]) -> Hits:
        """Union of single-term searches (duplicate postings removed)."""
        merged: List[Posting] = []
        seen: Set[Tuple[int, int]] = set()
        label: List[str] = []
        for term in terms:
            label.append(term)
            for posting in self.search(term).postings:
                key = (posting.pid, posting.oid)
                if key not in seen:
                    seen.add(key)
                    merged.append(posting)
        return Hits(term="|".join(label), postings=merged)

    def search_conjunctive(self, terms: Iterable[str]) -> Hits:
        """Associations whose string contains *all* the terms.

        This matches "Bob Byte" when searching for Bob *and* Byte — the
        paper's second §3.1 example where the meet is the cdata node
        itself.
        """
        term_list = list(terms)
        if not term_list:
            return Hits(term="")
        result = {(p.pid, p.oid) for p in self.search(term_list[0]).postings}
        for term in term_list[1:]:
            other = {(p.pid, p.oid) for p in self.search(term).postings}
            result &= other
        postings = [Posting(pid, oid) for pid, oid in sorted(result)]
        return Hits(term="&".join(term_list), postings=postings)
