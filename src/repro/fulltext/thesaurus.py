"""Thesaurus-based query broadening (paper §4).

"In particular, thesauri are a promising tool to help a user find
interesting results, especially to broaden a search that returned too
few answers."  The paper leaves this as an outlook; this module
implements the obvious reading:

* a :class:`Thesaurus` of symmetric synonym rings (optionally
  one-directional ``broader-term`` links);
* :func:`expand_term` — the term plus its synonyms (one hop or
  transitive);
* :class:`BroadeningSearch` — a search façade that first tries the
  plain term and only *broadens* (unions synonym hits) when the hit
  count falls below a threshold, exactly the "returned too few
  answers" trigger of §4.

The :class:`~repro.core.engine.NearestConceptEngine` accepts a
thesaurus and applies the broadened hits transparently; origins keep
the *user's* term as their tag so concept ranking and term coverage
remain by query term, not by synonym.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from .index import Hits, Posting
from .search import SearchEngine
from .tokenizer import normalize

__all__ = ["Thesaurus", "expand_term", "BroadeningSearch"]


class Thesaurus:
    """Synonym rings plus optional directed broader-term links."""

    def __init__(self, case_sensitive: bool = False):
        self.case_sensitive = case_sensitive
        self._synonyms: Dict[str, Set[str]] = {}
        self._broader: Dict[str, Set[str]] = {}

    def _key(self, term: str) -> str:
        return normalize(term, self.case_sensitive)

    # -- construction ------------------------------------------------------
    def add_synonyms(self, *terms: str) -> "Thesaurus":
        """Declare the terms mutually synonymous (a ring)."""
        keys = [self._key(term) for term in terms]
        for key in keys:
            ring = self._synonyms.setdefault(key, set())
            ring.update(k for k in keys if k != key)
        return self

    def add_broader(self, term: str, broader: str) -> "Thesaurus":
        """Declare ``broader`` a broader term of ``term`` (one-way)."""
        self._broader.setdefault(self._key(term), set()).add(
            self._key(broader)
        )
        return self

    @classmethod
    def from_rings(cls, rings: Iterable[Iterable[str]]) -> "Thesaurus":
        thesaurus = cls()
        for ring in rings:
            thesaurus.add_synonyms(*ring)
        return thesaurus

    # -- lookup ----------------------------------------------------------
    def synonyms(self, term: str) -> Set[str]:
        return set(self._synonyms.get(self._key(term), ()))

    def broader_terms(self, term: str) -> Set[str]:
        return set(self._broader.get(self._key(term), ()))

    def __len__(self) -> int:
        return len(self._synonyms) + len(self._broader)

    def __contains__(self, term: object) -> bool:
        if not isinstance(term, str):
            return False
        key = self._key(term)
        return key in self._synonyms or key in self._broader


def expand_term(
    thesaurus: Thesaurus,
    term: str,
    transitive: bool = False,
    include_broader: bool = False,
) -> List[str]:
    """The term plus its expansion, original first, deterministic order."""
    seen: Set[str] = {thesaurus._key(term)}
    frontier = [thesaurus._key(term)]
    expansion: List[str] = [term]
    while frontier:
        current = frontier.pop(0)
        neighbours = set(thesaurus.synonyms(current))
        if include_broader:
            neighbours |= thesaurus.broader_terms(current)
        for neighbour in sorted(neighbours):
            if neighbour in seen:
                continue
            seen.add(neighbour)
            expansion.append(neighbour)
            if transitive:
                frontier.append(neighbour)
    return expansion


class BroadeningSearch:
    """Search that falls back to synonyms when hits are too few (§4)."""

    def __init__(
        self,
        search: SearchEngine,
        thesaurus: Thesaurus,
        min_hits: int = 1,
        transitive: bool = False,
        include_broader: bool = False,
    ):
        self.search = search
        self.thesaurus = thesaurus
        self.min_hits = min_hits
        self.transitive = transitive
        self.include_broader = include_broader

    def find(self, term: str) -> Tuple[Hits, List[str]]:
        """Hits plus the terms actually used (first = the user's term).

        The plain search answers alone whenever it clears ``min_hits``;
        broadening unions synonym hits (duplicates removed) otherwise.
        """
        primary = self.search.find(term)
        if len(primary) >= self.min_hits:
            return primary, [term]
        expansion = expand_term(
            self.thesaurus,
            term,
            transitive=self.transitive,
            include_broader=self.include_broader,
        )
        if len(expansion) == 1:
            return primary, [term]
        merged: List[Posting] = list(primary.postings)
        seen = {(p.pid, p.oid) for p in merged}
        used = [term]
        for synonym in expansion[1:]:
            hits = self.search.find(synonym)
            if hits:
                used.append(synonym)
            for posting in hits.postings:
                key = (posting.pid, posting.oid)
                if key not in seen:
                    seen.add(key)
                    merged.append(posting)
        return Hits(term=term, postings=merged), used
