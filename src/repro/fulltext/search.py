"""Substring and scan-based search complementing the inverted index.

`contains` in the paper's query language ("$o contains 'Bit'") is a
containment test on character data.  The inverted index resolves the
common token-shaped case in O(1); this module adds the general
substring semantics via a relation scan, plus helpers shared by the
query executor.
"""

from __future__ import annotations

from typing import List, Optional

from ..monet.engine import MonetXML
from .index import FullTextIndex, Hits, Posting, get_fulltext_index
from .tokenizer import tokenize

__all__ = ["SearchEngine", "contains"]


def contains(value: str, needle: str, case_sensitive: bool = False) -> bool:
    """Plain substring containment with optional case folding."""
    if case_sensitive:
        return needle in value
    return needle.lower() in value.lower()


class SearchEngine:
    """Façade bundling token search and substring scans over one store."""

    def __init__(
        self,
        store: MonetXML,
        index: Optional[FullTextIndex] = None,
        case_sensitive: bool = False,
    ):
        self.store = store
        self.case_sensitive = case_sensitive
        #: An explicitly supplied index is pinned; otherwise the
        #: generation-keyed per-store cache provides (and refreshes) it.
        self._pinned_index = index

    @property
    def index(self) -> FullTextIndex:
        """The full-text index, kept fresh across store invalidations.

        Engines sharing one store share one index build; after
        :meth:`~repro.monet.engine.MonetXML.invalidate_caches` the next
        access transparently serves a rebuilt index.
        """
        if self._pinned_index is not None:
            return self._pinned_index
        return get_fulltext_index(self.store, self.case_sensitive)

    def find(self, term: str) -> Hits:
        """Token-shaped terms use the index; others fall back to a scan.

        A term is token-shaped when tokenizing it yields exactly the
        term itself — then index semantics and substring-token semantics
        agree on whole-token matches.  A token-shaped term that misses
        the index entirely is retried as a substring scan, so partial
        words ("Hac") keep the paper's ``contains`` behaviour.
        """
        tokens = tokenize(term, self.case_sensitive)
        if len(tokens) == 1 and self._is_whole_token(term):
            hits = self.index.search(term)
            if hits:
                return hits
            return self.scan(term)
        if len(tokens) > 1:
            # Multi-word terms ("Bob Byte"): all tokens in one association.
            hits = self.index.search_conjunctive(tokens)
            return Hits(term=term, postings=self._confirm_substring(term, hits))
        return self.scan(term)

    def _is_whole_token(self, term: str) -> bool:
        return all(ch.isalnum() for ch in term.strip())

    def _confirm_substring(self, term: str, hits: Hits) -> List[Posting]:
        """Filter token-conjunction candidates to true substring matches."""
        confirmed: List[Posting] = []
        for posting in hits.postings:
            if any(
                contains(value, term, self.case_sensitive)
                for value in self._values_of(posting)
            ):
                confirmed.append(posting)
        return confirmed

    def _values_of(self, posting: Posting) -> List[str]:
        """String values of the association behind a posting."""
        values: List[str] = []
        for attr_pid in self.store.summary.children(posting.pid):
            if not self.store.summary.is_attribute(attr_pid):
                continue
            relation = self.store.strings.get(attr_pid)
            if relation is not None:
                values.extend(relation.find_all(posting.oid))
        return values

    def scan(self, needle: str) -> Hits:
        """Full scan over all string relations: substring containment.

        The slow path — used for punctuation-bearing or partial-word
        needles that token search cannot answer.
        """
        postings: List[Posting] = []
        for pid, relation in self.store.string_relations():
            element_pid = self.store.summary.parent(pid)
            for oid, value in relation:
                if contains(value, needle, self.case_sensitive):
                    postings.append(Posting(element_pid, oid))
        return Hits(term=needle, postings=postings)
