"""Tokenization for the full-text index.

The paper's search terms are words and numbers ("Ben", "Bit", "1999",
"ICDE"), so the tokenizer splits on non-alphanumeric characters and
lower-cases by default.  It is deliberately small: no stemming, no
stop words — §4 of the paper leaves "more complicated information
retrieval techniques" to future work, and we keep the search surface
faithful to what the evaluation exercised.
"""

from __future__ import annotations

from typing import Iterator, List

__all__ = ["tokenize", "normalize"]


def normalize(token: str, case_sensitive: bool = False) -> str:
    """Canonical form of a token: stripped, optionally lower-cased."""
    token = token.strip()
    return token if case_sensitive else token.lower()


def iter_tokens(text: str) -> Iterator[str]:
    """Yield maximal alphanumeric runs of the text, in order."""
    start = -1
    for position, ch in enumerate(text):
        if ch.isalnum():
            if start < 0:
                start = position
        elif start >= 0:
            yield text[start:position]
            start = -1
    if start >= 0:
        yield text[start:]


def tokenize(text: str, case_sensitive: bool = False) -> List[str]:
    """Split text into normalized tokens.

    >>> tokenize("Hacking & RSI")
    ['hacking', 'rsi']
    >>> tokenize("ICDE 1999", case_sensitive=True)
    ['ICDE', '1999']
    """
    return [normalize(token, case_sensitive) for token in iter_tokens(text)]
