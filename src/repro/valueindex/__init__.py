"""Typed per-path value indexes over a store's string associations.

Where :mod:`repro.fulltext` indexes *tokens*, this package indexes the
association *values* themselves: equality and range probes over element
character data and attribute values, string and numeric, grouped by
path.  The query planner consults it to answer ``$v = 'literal'``
predicates by dictionary probe instead of scanning every string
relation.
"""

from .index import (
    ValueIndex,
    ValueIndexCacheInfo,
    cached_value_index,
    clear_value_index_cache,
    get_value_index,
    seed_value_index,
    value_index_cache_info,
)

__all__ = [
    "ValueIndex",
    "ValueIndexCacheInfo",
    "cached_value_index",
    "get_value_index",
    "seed_value_index",
    "clear_value_index_cache",
    "value_index_cache_info",
]
