"""Typed value indexes: per-path equality and range over associations.

The index covers exactly the search surface of the ``=`` predicate's
scan semantics (:meth:`QueryProcessor._condition_closure`): every
(OID, string) association of every string relation — attribute values
*and* character data.  A probe therefore returns byte-identical node
sets to the full scan, which is what lets the planner swap one for the
other without changing answers.

Layout mirrors :mod:`repro.fulltext.index`: per-path frozen parallel
columns (OIDs and values) with the probe structures — the global
value → OID-set dictionary, per-path sorted pairs, numeric projections
— derived lazily, so snapshot loads stay O(bytes).  The same
generation-keyed cache discipline applies: :func:`get_value_index`
reuses, patches forward over the mutation journal, or rebuilds;
:func:`seed_value_index` installs a deserialized index without a
build.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)
from weakref import WeakKeyDictionary

from ..monet.engine import MonetXML

__all__ = [
    "ValueIndex",
    "ValueIndexCacheInfo",
    "get_value_index",
    "seed_value_index",
    "clear_value_index_cache",
    "value_index_cache_info",
]


def _numeric(value: str) -> Optional[float]:
    """The numeric reading of a value, or ``None`` if it has none."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


class _PathValues:
    """Frozen per-path columns: parallel OID/value arrays plus probes.

    Builds populate the columns eagerly; the sorted string pairs and
    the numeric projection (only values that parse as numbers) are
    derived lazily on the first range probe.
    """

    __slots__ = ("oids", "values", "_sorted", "_numeric", "_string_only")

    def __init__(self, oids: Sequence[int], values: Sequence[str]):
        self.oids = oids
        self.values = values
        self._sorted: Optional[List[Tuple[str, int]]] = None
        self._numeric: Optional[List[Tuple[float, int]]] = None
        self._string_only: Optional[List[Tuple[str, int]]] = None

    @property
    def sorted_pairs(self) -> List[Tuple[str, int]]:
        cached = self._sorted
        if cached is None:
            cached = self._sorted = sorted(zip(self.values, self.oids))
        return cached

    @property
    def numeric_pairs(self) -> List[Tuple[float, int]]:
        cached = self._numeric
        if cached is None:
            pairs = []
            for value, oid in zip(self.values, self.oids):
                number = _numeric(value)
                if number is not None:
                    pairs.append((number, oid))
            pairs.sort()
            cached = self._numeric = pairs
        return cached

    @property
    def string_only_pairs(self) -> List[Tuple[str, int]]:
        """Sorted (value, OID) pairs of values with *no* numeric reading.

        Against a numeric literal these compare as strings while the
        numeric values compare as numbers — the mixed-typed rule of
        :func:`repro.query.ast.compare_values`.
        """
        cached = self._string_only
        if cached is None:
            pairs = [
                (value, oid)
                for value, oid in zip(self.values, self.oids)
                if _numeric(value) is None
            ]
            pairs.sort()
            cached = self._string_only = pairs
        return cached

    def __len__(self) -> int:
        return len(self.oids)


class ValueIndex:
    """value → OIDs over every string relation, grouped by path.

    The OIDs recorded are the association OIDs — for character data the
    ``cdata`` node, for an attribute value the owning element — exactly
    what ``BAT.select_eq`` yields, so an equality probe reproduces the
    scan closure of the ``=`` predicate verbatim.

    ``declared`` carries the per-collection index declarations (path
    pattern strings); the in-memory index always covers every path —
    declarations gate snapshot persistence and planner eagerness, not
    coverage, so probe answers never depend on what was declared.
    """

    def __init__(self, store: MonetXML, declared: Sequence[str] = ()):
        self.store = store
        self.declared: Tuple[str, ...] = tuple(declared)
        #: Store generation this index was built against.
        self.generation = getattr(store, "generation", 0)
        self._paths: Dict[int, _PathValues] = {}
        self._entry_count = 0
        self._eq: Optional[Dict[str, FrozenSet[int]]] = None
        self._build()

    def _build(self) -> None:
        global _builds
        _builds += 1
        for pid, relation in self.store.string_relations():
            oids = array("q")
            values: List[str] = []
            for oid, value in relation:
                oids.append(oid)
                values.append(value)
            if oids:
                self._paths[pid] = _PathValues(oids, values)
                self._entry_count += len(oids)

    # -- persistence (the snapshot store's contract) --------------------
    def iter_path_columns(
        self,
    ) -> Iterator[Tuple[int, Sequence[int], Sequence[str]]]:
        """(pid, OID column, value column) per path, in pid order.

        The snapshot writer serializes exactly these columns; the probe
        structures (equality map, sorted pairs, numeric projection) are
        derivable and not part of the on-disk contract.
        """
        for pid in sorted(self._paths):
            entry = self._paths[pid]
            yield pid, entry.oids, entry.values

    @classmethod
    def from_path_columns(
        cls,
        store: MonetXML,
        path_columns: Iterable[Tuple[int, Sequence[int], Sequence[str]]],
        *,
        declared: Sequence[str] = (),
    ) -> "ValueIndex":
        """Rebind deserialized path columns as a ready index.

        No string relation is scanned (the build counter stays
        untouched); probe structures materialize lazily on first use.
        """
        self = cls.__new__(cls)
        self.store = store
        self.declared = tuple(declared)
        self.generation = getattr(store, "generation", 0)
        self._paths = {}
        self._entry_count = 0
        self._eq = None
        for pid, oids, values in path_columns:
            self._paths[pid] = _PathValues(oids, values)
            self._entry_count += len(oids)
        return self

    # -- incremental maintenance ----------------------------------------
    def patched(self, records: Iterable[object]) -> "ValueIndex":
        """A copy of this index rolled forward over mutation records.

        Put records contribute their ``added_strings`` associations;
        delete records prune entries by tombstoned OID span.  The
        receiver is left untouched — the copy shares the columns of
        unaffected paths — so racing readers can each patch the cached
        index and install their copy without observing a half-patched
        structure.
        """
        clone = ValueIndex.__new__(ValueIndex)
        clone.store = self.store
        clone.declared = self.declared
        clone.generation = self.generation
        clone._entry_count = self._entry_count
        clone._paths = dict(self._paths)
        clone._eq = None
        for record in records:
            kind = getattr(record, "kind", None)
            if kind == "put":
                pending: Dict[int, Tuple[List[int], List[str]]] = {}
                for attr_pid, oid, value in record.added_strings:
                    columns = pending.get(attr_pid)
                    if columns is None:
                        pending[attr_pid] = columns = ([], [])
                    columns[0].append(oid)
                    columns[1].append(value)
                    clone._entry_count += 1
                for attr_pid, (oids, values) in pending.items():
                    entry = clone._paths.get(attr_pid)
                    if entry is None:
                        clone._paths[attr_pid] = _PathValues(
                            array("q", oids), values
                        )
                    else:
                        merged_oids = array("q", entry.oids)
                        merged_oids.extend(oids)
                        merged_values = list(entry.values)
                        merged_values.extend(values)
                        clone._paths[attr_pid] = _PathValues(
                            merged_oids, merged_values
                        )
            elif kind == "delete":
                low, high = record.span
                for pid, entry in list(clone._paths.items()):
                    if not any(low <= oid <= high for oid in entry.oids):
                        continue
                    kept_oids = array("q")
                    kept_values: List[str] = []
                    for oid, value in zip(entry.oids, entry.values):
                        if low <= oid <= high:
                            clone._entry_count -= 1
                            continue
                        kept_oids.append(oid)
                        kept_values.append(value)
                    if kept_oids:
                        clone._paths[pid] = _PathValues(kept_oids, kept_values)
                    else:
                        del clone._paths[pid]
            else:  # pragma: no cover - journal only holds put/delete
                raise ValueError(f"unknown mutation record {record!r}")
            clone.generation = record.to_generation
        return clone

    # -- statistics ------------------------------------------------------
    @property
    def entry_count(self) -> int:
        """Indexed associations across every path."""
        return self._entry_count

    @property
    def path_count(self) -> int:
        return len(self._paths)

    def path_entry_count(self, pid: int) -> int:
        entry = self._paths.get(pid)
        return 0 if entry is None else len(entry)

    def value_frequency(self, value: str) -> int:
        """Associations carrying exactly this value (cheap after warm-up)."""
        return len(self.lookup_eq(value))

    def estimate_eq(self, value: str) -> int:
        """Exact distinct-OID count of an equality probe (O(1) when warm)."""
        return len(self._equality_map().get(value, ()))

    def estimate_cmp(self, op: str, literal: str) -> int:
        """Entry count a range probe would touch (an upper bound on OIDs).

        Counts matching (value, OID) entries via bisection without
        materializing the result set; duplicate OIDs across paths make
        this an upper bound on the distinct-OID answer.
        """
        if op not in ("<", "<=", ">", ">="):
            raise ValueError(f"unknown range operator {op!r}")
        literal_num = _numeric(literal)
        total = 0

        def span(pairs, key) -> int:
            if op == "<":
                return bisect_left(pairs, (key,))
            if op == "<=":
                return bisect_right(pairs, (key, float("inf")))
            if op == ">":
                return len(pairs) - bisect_right(pairs, (key, float("inf")))
            return len(pairs) - bisect_left(pairs, (key,))

        for entry in self._paths.values():
            if literal_num is None:
                total += span(entry.sorted_pairs, literal)
            else:
                total += span(entry.numeric_pairs, literal_num)
                total += span(entry.string_only_pairs, literal)
        return total

    # -- probes ----------------------------------------------------------
    def _equality_map(self) -> Dict[str, FrozenSet[int]]:
        cached = self._eq
        if cached is None:
            pending: Dict[str, Set[int]] = {}
            for entry in self._paths.values():
                for oid, value in zip(entry.oids, entry.values):
                    bucket = pending.get(value)
                    if bucket is None:
                        pending[value] = bucket = set()
                    bucket.add(oid)
            cached = self._eq = {
                value: frozenset(oids) for value, oids in pending.items()
            }
        return cached

    def lookup_eq(
        self, value: str, pids: Optional[Iterable[int]] = None
    ) -> FrozenSet[int]:
        """OIDs carrying an association exactly equal to ``value``.

        With ``pids`` the probe is restricted to those paths (the typed
        per-path form); without, it spans every string relation — the
        same node set the ``=`` scan closure produces.
        """
        if pids is None:
            return self._equality_map().get(value, frozenset())
        hits: Set[int] = set()
        for pid in pids:
            entry = self._paths.get(pid)
            if entry is None:
                continue
            pairs = entry.sorted_pairs
            start = bisect_left(pairs, (value,))
            for candidate, oid in pairs[start:]:
                if candidate != value:
                    break
                hits.add(oid)
        return frozenset(hits)

    def lookup_cmp(
        self, op: str, literal: str, pids: Optional[Iterable[int]] = None
    ) -> FrozenSet[int]:
        """OIDs whose value satisfies ``value <op> literal`` (typed rule).

        Implements :func:`repro.query.ast.compare_values` exactly: a
        numeric literal compares numerically against numeric values and
        lexicographically against the rest; a non-numeric literal
        compares everything lexicographically.  The scan closure of a
        range predicate and this probe therefore agree byte-for-byte.
        """
        if op not in ("<", "<=", ">", ">="):
            raise ValueError(f"unknown range operator {op!r}")
        selected = (
            self._paths.values()
            if pids is None
            else [self._paths[pid] for pid in pids if pid in self._paths]
        )
        literal_num = _numeric(literal)
        hits: Set[int] = set()

        def collect(pairs, key) -> None:
            if op == "<":
                span = pairs[: bisect_left(pairs, (key,))]
            elif op == "<=":
                span = pairs[: bisect_right(pairs, (key, float("inf")))]
            elif op == ">":
                span = pairs[bisect_right(pairs, (key, float("inf"))) :]
            else:  # ">="
                span = pairs[bisect_left(pairs, (key,)) :]
            for _value, oid in span:
                hits.add(oid)

        for entry in selected:
            if literal_num is None:
                collect(entry.sorted_pairs, literal)
            else:
                collect(entry.numeric_pairs, literal_num)
                collect(entry.string_only_pairs, literal)
        return frozenset(hits)

    def lookup_range(
        self,
        low: Optional[str] = None,
        high: Optional[str] = None,
        *,
        numeric: bool = False,
        pids: Optional[Iterable[int]] = None,
    ) -> FrozenSet[int]:
        """OIDs with a value in the inclusive ``[low, high]`` interval.

        String ranges compare lexicographically over the raw values;
        numeric ranges compare the parsed-number projection (values
        without a numeric reading never match).  ``None`` bounds are
        open ends.
        """
        if numeric:
            low_key = None if low is None else _numeric(low)
            high_key = None if high is None else _numeric(high)
            if (low is not None and low_key is None) or (
                high is not None and high_key is None
            ):
                raise ValueError(
                    "numeric range bounds must parse as numbers: "
                    f"low={low!r} high={high!r}"
                )
        else:
            low_key, high_key = low, high
        selected = (
            self._paths.values()
            if pids is None
            else [
                self._paths[pid] for pid in pids if pid in self._paths
            ]
        )
        hits: Set[int] = set()
        for entry in selected:
            pairs = entry.numeric_pairs if numeric else entry.sorted_pairs
            start = 0 if low_key is None else bisect_left(pairs, (low_key,))
            if high_key is None:
                stop = len(pairs)
            else:
                stop = bisect_right(pairs, (high_key, float("inf")))
            for _value, oid in pairs[start:stop]:
                hits.add(oid)
        return frozenset(hits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ValueIndex(paths={len(self._paths)}, "
            f"entries={self._entry_count}, gen={self.generation})"
        )


# ---------------------------------------------------------------------------
# Per-store cache, keyed on store identity + generation.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ValueIndexCacheInfo:
    """Counters of the per-store index cache (for tests and benches)."""

    builds: int
    hits: int
    currsize: int
    patches: int = 0


_cache: "WeakKeyDictionary[MonetXML, ValueIndex]" = WeakKeyDictionary()
_builds = 0
_hits = 0
_patches = 0

#: Above this tombstone density an invalidated index rebuilds from the
#: (already pruned) relations instead of patching forward — the patch
#: would carry too much dead weight.
REBUILD_DENSITY = 0.25


def _journal_chain(store: MonetXML, generation: int):
    """Mutation records bridging ``generation`` → the store's current one.

    ``None`` when no contiguous chain exists (journal evicted, store
    without a journal, or a gap) — the caller must rebuild.
    """
    current = getattr(store, "generation", 0)
    if generation == current:
        return []
    chain = []
    expected = generation
    for record in getattr(store, "journal", ()):
        from_generation = getattr(record, "from_generation", None)
        if from_generation is None:
            return None
        if not chain and from_generation != expected:
            continue
        if chain and from_generation != expected:
            return None
        chain.append(record)
        expected = record.to_generation
    if not chain or expected != current:
        return None
    return chain


def get_value_index(
    store: MonetXML, declared: Sequence[str] = ()
) -> ValueIndex:
    """The cached :class:`ValueIndex` of a store, (re)built on demand.

    Keyed on the store object (weakly) and its ``generation``: every
    engine / processor serving the same store shares one index, and
    :meth:`~repro.monet.engine.MonetXML.invalidate_caches`
    transparently yields a fresh one on next use.  When the store's
    mutation journal bridges the cached index's generation to the
    current one and tombstone density is below :data:`REBUILD_DENSITY`,
    the index is patched forward instead of rebuilt.

    Values are matched exactly (``BAT.select_eq`` semantics), so there
    is no case-mode key — one index per store.
    """
    global _hits, _patches
    cached = _cache.get(store)
    if cached is not None and cached.generation == getattr(store, "generation", 0):
        _hits += 1
        return cached
    if cached is not None and getattr(store, "dead_fraction", 1.0) <= REBUILD_DENSITY:
        chain = _journal_chain(store, cached.generation)
        if chain is not None:
            index = cached.patched(chain)
            _cache[store] = index
            _patches += 1
            return index
    index = ValueIndex(store, declared=declared)
    _cache[store] = index
    return index


def seed_value_index(store: MonetXML, index: ValueIndex) -> None:
    """Install a ready index into the per-store cache without a build.

    The snapshot loader's hook: an index deserialized via
    :meth:`ValueIndex.from_path_columns` is registered so every
    subsequent :func:`get_value_index` call is a cache hit.  Neither
    the build nor the hit counter moves, keeping the "zero
    constructions on warm start" property testable.
    """
    if index.store is not store:
        raise ValueError("cannot seed the cache with an index of another store")
    index.generation = getattr(store, "generation", 0)
    _cache[store] = index


def cached_value_index(store: MonetXML) -> Optional[ValueIndex]:
    """The cached index if it is current for the store, else ``None``.

    A pure peek — never builds, never patches, moves no counters.  The
    planner uses it to tell "a probe is free" from "a probe would first
    pay a full build".
    """
    cached = _cache.get(store)
    if cached is not None and cached.generation == getattr(store, "generation", 0):
        return cached
    return None


def clear_value_index_cache() -> None:
    """Drop every cached index and reset the counters (test isolation)."""
    global _builds, _hits, _patches
    _cache.clear()
    _builds = 0
    _hits = 0
    _patches = 0


def value_index_cache_info() -> ValueIndexCacheInfo:
    return ValueIndexCacheInfo(
        builds=_builds,
        hits=_hits,
        currsize=len(_cache),
        patches=_patches,
    )
