"""Nodes of the conceptual syntax tree (Definition 1).

A node carries the pieces Definition 1 assigns through the functions
``label_E`` (element tag), ``label_A`` (attribute/value pairs) and
``rank`` (sibling order).  Character data is modelled, as in the paper,
as the special attribute ``cdata`` of a node — we expose it separately
for convenience but it is stored alongside ordinary attributes in the
Monet transform.

Nodes are plain mutable objects while a document is being built; once a
:class:`repro.datamodel.document.Document` freezes them they should be
treated as read-only (the library never mutates a frozen node).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

__all__ = ["Node", "CDATA_ATTRIBUTE"]

#: The reserved attribute name under which character data is stored.
CDATA_ATTRIBUTE = "cdata"


class Node:
    """One node of the XML syntax tree.

    Parameters
    ----------
    label:
        The element tag (``label_E`` of Def. 1).
    attributes:
        Attribute name → value mapping (``label_A``).  May include the
        reserved ``cdata`` key; prefer the :attr:`text` property.
    rank:
        Position among siblings, 0-based (``rank`` of Def. 1).
    """

    __slots__ = ("oid", "label", "attributes", "rank", "parent", "children")

    def __init__(
        self,
        label: str,
        attributes: Optional[Dict[str, str]] = None,
        rank: int = 0,
    ):
        if not label:
            raise ValueError("node label must be non-empty")
        self.oid: int = -1  # assigned by Document.freeze()
        self.label = label
        self.attributes: Dict[str, str] = dict(attributes or {})
        self.rank = rank
        self.parent: Optional["Node"] = None
        self.children: List["Node"] = []

    # -- text ------------------------------------------------------------
    @property
    def text(self) -> Optional[str]:
        """Character data of this node (the ``cdata`` attribute), if any."""
        return self.attributes.get(CDATA_ATTRIBUTE)

    @text.setter
    def text(self, value: Optional[str]) -> None:
        if value is None:
            self.attributes.pop(CDATA_ATTRIBUTE, None)
        else:
            self.attributes[CDATA_ATTRIBUTE] = value

    @property
    def string_value(self) -> Optional[str]:
        """Value of a materialized ``cdata`` node (its ``string`` attribute)."""
        return self.attributes.get("string")

    @property
    def plain_attributes(self) -> Dict[str, str]:
        """Attributes without the reserved ``cdata`` entry."""
        return {
            name: value
            for name, value in self.attributes.items()
            if name != CDATA_ATTRIBUTE
        }

    # -- tree construction -------------------------------------------------
    def append(self, child: "Node") -> "Node":
        """Attach ``child`` as the last child; returns the child."""
        child.parent = self
        child.rank = len(self.children)
        self.children.append(child)
        return child

    def extend(self, children) -> None:
        for child in children:
            self.append(child)

    # -- traversal -----------------------------------------------------
    def iter_preorder(self) -> Iterator["Node"]:
        """Yield this node and all descendants in document order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_ancestors(self, include_self: bool = False) -> Iterator["Node"]:
        """Yield ancestors walking towards the root."""
        node = self if include_self else self.parent
        while node is not None:
            yield node
            node = node.parent

    def depth(self) -> int:
        """1-based depth: the root has depth 1 (matches ``len(path)``)."""
        return sum(1 for _ in self.iter_ancestors(include_self=True))

    def is_leaf(self) -> bool:
        return not self.children

    def subtree_size(self) -> int:
        return sum(1 for _ in self.iter_preorder())

    # -- convenience ---------------------------------------------------
    def find(self, label: str) -> Optional["Node"]:
        """First child with the given label, or ``None``."""
        for child in self.children:
            if child.label == label:
                return child
        return None

    def find_all(self, label: str) -> List["Node"]:
        """All children with the given label, in document order."""
        return [child for child in self.children if child.label == label]

    def descendant_text(self) -> str:
        """All character data in the subtree, in document order, joined."""
        pieces = [
            node.text for node in self.iter_preorder() if node.text is not None
        ]
        return " ".join(pieces)

    def __repr__(self) -> str:
        text = f" text={self.text!r}" if self.text is not None else ""
        return (
            f"<Node oid={self.oid} label={self.label!r} "
            f"children={len(self.children)}{text}>"
        )
