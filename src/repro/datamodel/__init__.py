"""Conceptual XML data model (paper §2, Definitions 1–3 and 5).

Public surface:

* :class:`Node`, :class:`Document` — the rooted labelled tree with
  depth-first OIDs, attributes, materialized ``cdata`` nodes and
  sibling ranks.
* :class:`Path`, :class:`Step` and the prefix order helpers
  (:func:`prefix_leq`, :func:`longest_common_prefix`).
* :func:`parse_document` / :func:`serialize` — XML text round-trip.
* :class:`DocumentBuilder` — fluent programmatic construction.
"""

from .builder import DocumentBuilder, element
from .document import CDATA_LABEL, STRING_ATTRIBUTE, Document
from .errors import (
    ModelError,
    QueryError,
    QueryPlanError,
    QuerySyntaxError,
    ReproError,
    StorageError,
    UnknownOIDError,
    UnknownPathError,
    XMLParseError,
)
from .node import CDATA_ATTRIBUTE, Node
from .parser import parse_document, parse_fragment
from .paths import (
    ATTRIBUTE,
    ELEMENT,
    Path,
    Step,
    is_prefix,
    longest_common_prefix,
    prefix_leq,
    relative_suffix,
)
from .serializer import serialize, serialize_node

__all__ = [
    "ATTRIBUTE",
    "CDATA_ATTRIBUTE",
    "CDATA_LABEL",
    "Document",
    "DocumentBuilder",
    "ELEMENT",
    "ModelError",
    "Node",
    "Path",
    "QueryError",
    "QueryPlanError",
    "QuerySyntaxError",
    "ReproError",
    "STRING_ATTRIBUTE",
    "Step",
    "StorageError",
    "UnknownOIDError",
    "UnknownPathError",
    "XMLParseError",
    "element",
    "is_prefix",
    "longest_common_prefix",
    "parse_document",
    "parse_fragment",
    "prefix_leq",
    "relative_suffix",
    "serialize",
    "serialize_node",
]
