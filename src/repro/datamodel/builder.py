"""A small fluent builder for constructing documents programmatically.

The datasets package and many tests construct trees by hand; the
builder keeps that readable::

    doc = (DocumentBuilder("bibliography")
           .down("article", key="BB99")
           .leaf("author", "Ben Bit")
           .leaf("year", "1999")
           .up()
           .build())

``down`` descends into a fresh child, ``up`` returns to the parent,
``leaf`` adds a child carrying character data without descending.
"""

from __future__ import annotations

from typing import List, Optional

from .document import Document
from .node import Node

__all__ = ["DocumentBuilder", "element"]


def element(label: str, text: Optional[str] = None, **attributes: str) -> Node:
    """Create a free-standing node; keyword arguments become attributes."""
    node = Node(label, attributes=dict(attributes))
    if text is not None:
        node.text = text
    return node


class DocumentBuilder:
    """Stack-based tree builder; see module docstring for the idiom."""

    def __init__(self, root_label: str, **attributes: str):
        self._root = element(root_label, **attributes)
        self._stack: List[Node] = [self._root]
        self._built = False

    @property
    def current(self) -> Node:
        """The node new children are appended to."""
        return self._stack[-1]

    def down(self, label: str, text: Optional[str] = None, **attributes: str):
        """Append a child and descend into it."""
        child = element(label, text, **attributes)
        self.current.append(child)
        self._stack.append(child)
        return self

    def leaf(self, label: str, text: Optional[str] = None, **attributes: str):
        """Append a child without descending."""
        self.current.append(element(label, text, **attributes))
        return self

    def text(self, value: str):
        """Set character data on the current node."""
        self.current.text = value
        return self

    def attr(self, name: str, value: str):
        """Set an attribute on the current node."""
        self.current.attributes[name] = value
        return self

    def up(self, levels: int = 1):
        """Ascend ``levels`` levels; never above the root."""
        for _ in range(levels):
            if len(self._stack) == 1:
                raise ValueError("cannot ascend above the document root")
            self._stack.pop()
        return self

    def subtree(self, node: Node):
        """Graft a pre-built subtree under the current node."""
        self.current.append(node)
        return self

    def build(self, first_oid: int = 0) -> Document:
        """Freeze and return the document.  The builder is single-use."""
        if self._built:
            raise ValueError("builder already consumed by build()")
        self._built = True
        return Document(self._root, first_oid=first_oid)
