"""Exception hierarchy for the :mod:`repro` data model.

All exceptions raised by the library derive from :class:`ReproError`
so callers can catch a single base class.  Parsing problems carry the
position in the source text; model problems carry the offending OID or
path where available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class XMLParseError(ReproError):
    """A syntactic problem in an XML source text.

    Attributes
    ----------
    line, column:
        1-based position of the problem in the source text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class ModelError(ReproError):
    """A structural violation of the conceptual data model (Def. 1)."""


class UnknownOIDError(ModelError):
    """An OID was used that does not denote a node of the document."""

    def __init__(self, oid: int):
        self.oid = oid
        super().__init__(f"unknown OID: {oid!r}")


class UnknownPathError(ModelError):
    """A path was referenced that is absent from the path summary."""

    def __init__(self, path):
        self.path = path
        super().__init__(f"unknown path: {path!r}")


class QueryError(ReproError):
    """Base class for query-language front-end errors."""


class QuerySyntaxError(QueryError):
    """The query text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1):
        self.position = position
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class QueryPlanError(QueryError):
    """The query is well-formed but cannot be planned against the store."""


class StorageError(ReproError):
    """Persisting or loading a database image failed."""


class DocumentError(ReproError):
    """A document-level mutation (put/delete/replace) was rejected."""


class UnknownDocumentError(DocumentError):
    """A named document was referenced that the collection does not hold."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"unknown document: {name!r}")


class DuplicateDocumentError(DocumentError):
    """``put`` was asked to create a document name that already exists."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(
            f"document {name!r} already exists (use replace to overwrite)"
        )
