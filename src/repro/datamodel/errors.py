"""Exception hierarchy for the :mod:`repro` data model.

All exceptions raised by the library derive from :class:`ReproError`
so callers can catch a single base class.  Parsing problems carry the
position in the source text; model problems carry the offending OID or
path where available.

Every class carries a machine-readable :attr:`ReproError.code` (a
stable snake_case string) and a :attr:`ReproError.retryable` flag.
The HTTP error envelope exposes both, so clients can tell a fault
worth retrying (``shard_unavailable``, ``deadline_exceeded``,
``overloaded`` — raised by the execution and admission layers) from a
fatal one (``query_error``, ``unknown_document``, ...) without
parsing prose.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library.

    Attributes
    ----------
    code:
        Stable machine-readable identifier of the error class.
    retryable:
        Whether an identical request may succeed if simply retried
        (transient serving-side faults, not client mistakes).
    """

    code: str = "error"
    retryable: bool = False


class XMLParseError(ReproError):
    """A syntactic problem in an XML source text.

    Attributes
    ----------
    line, column:
        1-based position of the problem in the source text.
    """

    code = "xml_parse_error"

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class ModelError(ReproError):
    """A structural violation of the conceptual data model (Def. 1)."""

    code = "model_error"


class UnknownOIDError(ModelError):
    """An OID was used that does not denote a node of the document."""

    def __init__(self, oid: int):
        self.oid = oid
        super().__init__(f"unknown OID: {oid!r}")


class UnknownPathError(ModelError):
    """A path was referenced that is absent from the path summary."""

    def __init__(self, path):
        self.path = path
        super().__init__(f"unknown path: {path!r}")


class QueryError(ReproError):
    """Base class for query-language front-end errors."""

    code = "query_error"


class QuerySyntaxError(QueryError):
    """The query text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1):
        self.position = position
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class QueryPlanError(QueryError):
    """The query is well-formed but cannot be planned against the store."""


class StorageError(ReproError):
    """Persisting or loading a database image failed."""

    code = "storage_error"


class DocumentError(ReproError):
    """A document-level mutation (put/delete/replace) was rejected."""

    code = "document_error"


class UnknownDocumentError(DocumentError):
    """A named document was referenced that the collection does not hold."""

    code = "unknown_document"

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"unknown document: {name!r}")


class DuplicateDocumentError(DocumentError):
    """``put`` was asked to create a document name that already exists."""

    code = "duplicate_document"

    def __init__(self, name: str):
        self.name = name
        super().__init__(
            f"document {name!r} already exists (use replace to overwrite)"
        )
