"""Serialize the conceptual model back to XML text.

Materialized ``cdata`` nodes become character data again; every other
node becomes an element with its plain attributes.  Output is
deterministic: attributes are emitted in insertion order, children in
rank order.  ``indent=None`` produces canonical single-line output
(used by the round-trip property tests); an integer produces
pretty-printed output for humans.
"""

from __future__ import annotations

from typing import List, Optional

from .document import CDATA_LABEL, Document
from .node import Node

__all__ = ["serialize", "serialize_node", "escape_text", "escape_attribute"]


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape an attribute value for double-quoted output."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
    )


def _open_tag(node: Node) -> str:
    parts = [node.label]
    for name, value in node.attributes.items():
        parts.append(f'{name}="{escape_attribute(value)}"')
    return "<" + " ".join(parts) + ">"


def _write_node(node: Node, out: List[str], indent: Optional[int], level: int) -> None:
    """Iterative writer (documents can be deeper than Python's stack)."""
    stack: List[tuple] = [("node", node, level)]
    while stack:
        kind, payload, current_level = stack.pop()
        if kind == "raw":
            out.append(payload)
            continue
        current: Node = payload
        pad = "" if indent is None else "\n" + " " * (indent * current_level)
        if current.label == CDATA_LABEL:
            out.append(pad)
            out.append(escape_text(current.string_value or ""))
            continue
        if not current.children:
            parts = [current.label]
            for name, value in current.attributes.items():
                parts.append(f'{name}="{escape_attribute(value)}"')
            out.append(pad)
            out.append("<" + " ".join(parts) + "/>")
            continue
        out.append(pad)
        out.append(_open_tag(current))
        only_text = all(
            child.label == CDATA_LABEL for child in current.children
        )
        if only_text:
            # Keep text inline so round-trips stay whitespace-exact.
            for child in current.children:
                out.append(escape_text(child.string_value or ""))
            out.append(f"</{current.label}>")
            continue
        close = f"</{current.label}>"
        if indent is not None:
            close = "\n" + " " * (indent * current_level) + close
        stack.append(("raw", close, 0))
        for child in reversed(current.children):
            stack.append(("node", child, current_level + 1))


def serialize_node(node: Node, indent: Optional[int] = None) -> str:
    """Serialize a subtree to XML text."""
    out: List[str] = []
    _write_node(node, out, indent, 0)
    text = "".join(out)
    return text.lstrip("\n") if indent is not None else text


def serialize(
    document: Document, indent: Optional[int] = None, declaration: bool = False
) -> str:
    """Serialize a document; optionally prepend the XML declaration."""
    body = serialize_node(document.root, indent=indent)
    if declaration:
        return '<?xml version="1.0" encoding="UTF-8"?>\n' + body
    return body
