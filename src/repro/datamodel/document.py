"""The rooted-tree XML document of Definition 1.

``Document`` wraps a tree of :class:`~repro.datamodel.node.Node` and,
once frozen, assigns depth-first pre-order OIDs (the paper: "the
assignment of OIDs is arbitrary, e.g., depth-first traversal order"),
caches per-node paths, and answers the conceptual-model queries that
the rest of the library builds on: node-by-OID, parent-of, path-of.

The physical counterpart (binary associations partitioned by path) is
produced from a frozen document by
:func:`repro.monet.transform.monet_transform`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .errors import ModelError, UnknownOIDError
from .node import CDATA_ATTRIBUTE, Node
from .paths import Path

__all__ = ["Document", "CDATA_LABEL", "STRING_ATTRIBUTE"]

#: Label of materialized character-data nodes (Figure 1 of the paper).
CDATA_LABEL = "cdata"

#: Attribute name carrying the value of a cdata node; the Monet
#: transform turns it into the ``.../cdata@string`` relations of Fig. 2.
STRING_ATTRIBUTE = "string"


class Document:
    """A frozen XML document: rooted, ordered, labelled tree with OIDs.

    Build the tree with :class:`~repro.datamodel.node.Node` /
    :mod:`~repro.datamodel.builder`, then construct a ``Document`` from
    the root.  Construction *freezes* the tree: OIDs are assigned in
    depth-first pre-order starting at ``first_oid`` and structural
    indexes are built.  Mutating the tree afterwards is undefined
    behaviour.
    """

    def __init__(self, root: Node, first_oid: int = 0, normalize_cdata: bool = True):
        if root.parent is not None:
            raise ModelError("document root must not have a parent")
        self.root = root
        self.first_oid = first_oid
        self._nodes: List[Node] = []
        self._paths: List[Path] = []
        if normalize_cdata:
            self._normalize_cdata()
        self._freeze()

    # -- construction ----------------------------------------------------
    def _normalize_cdata(self) -> None:
        """Materialize ``cdata`` attributes as explicit ``cdata`` nodes.

        Definition 1 models character data as a special ``cdata``
        attribute; the paper's Figures 1 and 2 materialize it as a
        dedicated ``cdata`` *node* whose value hangs off the node via a
        ``string`` association (relation ``.../cdata@string``).  This
        normalization converts the attribute form into the node form so
        a single uniform transform rule reproduces Figure 2 exactly.
        Idempotent; appends the cdata child after existing children.
        """
        for node in list(self.root.iter_preorder()):
            value = node.attributes.pop(CDATA_ATTRIBUTE, None)
            if value is None:
                continue
            if node.label == CDATA_LABEL:
                # Already a cdata node carrying its value directly.
                node.attributes[STRING_ATTRIBUTE] = value
                continue
            cdata = Node(CDATA_LABEL, attributes={STRING_ATTRIBUTE: value})
            node.append(cdata)

    def _freeze(self) -> None:
        """Assign pre-order OIDs and compute π(o) for every node."""
        oid = self.first_oid
        stack: List[tuple[Node, Path]] = [(self.root, Path.root(self.root.label))]
        while stack:
            node, path = stack.pop()
            node.oid = oid
            oid += 1
            self._nodes.append(node)
            self._paths.append(path)
            for child in reversed(node.children):
                stack.append((child, path.child(child.label)))

    # -- size ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def last_oid(self) -> int:
        return self.first_oid + len(self._nodes) - 1

    # -- lookups -----------------------------------------------------------
    def node(self, oid: int) -> Node:
        """The node with the given OID.

        Raises :class:`~repro.datamodel.errors.UnknownOIDError` for OIDs
        outside the document.
        """
        index = oid - self.first_oid
        if 0 <= index < len(self._nodes):
            return self._nodes[index]
        raise UnknownOIDError(oid)

    def __contains__(self, oid: object) -> bool:
        if not isinstance(oid, int):
            return False
        return self.first_oid <= oid <= self.last_oid

    def path(self, oid: int) -> Path:
        """π(o): the label path from the root to the node (Def. 3)."""
        index = oid - self.first_oid
        if 0 <= index < len(self._paths):
            return self._paths[index]
        raise UnknownOIDError(oid)

    def parent_oid(self, oid: int) -> Optional[int]:
        """OID of the parent node, or ``None`` for the root."""
        parent = self.node(oid).parent
        return None if parent is None else parent.oid

    def depth(self, oid: int) -> int:
        """Depth of a node = length of its path; the root has depth 1."""
        return len(self.path(oid))

    # -- traversal ---------------------------------------------------------
    def iter_nodes(self) -> Iterator[Node]:
        """All nodes in document (pre-)order."""
        return iter(self._nodes)

    def iter_oids(self) -> Iterator[int]:
        return iter(range(self.first_oid, self.first_oid + len(self._nodes)))

    def nodes_with_label(self, label: str) -> List[Node]:
        return [node for node in self._nodes if node.label == label]

    def nodes_on_path(self, path: Path) -> List[Node]:
        """All nodes whose π equals the given path, in document order."""
        return [
            node
            for node, node_path in zip(self._nodes, self._paths)
            if node_path == path
        ]

    # -- conceptual-model helpers -----------------------------------------
    def ancestry(self, oid: int) -> List[int]:
        """OIDs from the node up to the root, inclusive (instance path)."""
        chain = [oid]
        node = self.node(oid)
        for ancestor in node.iter_ancestors():
            chain.append(ancestor.oid)
        return chain

    def is_ancestor(self, ancestor_oid: int, descendant_oid: int) -> bool:
        """``True`` iff the first node lies on the root path of the second.

        A node is considered its own ancestor (matches the reflexive
        prefix order of Def. 5).
        """
        node: Optional[Node] = self.node(descendant_oid)
        while node is not None:
            if node.oid == ancestor_oid:
                return True
            node = node.parent
        return False

    def document_order(self, oid: int) -> int:
        """Position of a node in document order (== OID offset here)."""
        if oid not in self:
            raise UnknownOIDError(oid)
        return oid - self.first_oid

    def path_summary_counts(self) -> Dict[Path, int]:
        """How many instance nodes sit on each distinct path."""
        counts: Dict[Path, int] = {}
        for path in self._paths:
            counts[path] = counts.get(path, 0) + 1
        return counts

    def distinct_paths(self) -> List[Path]:
        """The document's path summary, in first-appearance order."""
        seen: Dict[Path, None] = {}
        for path in self._paths:
            seen.setdefault(path)
        return list(seen)

    def __repr__(self) -> str:
        return (
            f"<Document root={self.root.label!r} nodes={len(self._nodes)} "
            f"oids=[{self.first_oid}..{self.last_oid}]>"
        )
