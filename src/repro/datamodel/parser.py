"""A from-scratch XML parser producing the conceptual data model.

The parser handles the XML subset relevant to the paper's workloads:
elements, attributes, character data (including mixed content), CDATA
sections, comments, processing instructions, an (ignored) DOCTYPE, the
five predefined entities and numeric character references.  Namespaces
are treated textually (prefixes stay part of the tag name), matching
the paper's purely label-based model.

Character data chunks become explicit ``cdata`` nodes per Figure 1 of
the paper (see :mod:`repro.datamodel.document`).  Whitespace-only text
between elements is dropped by default (``keep_whitespace=False``)
because the paper's bibliographic documents are data-centric.

The implementation is a hand-written single-pass scanner — no external
dependencies — with precise line/column error reporting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .document import CDATA_LABEL, STRING_ATTRIBUTE, Document
from .errors import XMLParseError
from .node import Node

__all__ = ["parse_document", "parse_fragment", "XMLScanner"]

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "quot": '"',
    "apos": "'",
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:-.")


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class XMLScanner:
    """Low-level cursor over the source text with position tracking."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.length = len(text)

    # -- position --------------------------------------------------------
    def location(self, pos: Optional[int] = None) -> Tuple[int, int]:
        """1-based (line, column) of a source offset."""
        if pos is None:
            pos = self.pos
        line = self.text.count("\n", 0, pos) + 1
        last_newline = self.text.rfind("\n", 0, pos)
        column = pos - last_newline
        return line, column

    def error(self, message: str, pos: Optional[int] = None) -> XMLParseError:
        line, column = self.location(pos)
        return XMLParseError(message, line=line, column=column)

    # -- primitives -----------------------------------------------------
    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < self.length else ""

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def starts_with(self, literal: str) -> bool:
        return self.text.startswith(literal, self.pos)

    def expect(self, literal: str) -> None:
        if not self.starts_with(literal):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def read_until(self, terminator: str) -> str:
        """Consume up to and including ``terminator``; return the body."""
        end = self.text.find(terminator, self.pos)
        if end < 0:
            raise self.error(f"unterminated construct, expected {terminator!r}")
        body = self.text[self.pos:end]
        self.pos = end + len(terminator)
        return body

    def read_name(self) -> str:
        start = self.pos
        if self.at_end() or not _is_name_start(self.peek()):
            raise self.error("expected an XML name")
        self.advance()
        while not self.at_end() and _is_name_char(self.peek()):
            self.advance()
        return self.text[start:self.pos]


def _decode_entity(scanner: XMLScanner) -> str:
    """Decode one ``&...;`` reference; the cursor sits on the ``&``."""
    start = scanner.pos
    scanner.expect("&")
    body = scanner.read_until(";")
    if not body:
        raise scanner.error("empty entity reference", pos=start)
    if body.startswith("#x") or body.startswith("#X"):
        try:
            return chr(int(body[2:], 16))
        except ValueError:
            raise scanner.error(f"bad character reference &{body};", pos=start)
    if body.startswith("#"):
        try:
            return chr(int(body[1:], 10))
        except ValueError:
            raise scanner.error(f"bad character reference &{body};", pos=start)
    try:
        return _PREDEFINED_ENTITIES[body]
    except KeyError:
        raise scanner.error(f"unknown entity &{body};", pos=start)


def _decode_text(raw: str, scanner: XMLScanner, base: int) -> str:
    """Decode entity references inside a text or attribute-value slice."""
    if "&" not in raw:
        return raw
    sub = XMLScanner(raw)
    # Error positions inside the slice map back to the enclosing text.
    out: List[str] = []
    while not sub.at_end():
        ch = sub.peek()
        if ch == "&":
            sub_start = sub.pos
            try:
                out.append(_decode_entity(sub))
            except XMLParseError as exc:
                raise scanner.error(str(exc).split(" (line")[0], pos=base + sub_start)
        else:
            out.append(ch)
            sub.advance()
    return "".join(out)


class _Parser:
    """Recursive-descent XML parser over an :class:`XMLScanner`."""

    def __init__(self, text: str, keep_whitespace: bool):
        self.scanner = XMLScanner(text)
        self.keep_whitespace = keep_whitespace

    # -- top level -------------------------------------------------------
    def parse(self) -> Node:
        """Iterative element parsing with an explicit open-tag stack.

        Documents regularly out-depth Python's recursion limit, so the
        element structure is driven by a loop, not by recursion.
        """
        scanner = self.scanner
        self._skip_misc()
        if scanner.at_end() or scanner.peek() != "<":
            raise scanner.error("expected a root element")
        root, closed = self._parse_start_tag()
        stack: List[Node] = [] if closed else [root]
        while stack:
            current = stack[-1]
            if scanner.at_end():
                raise scanner.error(f"unterminated element <{current.label}>")
            if scanner.starts_with("</"):
                scanner.advance(2)
                end_name = scanner.read_name()
                if end_name != current.label:
                    raise scanner.error(
                        f"mismatched closing tag </{end_name}>, "
                        f"expected </{current.label}>"
                    )
                scanner.skip_whitespace()
                scanner.expect(">")
                stack.pop()
            elif scanner.starts_with("<!--"):
                scanner.advance(4)
                scanner.read_until("-->")
            elif scanner.starts_with("<![CDATA["):
                scanner.advance(9)
                value = scanner.read_until("]]>")
                self._append_text(current, value, decoded=True)
            elif scanner.starts_with("<?"):
                scanner.advance(2)
                scanner.read_until("?>")
            elif scanner.peek() == "<":
                child, child_closed = self._parse_start_tag()
                current.append(child)
                if not child_closed:
                    stack.append(child)
            else:
                start = scanner.pos
                end = scanner.text.find("<", start)
                if end < 0:
                    raise scanner.error(
                        f"unterminated element <{current.label}>"
                    )
                raw = scanner.text[start:end]
                scanner.pos = end
                self._append_text(current, _decode_text(raw, scanner, start))
        self._skip_misc()
        if not scanner.at_end():
            raise scanner.error("content after the root element")
        return root

    def _parse_start_tag(self) -> Tuple[Node, bool]:
        """Parse ``<name attrs…>`` or ``<name attrs…/>``.

        Returns the fresh node and whether the element self-closed.
        """
        scanner = self.scanner
        scanner.expect("<")
        label = scanner.read_name()
        attributes = self._parse_attributes()
        node = Node(label, attributes=attributes)
        scanner.skip_whitespace()
        if scanner.starts_with("/>"):
            scanner.advance(2)
            return node, True
        scanner.expect(">")
        return node, False

    def _skip_misc(self) -> None:
        """Skip whitespace, comments, PIs and DOCTYPE outside elements."""
        scanner = self.scanner
        while True:
            scanner.skip_whitespace()
            if scanner.starts_with("<?"):
                scanner.advance(2)
                scanner.read_until("?>")
            elif scanner.starts_with("<!--"):
                scanner.advance(4)
                scanner.read_until("-->")
            elif scanner.starts_with("<!DOCTYPE"):
                self._skip_doctype()
            else:
                return

    def _skip_doctype(self) -> None:
        """Skip a DOCTYPE declaration, tolerating an internal subset."""
        scanner = self.scanner
        scanner.expect("<!DOCTYPE")
        depth = 1
        while depth > 0:
            if scanner.at_end():
                raise scanner.error("unterminated DOCTYPE")
            ch = scanner.peek()
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth -= 1
            scanner.advance()

    def _parse_attributes(self) -> Dict[str, str]:
        scanner = self.scanner
        attributes: Dict[str, str] = {}
        while True:
            scanner.skip_whitespace()
            ch = scanner.peek()
            if ch in (">", "/") or scanner.at_end():
                return attributes
            name = scanner.read_name()
            scanner.skip_whitespace()
            scanner.expect("=")
            scanner.skip_whitespace()
            quote = scanner.peek()
            if quote not in ("'", '"'):
                raise scanner.error("attribute value must be quoted")
            scanner.advance()
            base = scanner.pos
            raw = scanner.read_until(quote)
            if name in attributes:
                raise scanner.error(f"duplicate attribute {name!r}")
            attributes[name] = _decode_text(raw, scanner, base)

    def _append_text(self, node: Node, text: str, decoded: bool = False) -> None:
        if not decoded and not self.keep_whitespace and not text.strip():
            return
        if not self.keep_whitespace:
            text = text.strip()
            if not text and not decoded:
                return
        node.append(Node(CDATA_LABEL, attributes={STRING_ATTRIBUTE: text}))


def parse_fragment(text: str, keep_whitespace: bool = False) -> Node:
    """Parse XML text and return the root :class:`Node` (no OIDs yet)."""
    return _Parser(text, keep_whitespace).parse()


def parse_document(
    text: str, first_oid: int = 0, keep_whitespace: bool = False
) -> Document:
    """Parse XML text into a frozen :class:`Document`.

    Parameters
    ----------
    text:
        The XML source.
    first_oid:
        OID assigned to the root (the paper's Figure 1 starts at 1).
    keep_whitespace:
        Keep whitespace-only text nodes (off for data-centric XML).
    """
    root = parse_fragment(text, keep_whitespace=keep_whitespace)
    return Document(root, first_oid=first_oid)
