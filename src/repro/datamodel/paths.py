"""Paths and the prefix order over them (Definitions 3 and 5).

A *path* ``path(o)`` denotes the sequence of labels along the way from
the document root to an item ``o`` of the syntax tree.  Paths written
down by the paper look like ``bib/inproceedings/author/cdata`` for
element steps and ``.../year@cdata/string`` for the attribute-ish leaf
steps of the Monet model; we keep the step kinds explicit so that the
Monet transform (Def. 4) can name its relations unambiguously.

Two orders matter:

* ``p1 <= p2`` under :func:`is_prefix` — the paper's ⪯ from Def. 5
  (note the direction: ``path(o1) ⪯ path(o2)`` iff ``path(o2)`` *is a
  prefix of* ``path(o1)``; the deeper path is the smaller element).
* plain prefix tests used by the path summary.

Paths are immutable and interned by :class:`repro.monet.pathsummary.
PathSummary`; equality and hashing are tuple-cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

__all__ = [
    "Step",
    "ELEMENT",
    "ATTRIBUTE",
    "TEXT",
    "Path",
    "is_prefix",
    "prefix_leq",
    "longest_common_prefix",
    "relative_suffix",
]

# Step kinds.  The paper's footnote 1: ``/`` denotes an element
# relationship, ``@`` an attribute relationship.  Character data is kept
# as the distinguished ``cdata`` attribute of Def. 1; the Monet
# transform appends a final ``string`` step for the value leaf.
ELEMENT = "/"
ATTRIBUTE = "@"
TEXT = "::text"


@dataclass(frozen=True, slots=True)
class Step:
    """One step of a path: a label reached via an element or attribute edge."""

    label: str
    kind: str = ELEMENT

    def __post_init__(self) -> None:
        if self.kind not in (ELEMENT, ATTRIBUTE):
            raise ValueError(f"invalid step kind: {self.kind!r}")
        if not self.label:
            raise ValueError("step label must be non-empty")

    def __str__(self) -> str:
        return f"{self.kind}{self.label}" if self.kind == ATTRIBUTE else self.label


class Path:
    """An immutable sequence of :class:`Step` — the type π(o) of a node.

    ``Path`` behaves like a tuple of steps: it is hashable, comparable
    for equality, sliceable, and supports ``p / "label"`` and
    ``p @ "attr"``-style extension through :meth:`child` and
    :meth:`attribute`.
    """

    __slots__ = ("_steps", "_hash")

    def __init__(self, steps: Iterable[Step] = ()):
        self._steps: Tuple[Step, ...] = tuple(steps)
        self._hash = hash(self._steps)

    # -- constructors -------------------------------------------------
    @classmethod
    def root(cls, label: str) -> "Path":
        """The one-step path of a document root labelled ``label``."""
        return cls((Step(label),))

    @classmethod
    def of(cls, *labels: str) -> "Path":
        """Build an all-element path from plain labels (test helper)."""
        return cls(Step(label) for label in labels)

    @classmethod
    def parse(cls, text: str) -> "Path":
        """Parse the serialized form produced by :meth:`__str__`.

        Element steps are separated by ``/``; attribute steps are
        introduced by ``@`` glued to the preceding separator, e.g.
        ``bib/article/year@cdata``.
        """
        steps = []
        for chunk in text.split("/"):
            if not chunk:
                continue
            parts = chunk.split("@")
            head, attrs = parts[0], parts[1:]
            if head:
                steps.append(Step(head, ELEMENT))
            for attr in attrs:
                if not attr:
                    raise ValueError(f"empty attribute step in {text!r}")
                steps.append(Step(attr, ATTRIBUTE))
        return cls(steps)

    # -- extension -----------------------------------------------------
    def child(self, label: str) -> "Path":
        """The path extended by one element step."""
        return Path(self._steps + (Step(label, ELEMENT),))

    def attribute(self, label: str) -> "Path":
        """The path extended by one attribute step."""
        return Path(self._steps + (Step(label, ATTRIBUTE),))

    def parent(self) -> "Path":
        """The path with its last step removed.

        Raises :class:`ValueError` on the empty path.
        """
        if not self._steps:
            raise ValueError("the empty path has no parent")
        return Path(self._steps[:-1])

    # -- inspection ----------------------------------------------------
    @property
    def steps(self) -> Tuple[Step, ...]:
        return self._steps

    @property
    def labels(self) -> Tuple[str, ...]:
        """Just the labels, without step kinds."""
        return tuple(step.label for step in self._steps)

    @property
    def last(self) -> Step:
        if not self._steps:
            raise ValueError("the empty path has no last step")
        return self._steps[-1]

    def depth(self) -> int:
        """Number of steps; the root path has depth 1, the empty path 0."""
        return len(self._steps)

    def is_empty(self) -> bool:
        return not self._steps

    # -- dunder --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self._steps)

    def __getitem__(self, index):
        result = self._steps[index]
        if isinstance(index, slice):
            return Path(result)
        return result

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Path) and self._steps == other._steps

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        out = []
        for step in self._steps:
            if step.kind == ATTRIBUTE:
                out.append(f"@{step.label}")
            else:
                if out:
                    out.append("/")
                out.append(step.label)
        return "".join(out)

    def __repr__(self) -> str:
        return f"Path({str(self)!r})"


def is_prefix(shorter: Path, longer: Path) -> bool:
    """``True`` iff ``shorter`` is a (non-strict) prefix of ``longer``."""
    n = len(shorter)
    return n <= len(longer) and longer.steps[:n] == shorter.steps


def prefix_leq(p1: Path, p2: Path) -> bool:
    """The paper's ⪯ of Definition 5: ``p1 ⪯ p2`` iff p2 is a prefix of p1.

    Deeper paths are *smaller*: ``path(o) ⪯ path(ancestor(o))``.  The
    relation is reflexive.
    """
    return is_prefix(p2, p1)


def longest_common_prefix(p1: Path, p2: Path) -> Path:
    """The longest common prefix of two paths.

    The paper observes ``path(meet2(o1, o2))`` is the longest common
    prefix of ``path(o1)`` and ``path(o2)`` (first bullet list of §3.1).
    """
    n = 0
    for s1, s2 in zip(p1.steps, p2.steps):
        if s1 != s2:
            break
        n += 1
    return p1[:n]


def relative_suffix(longer: Path, shorter: Path) -> Path:
    """``longer − shorter``: the steps of ``longer`` below the prefix.

    This is the paper's ``path(o1) \\ path(o)`` context notation (second
    bullet list of §3.1).  Raises :class:`ValueError` if ``shorter`` is
    not a prefix of ``longer``.
    """
    if not is_prefix(shorter, longer):
        raise ValueError(f"{shorter} is not a prefix of {longer}")
    return longer[len(shorter):]
