"""Physical data model: the Monet transform and its column engine (§2).

* :class:`BAT` — MIL-style binary association tables.
* :class:`PathSummary` — interned paths / schema tree.
* :func:`monet_transform` — Definition 4, document → store.
* :class:`MonetXML` — the loaded database instance.
* :mod:`~repro.monet.reassembly` — OID → object/DOM views.
* :mod:`~repro.monet.storage` — JSON image persistence.
"""

from .bat import BAT
from .engine import MonetXML
from .pathsummary import PathSummary
from .reassembly import (
    associations_of,
    object_text,
    reassemble_node,
    reassemble_object,
    reassemble_subtree,
)
from .mutate import (
    MutationRecord,
    compact_store,
    delete_document,
    ensure_document_registry,
    put_document,
    replace_document,
)
from .stats import StoreStatistics, collect_statistics
from .storage import dumps, load, loads, save
from .transform import monet_transform

__all__ = [
    "BAT",
    "MonetXML",
    "MutationRecord",
    "PathSummary",
    "compact_store",
    "delete_document",
    "ensure_document_registry",
    "put_document",
    "replace_document",
    "StoreStatistics",
    "collect_statistics",
    "associations_of",
    "dumps",
    "load",
    "loads",
    "monet_transform",
    "object_text",
    "reassemble_node",
    "reassemble_object",
    "reassemble_subtree",
    "save",
]
