"""The Monet XML store: path-partitioned associations plus OID columns.

This is the physical database instance of Definition 4.  All
associations of one type (= one path) live in one binary relation:

* ``edges[pid]``     — (parent OID, child OID) for every element edge
  whose *child* sits on path ``pid`` (the relation is "named after"
  the child path, as in Figure 2);
* ``strings[pid]``   — (OID, string) for every attribute/cdata value
  on attribute path ``pid`` (the ``…@key`` / ``…/cdata@string``
  relations of Figure 2);
* ``ranks[pid]``     — (OID, rank) preserving sibling order (the
  oid × int associations of Def. 2).

On top of the relations the store keeps three dense OID-indexed
columns — pid, parent OID and rank — so that ``parent(o)`` and π(o)
are the O(1) "hash look-ups" the paper's Fig. 3 assumes (justified in
the paper via functional-join techniques, ref. [8]).
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import count
from typing import Dict, Iterator, List, Optional, Tuple

from ..datamodel.errors import ModelError, UnknownOIDError
from ..datamodel.paths import Path
from .bat import BAT
from .pathsummary import PathSummary

__all__ = ["MonetXML"]


class MonetXML:
    """A loaded database instance: one XML document, path-partitioned.

    Instances are built by :func:`repro.monet.transform.monet_transform`
    or :func:`repro.monet.storage.load`; direct construction takes
    pre-computed columns and relations.

    Every instance carries a process-unique, monotonically increasing
    ``generation`` token.  Derived structures built outside the store
    (most importantly the Euler-RMQ index of
    :mod:`repro.core.lca_index`) cache themselves keyed on it;
    :meth:`invalidate_caches` bumps the token so they rebuild lazily.
    """

    _generations = count(1)

    def __init__(
        self,
        summary: PathSummary,
        root_oid: int,
        first_oid: int,
        oid_pid: List[int],
        oid_parent: List[Optional[int]],
        oid_rank: List[int],
        edges: Dict[int, BAT],
        strings: Dict[int, BAT],
        ranks: Dict[int, BAT],
    ):
        self.summary = summary
        self.root_oid = root_oid
        self.first_oid = first_oid
        self._oid_pid = oid_pid
        self._oid_parent = oid_parent
        self._oid_rank = oid_rank
        self.edges = edges
        self.strings = strings
        self.ranks = ranks
        self._reverse_edges: Dict[int, BAT] = {}
        self._children_index: Optional[Dict[int, List[int]]] = None
        #: Cache token for externally derived indexes (see class doc).
        self.generation = next(MonetXML._generations)
        #: Named top-level documents: name → (first OID, last OID) of the
        #: document's contiguous pre-order run (see repro.monet.mutate).
        self.documents: Dict[str, Tuple[int, int]] = {}
        #: Sorted, disjoint, inclusive OID ranges of deleted documents.
        self._tombstones: List[Tuple[int, int]] = []
        #: Dead-OID count in self._tombstones[:i] (prefix sums for
        #: live_position); rebuilt whenever a tombstone range is added.
        self._dead_prefix: List[int] = [0]
        #: Recent mutations, newest last (see repro.monet.mutate); index
        #: maintainers roll forward from it instead of rebuilding.
        self.journal: List[object] = []

    # -- size -----------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self._oid_pid)

    @property
    def last_oid(self) -> int:
        return self.first_oid + len(self._oid_pid) - 1

    def __contains__(self, oid: object) -> bool:
        return (
            isinstance(oid, int) and self.first_oid <= oid <= self.last_oid
        )

    def __repr__(self) -> str:
        return (
            f"<MonetXML nodes={self.node_count} paths={len(self.summary) - 1} "
            f"relations={len(self.edges) + len(self.strings)}>"
        )

    # -- O(1) per-OID columns ------------------------------------------
    def _index(self, oid: int) -> int:
        position = oid - self.first_oid
        if 0 <= position < len(self._oid_pid):
            return position
        raise UnknownOIDError(oid)

    def pid_of(self, oid: int) -> int:
        """The interned path id π(o) of a node — O(1)."""
        return self._oid_pid[self._index(oid)]

    def path_of(self, oid: int) -> Path:
        """π(o) as a :class:`Path` (Def. 3)."""
        return self.summary.path(self.pid_of(oid))

    def parent_of(self, oid: int) -> Optional[int]:
        """The parent OID — the Fig. 3 ``parent(o)`` hash look-up.

        Returns ``None`` for the document root.
        """
        return self._oid_parent[self._index(oid)]

    def rank_of(self, oid: int) -> int:
        return self._oid_rank[self._index(oid)]

    def depth_of(self, oid: int) -> int:
        """Depth of the node = length of π(o); the root has depth 1."""
        return self.summary.depth(self.pid_of(oid))

    def dense_columns(self):
        """The (pid, parent, rank) columns, indexed by ``oid - first_oid``.

        Read-only by contract — the columns are handed out without a
        copy so whole-range consumers (the shard slicer of
        :mod:`repro.exec.sharding`) stay O(range), not O(range) Python
        calls.
        """
        return self._oid_pid, self._oid_parent, self._oid_rank

    # -- relations ---------------------------------------------------------
    def edge_relation(self, pid: int) -> BAT:
        """(parent, child) BAT of all nodes on path ``pid`` (may be empty)."""
        return self.edges.get(pid, BAT(name=str(self.summary.path(pid))))

    def string_relation(self, pid: int) -> BAT:
        """(oid, string) BAT of the attribute path ``pid`` (may be empty)."""
        return self.strings.get(pid, BAT(name=str(self.summary.path(pid))))

    def rank_relation(self, pid: int) -> BAT:
        return self.ranks.get(pid, BAT(name=str(self.summary.path(pid))))

    def parent_relation(self, pid: int) -> BAT:
        """(child, parent) BAT for path ``pid`` — cached reverse of edges.

        This is the relation the set-wise ``parent(O)`` join of Fig. 4
        runs against.
        """
        cached = self._reverse_edges.get(pid)
        if cached is None:
            cached = self.edge_relation(pid).reverse()
            self._reverse_edges[pid] = cached
        return cached

    def string_relations(self) -> Iterator[Tuple[int, BAT]]:
        """All (pid, BAT) string relations — the full-text search surface."""
        return iter(self.strings.items())

    def relation_names(self) -> List[str]:
        """Human-readable relation names as printed in Figure 2."""
        names = [str(self.summary.path(pid)) for pid in self.edges]
        names.extend(str(self.summary.path(pid)) for pid in self.strings)
        return sorted(names)

    # -- node-set access ---------------------------------------------------
    def oids_on_pid(self, pid: int) -> List[int]:
        """All node OIDs whose path is exactly ``pid``, in document order."""
        if pid == self._oid_pid[self.root_oid - self.first_oid]:
            return [self.root_oid]
        relation = self.edges.get(pid)
        if relation is None:
            return []
        return list(relation.tails)

    def oids_on_path(self, path: Path) -> List[int]:
        pid = self.summary.maybe_pid(path)
        return [] if pid is None else self.oids_on_pid(pid)

    def iter_oids(self) -> Iterator[int]:
        return iter(range(self.first_oid, self.first_oid + self.node_count))

    def children_of(self, oid: int) -> List[int]:
        """Child OIDs in rank order (lazily built adjacency index)."""
        if self._children_index is None:
            index: Dict[int, List[int]] = {}
            for position, parent in enumerate(self._oid_parent):
                if parent is not None:
                    index.setdefault(parent, []).append(position + self.first_oid)
            for children in index.values():
                children.sort(key=self.rank_of)
            self._children_index = index
        return list(self._children_index.get(oid, ()))

    def attributes_of(self, oid: int) -> Dict[str, str]:
        """Attribute name → value for a node, from the string relations."""
        pid = self.pid_of(oid)
        result: Dict[str, str] = {}
        for attr_pid in self.summary.children(pid):
            if not self.summary.is_attribute(attr_pid):
                continue
            relation = self.strings.get(attr_pid)
            if relation is None:
                continue
            values = relation.find_all(oid)
            if values:
                result[self.summary.label(attr_pid)] = values[0]
        return result

    # -- tombstones & live positions --------------------------------------
    @property
    def dead_count(self) -> int:
        """Number of tombstoned (deleted but not compacted) OIDs."""
        return self._dead_prefix[-1]

    @property
    def live_node_count(self) -> int:
        return self.node_count - self.dead_count

    @property
    def dead_fraction(self) -> float:
        """Tombstone density — drives the lazy index-rebuild threshold."""
        return self.dead_count / self.node_count if self.node_count else 0.0

    def is_live(self, oid: int) -> bool:
        """``True`` iff the OID denotes a node that has not been deleted."""
        if not self.first_oid <= oid <= self.last_oid:
            return False
        ranges = self._tombstones
        if not ranges:
            return True
        index = bisect_right(ranges, (oid, self.last_oid + 1)) - 1
        return index < 0 or ranges[index][1] < oid

    def add_tombstone_range(self, low: int, high: int) -> None:
        """Mark the inclusive OID range dead (whole-document deletes only)."""
        if not (self.first_oid <= low <= high <= self.last_oid):
            raise ModelError(f"tombstone range [{low}, {high}] out of bounds")
        ranges = self._tombstones
        ranges.append((low, high))
        ranges.sort()
        merged: List[Tuple[int, int]] = []
        for start, end in ranges:
            if merged and start <= merged[-1][1] + 1:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        self._tombstones = merged
        prefix = [0]
        for start, end in merged:
            prefix.append(prefix[-1] + end - start + 1)
        self._dead_prefix = prefix

    def tombstone_ranges(self) -> List[Tuple[int, int]]:
        return list(self._tombstones)

    def _dead_before(self, oid: int) -> int:
        """Dead OIDs strictly below ``oid`` (``oid`` itself must be live)."""
        ranges = self._tombstones
        if not ranges:
            return 0
        index = bisect_right(ranges, (oid, self.last_oid + 1)) - 1
        if index < 0:
            return 0
        start, end = ranges[index]
        # A live oid never sits inside a range, so the range at ``index``
        # lies entirely below it.
        return self._dead_prefix[index] + end - start + 1

    def live_position(self, oid: int) -> int:
        """Rank of a live OID among all live OIDs (0-based, document order).

        On a tombstone-free store this is exactly ``oid - first_oid``;
        after deletes it is the OID the node *would* carry in a store
        rebuilt from the surviving documents — the bridge that keeps
        ranking (the spread heuristic of §4) identical between a mutated
        store and a rebuild from scratch.
        """
        return oid - self.first_oid - self._dead_before(oid)

    def live_distance(self, low_oid: int, high_oid: int) -> int:
        """Distance between two live OIDs counted over live nodes only."""
        if not self._tombstones:
            return high_oid - low_oid
        return self.live_position(high_oid) - self.live_position(low_oid)

    def tombstone_table(self) -> Tuple[List[int], List[int]]:
        """The vectorizable core of :meth:`live_position`.

        Returns ``(starts, dead_prefix)``: the sorted tombstone-range
        start OIDs and the dead-node counts *including* each range, so
        for a live OID the dead count strictly below it is
        ``dead_prefix[bisect_right(starts, oid)]`` (a live OID never
        equals a range start).  Both lists are empty-tombstone safe:
        ``([], [0])`` means every OID is live.
        """
        return [start for start, _ in self._tombstones], self._dead_prefix

    def iter_live_oids(self) -> Iterator[int]:
        if not self._tombstones:
            yield from self.iter_oids()
            return
        for oid in self.iter_oids():
            if self.is_live(oid):
                yield oid

    # -- cache control -----------------------------------------------------
    def invalidate_caches(self) -> None:
        """Drop lazily built structures after an in-place rebuild.

        Clears the reverse-edge and children adjacency caches and bumps
        ``generation`` so generation-keyed external caches (the LCA
        index of the ``indexed`` meet backend) rebuild on next use.
        """
        self._reverse_edges.clear()
        self._children_index = None
        self.generation = next(MonetXML._generations)

    # -- ancestry (instance-level helpers shared by core and baselines) --
    def ancestry(self, oid: int) -> List[int]:
        """OIDs from the node to the root, inclusive."""
        chain = [oid]
        parent = self.parent_of(oid)
        while parent is not None:
            chain.append(parent)
            parent = self.parent_of(parent)
        return chain

    def is_ancestor(self, ancestor_oid: int, descendant_oid: int) -> bool:
        """Reflexive ancestor test via parent pointers."""
        current: Optional[int] = descendant_oid
        target_depth = self.depth_of(ancestor_oid)
        while current is not None and self.depth_of(current) >= target_depth:
            if current == ancestor_oid:
                return True
            current = self.parent_of(current)
        return False

    # -- integrity -------------------------------------------------------
    def validate(self) -> None:
        """Cross-check columns against relations; raises on inconsistency.

        Used by tests and after :func:`repro.monet.storage.load`.
        """
        for pid, relation in self.edges.items():
            for parent, child in relation:
                if self.parent_of(child) != parent:
                    raise ModelError(
                        f"edge relation {self.summary.path(pid)} disagrees "
                        f"with parent column at OID {child}"
                    )
                if self.pid_of(child) != pid:
                    raise ModelError(
                        f"edge relation {self.summary.path(pid)} holds OID "
                        f"{child} whose pid column says "
                        f"{self.summary.path(self.pid_of(child))}"
                    )
        for pid, relation in self.strings.items():
            parent_pid = self.summary.parent(pid)
            for oid, value in relation:
                if not isinstance(value, str):
                    raise ModelError(f"non-string value {value!r} in {pid}")
                if self.pid_of(oid) != parent_pid:
                    raise ModelError(
                        f"string relation {self.summary.path(pid)} attached "
                        f"to OID {oid} of wrong path"
                    )
        if self.parent_of(self.root_oid) is not None:
            raise ModelError("root OID has a parent")
