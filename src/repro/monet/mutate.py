"""Live document mutations over a loaded Monet XML store.

The store of Definition 4 is built once from a frozen document; this
module makes it a *collection* you can mutate while it serves queries:

* :func:`put_document` parses an XML fragment, grafts it under the
  store root as a fresh top-level document, appends its nodes as one
  contiguous pre-order OID run (``last_oid + 1`` onward) and interns
  its paths into the shared summary;
* :func:`delete_document` tombstones a document's OID range — the
  dense columns keep their slots (parent pointers cleared) while the
  path-partitioned relations are pruned, so every query surface only
  ever sees live nodes;
* :func:`replace_document` is delete + put under the same name;
* :func:`compact_store` renumbers the surviving nodes densely — the
  compacted OIDs equal what a rebuild from the surviving documents
  would assign, which is what shard slicing and snapshot writing
  require (both assume a dense pre-order store).

Every mutation bumps the store ``generation`` (invalidating the
generation-keyed LCA/full-text/result caches precisely) and appends a
:class:`MutationRecord` to ``store.journal`` so the full-text index can
roll forward incrementally instead of rebuilding (see
:func:`repro.fulltext.index.get_fulltext_index`).

The pre-order invariant maintained throughout: live OIDs ascend in
document order.  New documents append at the tail; a replace re-appends
at the tail, exactly where the document would sort in a rebuild that
serializes documents in collection order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..datamodel.document import CDATA_LABEL, STRING_ATTRIBUTE
from ..datamodel.errors import (
    DocumentError,
    DuplicateDocumentError,
    UnknownDocumentError,
)
from ..datamodel.node import CDATA_ATTRIBUTE, Node
from ..datamodel.parser import parse_fragment
from .bat import BAT
from .engine import MonetXML

__all__ = [
    "MutationRecord",
    "JOURNAL_LIMIT",
    "ensure_document_registry",
    "put_document",
    "delete_document",
    "replace_document",
    "compact_store",
]

#: Journal entries kept per store; consumers finding their generation
#: evicted fall back to a full rebuild.
JOURNAL_LIMIT = 256

#: Registry names auto-assigned to the documents a store was built with.
SEED_PREFIX = "seed-"


@dataclass(frozen=True, slots=True)
class MutationRecord:
    """One applied mutation, as the index maintainers see it.

    ``added_strings`` carries every (attribute pid, OID, value)
    association a put introduced — enough to patch an inverted index
    forward without re-scanning the relations.  Deletes carry only the
    tombstoned span; postings are pruned by OID range.
    """

    kind: str  # "put" | "delete"
    name: str
    span: Tuple[int, int]
    from_generation: int
    to_generation: int
    added_strings: Tuple[Tuple[int, int, str], ...] = field(default=())
    removed_associations: int = 0


# ---------------------------------------------------------------------------
# Registry seeding
# ---------------------------------------------------------------------------

def ensure_document_registry(store: MonetXML) -> Dict[str, Tuple[int, int]]:
    """Register the store's top-level documents under seed names.

    A *document* is one top-level child subtree of the root.  Stores
    built by the transform or loaded from a snapshot are dense and
    pre-order, so each top-level subtree is the contiguous OID run from
    its root to just before the next top-level root.  Runs once;
    mutations maintain the registry from then on.
    """
    if store.documents:
        return store.documents
    if store._tombstones:
        # Mutations seed the registry before the first tombstone can
        # exist, so an empty registry on a tombstoned store means every
        # document was deleted — not that seeding was skipped.  Seeding
        # here would misread surviving top-level OIDs as fresh spans.
        return store.documents
    tops = store.children_of(store.root_oid)
    for index, top in enumerate(tops):
        end = tops[index + 1] - 1 if index + 1 < len(tops) else store.last_oid
        store.documents[f"{SEED_PREFIX}{index:04d}"] = (top, end)
    return store.documents


# ---------------------------------------------------------------------------
# Mutability of snapshot-loaded stores
# ---------------------------------------------------------------------------

def _ensure_mutable(store: MonetXML) -> None:
    """Convert zero-copy snapshot views into plain mutable structures.

    Snapshot-loaded stores hold lazily materialized read-only relation
    families and memoryview-backed dense columns; the first mutation
    pays one conversion to plain dicts/lists.
    """
    if not isinstance(store.edges, dict):
        store.edges = dict(store.edges.items())
    if not isinstance(store.strings, dict):
        store.strings = dict(store.strings.items())
    if not isinstance(store.ranks, dict):
        store.ranks = dict(store.ranks.items())
    if not isinstance(store._oid_pid, list):
        store._oid_pid = list(store._oid_pid)
    if not isinstance(store._oid_parent, list):
        store._oid_parent = list(store._oid_parent)
    if not isinstance(store._oid_rank, list):
        store._oid_rank = list(store._oid_rank)


# ---------------------------------------------------------------------------
# put
# ---------------------------------------------------------------------------

def _normalize_cdata(root: Node) -> None:
    """The cdata-attribute → cdata-node normalization of Document."""
    for node in list(root.iter_preorder()):
        value = node.attributes.pop(CDATA_ATTRIBUTE, None)
        if value is None:
            continue
        if node.label == CDATA_LABEL:
            node.attributes[STRING_ATTRIBUTE] = value
            continue
        node.append(Node(CDATA_LABEL, attributes={STRING_ATTRIBUTE: value}))


def put_document(store: MonetXML, name: str, xml: str) -> MutationRecord:
    """Parse ``xml`` and append it as the named top-level document.

    The fragment is grafted under the store root: its nodes receive the
    contiguous OID run ``last_oid + 1 …`` in pre-order, its paths are
    interned into the shared summary prefixed by the root path, and the
    relation families gain the new associations.  Raises
    :class:`DuplicateDocumentError` if the name is taken.
    """
    registry = ensure_document_registry(store)
    if name in registry:
        raise DuplicateDocumentError(name)
    fragment = parse_fragment(xml)
    _normalize_cdata(fragment)
    _ensure_mutable(store)

    root_oid = store.root_oid
    root_pid = store.pid_of(root_oid)
    root_path = store.summary.path(root_pid)
    summary = store.summary
    live_tops = store.children_of(root_oid)
    fragment.rank = (
        max(store.rank_of(top) for top in live_tops) + 1 if live_tops else 0
    )

    first_new = store.last_oid + 1
    added_strings: List[Tuple[int, int, str]] = []
    edge_buns: Dict[int, List[Tuple[int, int]]] = {}
    string_buns: Dict[int, List[Tuple[int, str]]] = {}
    rank_buns: Dict[int, List[Tuple[int, int]]] = {}

    # Pre-order pass mirroring monet_transform, rebased on the root path.
    oid = first_new
    stack: List[Tuple[Node, int, object]] = [(fragment, root_oid, root_path)]
    while stack:
        node, parent_oid, parent_path = stack.pop()
        path = parent_path.child(node.label)
        pid = summary.intern(path)
        store._oid_pid.append(pid)
        store._oid_parent.append(parent_oid)
        store._oid_rank.append(node.rank)
        rank_buns.setdefault(pid, []).append((oid, node.rank))
        edge_buns.setdefault(pid, []).append((parent_oid, oid))
        for attr_name, value in node.attributes.items():
            attr_pid = summary.intern(path.attribute(attr_name))
            string_buns.setdefault(attr_pid, []).append((oid, value))
            added_strings.append((attr_pid, oid, value))
        node_oid = oid
        oid += 1
        for child in reversed(node.children):
            stack.append((child, node_oid, path))
    last_new = oid - 1

    for pid, buns in edge_buns.items():
        fresh = BAT(buns, name=str(summary.path(pid)))
        old = store.edges.get(pid)
        store.edges[pid] = fresh if old is None else old.union_all(fresh)
    for pid, buns in string_buns.items():
        fresh = BAT(buns, name=str(summary.path(pid)))
        old = store.strings.get(pid)
        store.strings[pid] = fresh if old is None else old.union_all(fresh)
    for pid, buns in rank_buns.items():
        fresh = BAT(buns, name=str(summary.path(pid)))
        old = store.ranks.get(pid)
        store.ranks[pid] = fresh if old is None else old.union_all(fresh)

    registry[name] = (first_new, last_new)
    record = _record(
        store,
        kind="put",
        name=name,
        span=(first_new, last_new),
        added_strings=tuple(added_strings),
    )
    return record


# ---------------------------------------------------------------------------
# delete / replace
# ---------------------------------------------------------------------------

def delete_document(store: MonetXML, name: str) -> MutationRecord:
    """Tombstone the named document's OID range and prune its relations."""
    registry = ensure_document_registry(store)
    span = registry.get(name)
    if span is None:
        raise UnknownDocumentError(name)
    _ensure_mutable(store)
    low, high = span

    element_pids = set()
    for position in range(low - store.first_oid, high - store.first_oid + 1):
        element_pids.add(store._oid_pid[position])
        store._oid_parent[position] = None

    def outside(oid: int) -> bool:
        return not low <= oid <= high

    removed_associations = 0
    for pid in element_pids:
        relation = store.edges.get(pid)
        if relation is not None:
            store.edges[pid] = BAT.from_columns(
                *_filter_columns(relation.heads, relation.tails, outside, key="tail"),
                name=relation.name,
                copy=False,
            )
        relation = store.ranks.get(pid)
        if relation is not None:
            store.ranks[pid] = BAT.from_columns(
                *_filter_columns(relation.heads, relation.tails, outside, key="head"),
                name=relation.name,
                copy=False,
            )
        for attr_pid in store.summary.children(pid):
            if not store.summary.is_attribute(attr_pid):
                continue
            relation = store.strings.get(attr_pid)
            if relation is None:
                continue
            before = len(relation)
            store.strings[attr_pid] = BAT.from_columns(
                *_filter_columns(relation.heads, relation.tails, outside, key="head"),
                name=relation.name,
                copy=False,
            )
            removed_associations += before - len(store.strings[attr_pid])

    store.add_tombstone_range(low, high)
    del registry[name]
    return _record(
        store,
        kind="delete",
        name=name,
        span=(low, high),
        removed_associations=removed_associations,
    )


def _filter_columns(heads, tails, keep, key: str):
    """(heads, tails) restricted to BUNs whose head/tail passes ``keep``."""
    column = heads if key == "head" else tails
    kept = [i for i, value in enumerate(column) if keep(value)]
    if len(kept) == len(column):
        return list(heads), list(tails)
    return [heads[i] for i in kept], [tails[i] for i in kept]


def replace_document(
    store: MonetXML, name: str, xml: str
) -> List[MutationRecord]:
    """Replace (upsert) the named document: delete if present, then put.

    The new content re-appends at the OID tail — the same position a
    rebuild that serializes documents in collection order would give it.
    """
    registry = ensure_document_registry(store)
    # Validate the fragment *before* deleting: a parse error must leave
    # the collection exactly as it was.
    parse_fragment(xml)
    records: List[MutationRecord] = []
    if name in registry:
        records.append(delete_document(store, name))
    records.append(put_document(store, name, xml))
    return records


def _record(store: MonetXML, **fields) -> MutationRecord:
    """Bump the generation and journal one mutation."""
    from_generation = store.generation
    store.invalidate_caches()
    record = MutationRecord(
        from_generation=from_generation,
        to_generation=store.generation,
        **fields,
    )
    store.journal.append(record)
    if len(store.journal) > JOURNAL_LIMIT:
        del store.journal[: len(store.journal) - JOURNAL_LIMIT]
    return record


# ---------------------------------------------------------------------------
# compaction
# ---------------------------------------------------------------------------

def compact_store(store: MonetXML) -> Tuple[MonetXML, Optional[Dict[int, int]]]:
    """Renumber the live nodes densely; returns (new store, OID map).

    The compacted store is exactly what rebuilding from the surviving
    documents would produce (same OIDs, same relation contents), which
    is the precondition for shard slicing and snapshot writing.  The
    path summary is shared (it is append-only); on a tombstone-free
    store this is a no-op returning ``(store, None)``.
    """
    if not store._tombstones:
        ensure_document_registry(store)
        return store, None
    first = store.first_oid
    live = list(store.iter_live_oids())
    mapping = {old: first + position for position, old in enumerate(live)}

    oid_pid = [store._oid_pid[old - first] for old in live]
    oid_rank = [store._oid_rank[old - first] for old in live]
    oid_parent: List[Optional[int]] = []
    for old in live:
        parent = store._oid_parent[old - first]
        oid_parent.append(None if parent is None else mapping[parent])

    def remap(relation: BAT, *, heads_only: bool) -> BAT:
        heads = [mapping[h] for h in relation.heads]
        tails = (
            list(relation.tails)
            if heads_only
            else [mapping[t] for t in relation.tails]
        )
        return BAT.from_columns(heads, tails, name=relation.name, copy=False)

    compacted = MonetXML(
        summary=store.summary,
        root_oid=mapping[store.root_oid],
        first_oid=first,
        oid_pid=oid_pid,
        oid_parent=oid_parent,
        oid_rank=oid_rank,
        edges={
            pid: remap(rel, heads_only=False)
            for pid, rel in store.edges.items()
            if len(rel)
        },
        strings={
            pid: remap(rel, heads_only=True)
            for pid, rel in store.strings.items()
            if len(rel)
        },
        ranks={
            pid: remap(rel, heads_only=True)
            for pid, rel in store.ranks.items()
            if len(rel)
        },
    )
    compacted.documents = {
        name: (mapping[low], mapping[high])
        for name, (low, high) in store.documents.items()
    }
    return compacted, mapping
