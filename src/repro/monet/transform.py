"""The Monet transform (Definition 4): document → path-partitioned store.

``Mt(D) = (r, E', A', R')`` where

* ``E'`` groups parent/child edges by the *child's* path — one binary
  relation per distinct path, named by that path (Figure 2);
* ``A'`` groups (OID, string) attribute/value associations by the
  attribute path ``π(o)@name``;
* ``R'`` groups (OID, rank) associations preserving sibling order;
* ``r`` remains the root.

The transform also materializes the dense OID columns (pid, parent,
rank) that give the O(1) ``parent``/π look-ups of §3.2.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..datamodel.document import Document
from .bat import BAT
from .engine import MonetXML
from .pathsummary import PathSummary

__all__ = ["monet_transform"]


def monet_transform(document: Document) -> MonetXML:
    """Shred a frozen :class:`Document` into a :class:`MonetXML` store.

    Runs in one pre-order pass; deterministic for a given document.
    """
    summary = PathSummary()
    node_count = document.node_count
    first_oid = document.first_oid

    oid_pid: List[int] = [0] * node_count
    oid_parent: List[Optional[int]] = [None] * node_count
    oid_rank: List[int] = [0] * node_count

    edge_buns: Dict[int, List[Tuple[int, int]]] = {}
    string_buns: Dict[int, List[Tuple[int, str]]] = {}
    rank_buns: Dict[int, List[Tuple[int, int]]] = {}

    for node in document.iter_nodes():
        oid = node.oid
        position = oid - first_oid
        path = document.path(oid)
        pid = summary.intern(path)
        oid_pid[position] = pid
        oid_rank[position] = node.rank
        rank_buns.setdefault(pid, []).append((oid, node.rank))
        if node.parent is not None:
            oid_parent[position] = node.parent.oid
            edge_buns.setdefault(pid, []).append((node.parent.oid, oid))
        for name, value in node.attributes.items():
            attr_pid = summary.intern(path.attribute(name))
            string_buns.setdefault(attr_pid, []).append((oid, value))

    edges = {
        pid: BAT(buns, name=str(summary.path(pid)))
        for pid, buns in edge_buns.items()
    }
    strings = {
        pid: BAT(buns, name=str(summary.path(pid)))
        for pid, buns in string_buns.items()
    }
    ranks = {
        pid: BAT(buns, name=str(summary.path(pid)))
        for pid, buns in rank_buns.items()
    }

    return MonetXML(
        summary=summary,
        root_oid=document.root.oid,
        first_oid=first_oid,
        oid_pid=oid_pid,
        oid_parent=oid_parent,
        oid_rank=oid_rank,
        edges=edges,
        strings=strings,
        ranks=ranks,
    )
