"""Object re-assembly: from associations back to objects (paper §2).

"We 're-assemble' an object with OID o from those associations whose
first component is o" — the paper shows ``object(o7) = {⟨cdata, …⟩,
⟨year, …⟩, ⟨title, …⟩}`` turning into a class instance or a DOM tree.
This module provides both views:

* :func:`associations_of` — the raw association set of one OID;
* :func:`reassemble_object` — one level deep, a dict-like record;
* :func:`reassemble_node` / :func:`reassemble_subtree` — a full
  :class:`~repro.datamodel.node.Node` tree, usable with the serializer
  to print query results as XML.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..datamodel.document import CDATA_LABEL, STRING_ATTRIBUTE
from ..datamodel.node import Node
from .engine import MonetXML

__all__ = [
    "associations_of",
    "reassemble_object",
    "reassemble_node",
    "reassemble_subtree",
    "object_text",
]


def associations_of(store: MonetXML, oid: int) -> List[Tuple[str, int, Any]]:
    """All associations whose first component is ``oid``.

    Returns (relation name, oid, second component) triples — edges to
    children first (rank order), then string associations.
    """
    result: List[Tuple[str, int, Any]] = []
    for child in store.children_of(oid):
        relation = str(store.path_of(child))
        result.append((relation, oid, child))
    pid = store.pid_of(oid)
    path = store.summary.path(pid)
    for name, value in store.attributes_of(oid).items():
        result.append((str(path.attribute(name)), oid, value))
    return result


def reassemble_object(store: MonetXML, oid: int) -> Dict[str, Any]:
    """A one-level record view of a node: label, attrs, children labels.

    Children appear under their label; repeated labels collect into a
    list of OIDs, mirroring the "suitably defined class" example of §2.
    """
    record: Dict[str, Any] = {
        "oid": oid,
        "label": store.summary.label(store.pid_of(oid)),
        "path": str(store.path_of(oid)),
    }
    for name, value in store.attributes_of(oid).items():
        record[name] = value
    for child in store.children_of(oid):
        label = store.summary.label(store.pid_of(child))
        existing = record.get(label)
        if existing is None:
            record[label] = child
        elif isinstance(existing, list):
            existing.append(child)
        else:
            record[label] = [existing, child]
    return record


def reassemble_node(store: MonetXML, oid: int) -> Node:
    """Re-assemble one node (label + attributes), without children."""
    label = store.summary.label(store.pid_of(oid))
    node = Node(label, attributes=store.attributes_of(oid))
    node.oid = oid
    node.rank = store.rank_of(oid)
    return node


def reassemble_subtree(store: MonetXML, oid: int) -> Node:
    """Re-assemble the full subtree rooted at ``oid`` as a Node tree.

    The result is a fresh tree (OIDs preserved on the nodes); feeding
    it to :func:`repro.datamodel.serializer.serialize_node` prints the
    subtree as XML — the "starting point for displaying and browsing"
    use-case of §4.
    """
    root = reassemble_node(store, oid)
    stack = [(oid, root)]
    while stack:
        current_oid, current_node = stack.pop()
        for child_oid in store.children_of(current_oid):
            child_node = reassemble_node(store, child_oid)
            current_node.append(child_node)
            # re-assembly must preserve original sibling ranks
            child_node.rank = store.rank_of(child_oid)
            stack.append((child_oid, child_node))
    return root


def object_text(store: MonetXML, oid: int) -> str:
    """All character data below ``oid`` in document order, joined.

    Convenience used by examples to show what a meet result "is about".
    """
    pieces: List[str] = []
    stack = [oid]
    while stack:
        current = stack.pop()
        if store.summary.label(store.pid_of(current)) == CDATA_LABEL:
            value = store.attributes_of(current).get(STRING_ATTRIBUTE)
            if value:
                pieces.append(value)
        children = store.children_of(current)
        stack.extend(reversed(children))
    return " ".join(pieces)
