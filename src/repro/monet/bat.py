"""Binary Association Tables — the column engine under the meet operator.

The paper implements meet "on top of the Monet XML module within the
Monet database server" and stresses that its algorithms "make heavy use
of the relational operations of the underlying database engine".  This
module is that engine: a small, from-scratch re-creation of Monet's
BAT (Binary Association Table) abstraction with the MIL primitives the
meet algorithms in Figs. 3–5 lean on (see Boncz & Kersten, "MIL
Primitives for Querying a Fragmented World", VLDB J. 1999 — ref. [6]).

A :class:`BAT` is an ordered sequence of (head, tail) pairs.  Heads and
tails are arbitrary hashable Python values (in practice: OIDs, strings
and ints).  Operations never mutate their operands; they return fresh
BATs, which keeps algebraic reasoning (and the property tests) simple.
Hash indexes over head and tail are built lazily and cached.

Naming follows MIL: ``join``, ``semijoin``, ``kdiff``, ``kunion``,
``kintersect``, ``reverse``, ``mirror``, ``mark``, ``uselect``.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = ["BAT", "BUN"]

#: A single Binary UNit — one (head, tail) pair.
BUN = Tuple[Any, Any]


class BAT:
    """An immutable-by-convention binary association table.

    Parameters
    ----------
    buns:
        Iterable of (head, tail) pairs.  Order is preserved; duplicates
        are allowed (MIL BATs are bags).
    name:
        Optional relation name (the Monet transform names relations by
        path, e.g. ``bibliography/institute/article@key``).
    """

    __slots__ = ("_heads", "_tails", "name", "_head_index", "_tail_index")

    def __init__(self, buns: Iterable[BUN] = (), name: str = ""):
        heads: List[Any] = []
        tails: List[Any] = []
        for head, tail in buns:
            heads.append(head)
            tails.append(tail)
        self._heads = heads
        self._tails = tails
        self.name = name
        self._head_index: Optional[Dict[Any, List[int]]] = None
        self._tail_index: Optional[Dict[Any, List[int]]] = None

    # -- alternative constructors -------------------------------------
    @classmethod
    def from_columns(
        cls,
        heads: Sequence[Any],
        tails: Sequence[Any],
        name: str = "",
        *,
        copy: bool = True,
    ) -> "BAT":
        """Build from two parallel columns.

        With ``copy=False`` the (list) columns are adopted as-is — the
        caller promises not to mutate them afterwards.  This is the
        snapshot loader's allocation-free path; everyone else should
        keep the defensive copy.
        """
        if len(heads) != len(tails):
            raise ValueError("head and tail columns must have equal length")
        bat = cls(name=name)
        bat._heads = list(heads) if copy else heads
        bat._tails = list(tails) if copy else tails
        return bat

    @classmethod
    def singleton(cls, head: Any, tail: Any, name: str = "") -> "BAT":
        return cls(((head, tail),), name=name)

    # -- basic accessors -----------------------------------------------
    @property
    def heads(self) -> Sequence[Any]:
        return self._heads

    @property
    def tails(self) -> Sequence[Any]:
        return self._tails

    def count(self) -> int:
        """MIL ``count``: number of BUNs."""
        return len(self._heads)

    def __len__(self) -> int:
        return len(self._heads)

    def __bool__(self) -> bool:
        return bool(self._heads)

    def __iter__(self) -> Iterator[BUN]:
        return iter(zip(self._heads, self._tails))

    def __eq__(self, other: object) -> bool:
        """Bag equality: same BUN multiset (order-insensitive)."""
        if not isinstance(other, BAT):
            return NotImplemented
        if len(self) != len(other):
            return False
        return sorted(map(repr, self)) == sorted(map(repr, other))

    def __hash__(self):  # pragma: no cover - BATs are not hashable
        raise TypeError("BAT objects are unhashable")

    def __repr__(self) -> str:
        label = self.name or "BAT"
        preview = ", ".join(f"({h!r},{t!r})" for h, t in list(self)[:4])
        suffix = ", ..." if len(self) > 4 else ""
        return f"<{label}[{len(self)}] {preview}{suffix}>"

    # -- indexes --------------------------------------------------------
    def head_index(self) -> Dict[Any, List[int]]:
        """Positions of each head value (lazily built hash index)."""
        if self._head_index is None:
            index: Dict[Any, List[int]] = {}
            for position, head in enumerate(self._heads):
                index.setdefault(head, []).append(position)
            self._head_index = index
        return self._head_index

    def tail_index(self) -> Dict[Any, List[int]]:
        """Positions of each tail value (lazily built hash index)."""
        if self._tail_index is None:
            index: Dict[Any, List[int]] = {}
            for position, tail in enumerate(self._tails):
                index.setdefault(tail, []).append(position)
            self._tail_index = index
        return self._tail_index

    def head_set(self) -> Set[Any]:
        return set(self._heads)

    def tail_set(self) -> Set[Any]:
        return set(self._tails)

    def find(self, head: Any) -> Any:
        """Tail of the first BUN with the given head; the MIL ``find``.

        Raises :class:`KeyError` if absent — this is the "basically a
        hash look-up" the paper uses for ``parent(o)`` in Fig. 3.
        """
        positions = self.head_index().get(head)
        if not positions:
            raise KeyError(head)
        return self._tails[positions[0]]

    def find_all(self, head: Any) -> List[Any]:
        """All tails associated with the given head, in BUN order."""
        positions = self.head_index().get(head, ())
        return [self._tails[p] for p in positions]

    # -- unary structural ops --------------------------------------------
    def reverse(self) -> "BAT":
        """MIL ``reverse``: swap head and tail columns (O(1) data copy)."""
        return BAT.from_columns(self._tails, self._heads, name=self.name)

    def mirror(self) -> "BAT":
        """MIL ``mirror``: (head, head) for every BUN."""
        return BAT.from_columns(self._heads, list(self._heads), name=self.name)

    def mark(self, base: int = 0) -> "BAT":
        """MIL ``mark``: number the BUNs — (head, base+position)."""
        return BAT.from_columns(
            self._heads, list(range(base, base + len(self))), name=self.name
        )

    def copy(self, name: Optional[str] = None) -> "BAT":
        return BAT.from_columns(
            list(self._heads), list(self._tails), name=self.name if name is None else name
        )

    # -- selections ------------------------------------------------------
    def select(self, predicate: Callable[[Any], bool]) -> "BAT":
        """BUNs whose *tail* satisfies the predicate (MIL ``select``)."""
        buns = [
            (head, tail)
            for head, tail in zip(self._heads, self._tails)
            if predicate(tail)
        ]
        return BAT(buns, name=self.name)

    def select_eq(self, value: Any) -> "BAT":
        """BUNs whose tail equals ``value`` (uses the tail hash index)."""
        positions = self.tail_index().get(value, ())
        return BAT(
            ((self._heads[p], self._tails[p]) for p in positions), name=self.name
        )

    def select_range(self, low: Any, high: Any) -> "BAT":
        """BUNs with ``low <= tail <= high``."""
        return self.select(lambda tail: low <= tail <= high)

    def uselect(self, predicate: Callable[[Any], bool]) -> "BAT":
        """Like ``select`` but returns (head, head) — MIL's uselect view."""
        buns = [
            (head, head)
            for head, tail in zip(self._heads, self._tails)
            if predicate(tail)
        ]
        return BAT(buns, name=self.name)

    def select_heads(self, wanted: Set[Any]) -> "BAT":
        """BUNs whose head is contained in ``wanted``."""
        buns = [
            (head, tail)
            for head, tail in zip(self._heads, self._tails)
            if head in wanted
        ]
        return BAT(buns, name=self.name)

    # -- joins -----------------------------------------------------------
    def join(self, other: "BAT") -> "BAT":
        """MIL ``join``: match self.tail with other.head.

        Returns (self.head, other.tail) for every matching pair; the
        inner columns are projected out, "leaving a binary relation —
        association in our terminology" (paper §3.2).  Hash join over
        the smaller build side.
        """
        result: List[BUN] = []
        other_index = other.head_index()
        for head, tail in zip(self._heads, self._tails):
            for position in other_index.get(tail, ()):
                result.append((head, other._tails[position]))
        return BAT(result)

    def semijoin(self, other: "BAT") -> "BAT":
        """MIL ``semijoin``: BUNs of self whose head occurs in other's head."""
        other_heads = other.head_set()
        return self.select_heads(other_heads)

    def antijoin_heads(self, other: "BAT") -> "BAT":
        """BUNs of self whose head does *not* occur in other's head."""
        other_heads = other.head_set()
        buns = [
            (head, tail)
            for head, tail in zip(self._heads, self._tails)
            if head not in other_heads
        ]
        return BAT(buns, name=self.name)

    # -- set operations (k-prefixed: key/head based, as in MIL) ----------
    def kdiff(self, other: "BAT") -> "BAT":
        """BUNs whose head is absent from other's head column."""
        return self.antijoin_heads(other)

    def kunion(self, other: "BAT") -> "BAT":
        """All BUNs of self plus other's BUNs with unseen heads."""
        seen = set(self._heads)
        buns = list(zip(self._heads, self._tails))
        for head, tail in other:
            if head not in seen:
                buns.append((head, tail))
        return BAT(buns, name=self.name)

    def kintersect(self, other: "BAT") -> "BAT":
        """BUNs of self whose head occurs in other's head column."""
        return self.semijoin(other)

    def union_all(self, other: "BAT") -> "BAT":
        """Bag union preserving duplicates (plain append)."""
        return BAT.from_columns(
            list(self._heads) + list(other._heads),
            list(self._tails) + list(other._tails),
            name=self.name,
        )

    # -- duplicate handling ----------------------------------------------
    def kunique(self) -> "BAT":
        """First BUN per distinct head value."""
        seen: Set[Any] = set()
        buns: List[BUN] = []
        for head, tail in zip(self._heads, self._tails):
            if head not in seen:
                seen.add(head)
                buns.append((head, tail))
        return BAT(buns, name=self.name)

    def unique(self) -> "BAT":
        """First occurrence per distinct (head, tail) pair."""
        seen: Set[BUN] = set()
        buns: List[BUN] = []
        for bun in zip(self._heads, self._tails):
            if bun not in seen:
                seen.add(bun)
                buns.append(bun)
        return BAT(buns, name=self.name)

    # -- grouping ----------------------------------------------------------
    def group_by_head(self) -> Dict[Any, List[Any]]:
        """head → list of tails, in BUN order."""
        groups: Dict[Any, List[Any]] = {}
        for head, tail in zip(self._heads, self._tails):
            groups.setdefault(head, []).append(tail)
        return groups

    def histogram(self) -> Dict[Any, int]:
        """head → multiplicity."""
        counts: Dict[Any, int] = {}
        for head in self._heads:
            counts[head] = counts.get(head, 0) + 1
        return counts

    # -- conversions ---------------------------------------------------
    def to_list(self) -> List[BUN]:
        return list(zip(self._heads, self._tails))

    def to_dict(self) -> Dict[Any, Any]:
        """head → first tail (convenience for functional BATs)."""
        result: Dict[Any, Any] = {}
        for head, tail in zip(self._heads, self._tails):
            result.setdefault(head, tail)
        return result
