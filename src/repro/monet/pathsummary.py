"""The path summary: interned paths forming the schema tree.

"The set of all paths in a document is called its path summary"
(Def. 3).  For the meet algorithms the summary is the *schema tree*
that Fig. 5 rolls up bottom-up, and it is also what makes the ⪯ prefix
tests of Fig. 3 cheap: every distinct path is interned once to a small
integer *pid* with a parent pointer, so prefix comparisons walk interned
ids instead of label sequences.

The paper assumes "for a given node with OID o we assume that we can
derive π(o) given an OID o" — the engine realizes that with an
OID → pid column; this class supplies the pid side.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..datamodel.errors import UnknownPathError
from ..datamodel.paths import ATTRIBUTE, Path

__all__ = ["PathSummary"]


class PathSummary:
    """Interning table for paths; doubles as the schema tree.

    pid 0 is reserved for the empty path (the virtual parent of
    document roots), so every real path has a parent pid and the schema
    tree is rooted.
    """

    def __init__(self):
        empty = Path()
        self._paths: List[Path] = [empty]
        self._pids: Dict[Path, int] = {empty: 0}
        self._parents: List[int] = [0]
        self._depths: List[int] = [0]
        self._children: List[List[int]] = [[]]

    # -- interning ---------------------------------------------------------
    def intern(self, path: Path) -> int:
        """Return the pid for ``path``, interning it (and its prefixes)."""
        pid = self._pids.get(path)
        if pid is not None:
            return pid
        if path.is_empty():
            return 0
        parent_pid = self.intern(path.parent())
        pid = len(self._paths)
        self._paths.append(path)
        self._pids[path] = pid
        self._parents.append(parent_pid)
        self._depths.append(len(path))
        self._children.append([])
        self._children[parent_pid].append(pid)
        return pid

    def pid(self, path: Path) -> int:
        """The pid of an already-interned path.

        Raises :class:`UnknownPathError` if the path was never interned.
        """
        try:
            return self._pids[path]
        except KeyError:
            raise UnknownPathError(path) from None

    def maybe_pid(self, path: Path) -> Optional[int]:
        return self._pids.get(path)

    def __contains__(self, path: object) -> bool:
        return isinstance(path, Path) and path in self._pids

    # -- accessors -----------------------------------------------------
    def path(self, pid: int) -> Path:
        return self._paths[pid]

    def parent(self, pid: int) -> int:
        """Parent pid; the empty path (pid 0) is its own parent."""
        return self._parents[pid]

    def depth(self, pid: int) -> int:
        return self._depths[pid]

    def children(self, pid: int) -> Tuple[int, ...]:
        return tuple(self._children[pid])

    def label(self, pid: int) -> str:
        path = self._paths[pid]
        return path.last.label if not path.is_empty() else ""

    def is_attribute(self, pid: int) -> bool:
        path = self._paths[pid]
        return not path.is_empty() and path.last.kind == ATTRIBUTE

    def __len__(self) -> int:
        return len(self._paths)

    def pids(self) -> Iterator[int]:
        """All real pids (excluding the reserved empty path)."""
        return iter(range(1, len(self._paths)))

    def all_paths(self) -> List[Path]:
        return self._paths[1:]

    # -- order & prefix machinery -------------------------------------
    def prefix_leq(self, pid1: int, pid2: int) -> bool:
        """The paper's ⪯ on pids: path(pid2) is a prefix of path(pid1).

        Walks parent pointers from the deeper pid; O(depth difference).
        """
        depth1, depth2 = self._depths[pid1], self._depths[pid2]
        if depth1 < depth2:
            return False
        while depth1 > depth2:
            pid1 = self._parents[pid1]
            depth1 -= 1
        return pid1 == pid2

    def common_prefix(self, pid1: int, pid2: int) -> int:
        """pid of the longest common prefix of two interned paths."""
        depth1, depth2 = self._depths[pid1], self._depths[pid2]
        while depth1 > depth2:
            pid1 = self._parents[pid1]
            depth1 -= 1
        while depth2 > depth1:
            pid2 = self._parents[pid2]
            depth2 -= 1
        while pid1 != pid2:
            pid1 = self._parents[pid1]
            pid2 = self._parents[pid2]
        return pid1

    # -- schema-tree traversals (for Fig. 5's roll-up) -------------------
    def pids_by_depth_desc(self) -> List[int]:
        """All real pids ordered from deepest to shallowest."""
        return sorted(self.pids(), key=lambda pid: -self._depths[pid])

    def postorder(self) -> List[int]:
        """Real pids in post-order (children before parents).

        This is the "pick a node all of whose children are leaves"
        contraction order of Fig. 5 flattened into a sequence.
        """
        order: List[int] = []
        stack: List[Tuple[int, bool]] = [(0, False)]
        while stack:
            pid, expanded = stack.pop()
            if expanded:
                if pid != 0:
                    order.append(pid)
                continue
            stack.append((pid, True))
            for child in reversed(self._children[pid]):
                stack.append((child, False))
        return order

    def element_pids(self) -> List[int]:
        """pids of element (non-attribute) paths."""
        return [pid for pid in self.pids() if not self.is_attribute(pid)]

    def attribute_pids(self) -> List[int]:
        """pids of attribute paths (string-valued leaves of the schema)."""
        return [pid for pid in self.pids() if self.is_attribute(pid)]

    def __repr__(self) -> str:
        return f"<PathSummary paths={len(self._paths) - 1}>"
