"""The path summary: interned paths forming the schema tree.

"The set of all paths in a document is called its path summary"
(Def. 3).  For the meet algorithms the summary is the *schema tree*
that Fig. 5 rolls up bottom-up, and it is also what makes the ⪯ prefix
tests of Fig. 3 cheap: every distinct path is interned once to a small
integer *pid* with a parent pointer, so prefix comparisons walk interned
ids instead of label sequences.

The paper assumes "for a given node with OID o we assume that we can
derive π(o) given an OID o" — the engine realizes that with an
OID → pid column; this class supplies the pid side.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..datamodel.errors import UnknownPathError
from ..datamodel.paths import ATTRIBUTE, Path

__all__ = ["PathSummary", "ColumnarPathSummary"]


class PathSummary:
    """Interning table for paths; doubles as the schema tree.

    pid 0 is reserved for the empty path (the virtual parent of
    document roots), so every real path has a parent pid and the schema
    tree is rooted.
    """

    def __init__(self):
        empty = Path()
        self._paths: List[Path] = [empty]
        self._pids: Dict[Path, int] = {empty: 0}
        self._parents: List[int] = [0]
        self._depths: List[int] = [0]
        self._children: List[List[int]] = [[]]

    # -- interning ---------------------------------------------------------
    def intern(self, path: Path) -> int:
        """Return the pid for ``path``, interning it (and its prefixes)."""
        pid = self._pids.get(path)
        if pid is not None:
            return pid
        if path.is_empty():
            return 0
        parent_pid = self.intern(path.parent())
        pid = len(self._paths)
        self._paths.append(path)
        self._pids[path] = pid
        self._parents.append(parent_pid)
        self._depths.append(len(path))
        self._children.append([])
        self._children[parent_pid].append(pid)
        return pid

    def pid(self, path: Path) -> int:
        """The pid of an already-interned path.

        Raises :class:`UnknownPathError` if the path was never interned.
        """
        try:
            return self._pids[path]
        except KeyError:
            raise UnknownPathError(path) from None

    def maybe_pid(self, path: Path) -> Optional[int]:
        return self._pids.get(path)

    def __contains__(self, path: object) -> bool:
        return isinstance(path, Path) and path in self._pids

    # -- accessors -----------------------------------------------------
    def path(self, pid: int) -> Path:
        return self._paths[pid]

    def parent(self, pid: int) -> int:
        """Parent pid; the empty path (pid 0) is its own parent."""
        return self._parents[pid]

    def depth(self, pid: int) -> int:
        return self._depths[pid]

    def children(self, pid: int) -> Tuple[int, ...]:
        return tuple(self._children[pid])

    def label(self, pid: int) -> str:
        path = self._paths[pid]
        return path.last.label if not path.is_empty() else ""

    def is_attribute(self, pid: int) -> bool:
        path = self._paths[pid]
        return not path.is_empty() and path.last.kind == ATTRIBUTE

    def __len__(self) -> int:
        return len(self._paths)

    def pids(self) -> Iterator[int]:
        """All real pids (excluding the reserved empty path)."""
        return iter(range(1, len(self._paths)))

    def all_paths(self) -> List[Path]:
        return self._paths[1:]

    # -- order & prefix machinery -------------------------------------
    def prefix_leq(self, pid1: int, pid2: int) -> bool:
        """The paper's ⪯ on pids: path(pid2) is a prefix of path(pid1).

        Walks parent pointers from the deeper pid; O(depth difference).
        """
        depth1, depth2 = self._depths[pid1], self._depths[pid2]
        if depth1 < depth2:
            return False
        while depth1 > depth2:
            pid1 = self._parents[pid1]
            depth1 -= 1
        return pid1 == pid2

    def common_prefix(self, pid1: int, pid2: int) -> int:
        """pid of the longest common prefix of two interned paths."""
        depth1, depth2 = self._depths[pid1], self._depths[pid2]
        while depth1 > depth2:
            pid1 = self._parents[pid1]
            depth1 -= 1
        while depth2 > depth1:
            pid2 = self._parents[pid2]
            depth2 -= 1
        while pid1 != pid2:
            pid1 = self._parents[pid1]
            pid2 = self._parents[pid2]
        return pid1

    # -- schema-tree traversals (for Fig. 5's roll-up) -------------------
    def pids_by_depth_desc(self) -> List[int]:
        """All real pids ordered from deepest to shallowest."""
        return sorted(self.pids(), key=lambda pid: -self._depths[pid])

    def postorder(self) -> List[int]:
        """Real pids in post-order (children before parents).

        This is the "pick a node all of whose children are leaves"
        contraction order of Fig. 5 flattened into a sequence.
        """
        order: List[int] = []
        stack: List[Tuple[int, bool]] = [(0, False)]
        while stack:
            pid, expanded = stack.pop()
            if expanded:
                if pid != 0:
                    order.append(pid)
                continue
            stack.append((pid, True))
            for child in reversed(self._children[pid]):
                stack.append((child, False))
        return order

    def element_pids(self) -> List[int]:
        """pids of element (non-attribute) paths."""
        return [pid for pid in self.pids() if not self.is_attribute(pid)]

    def attribute_pids(self) -> List[int]:
        """pids of attribute paths (string-valued leaves of the schema)."""
        return [pid for pid in self.pids() if self.is_attribute(pid)]

    def __repr__(self) -> str:
        return f"<PathSummary paths={len(self._paths) - 1}>"


class ColumnarPathSummary(PathSummary):
    """A summary rebound from flat parent/label/kind columns.

    The snapshot loader's summary: everything the meet machinery
    touches per query — parent pids, depths, children, labels, the ⪯
    walks — answers straight from the columns, so loading is O(columns)
    with **zero** :class:`~repro.datamodel.paths.Path` constructions.
    Path objects materialize lazily (memoized, sharing ancestor
    prefixes), and the first *path-keyed* operation (``pid()``,
    ``intern()``, ``in``) pays a one-off full materialization of the
    path → pid dictionary.
    """

    def __init__(
        self,
        parents: Sequence[int],
        labels: Sequence[str],
        kinds: Sequence[int],
    ):
        count = len(parents) + 1
        if not len(labels) == len(kinds) == count - 1:
            raise ValueError("summary columns disagree in length")
        parent_column: List[int] = [0]
        parent_column.extend(parents)
        label_column: List[str] = [""]
        label_column.extend(labels)
        attr_flags: List[bool] = [False]
        attr_flags.extend(bool(kind) for kind in kinds)
        depths = [0] * count
        children: List[List[int]] = [[] for _ in range(count)]
        for pid in range(1, count):
            parent = parent_column[pid]
            if not 0 <= parent < pid:
                raise ValueError(
                    f"summary parent {parent} out of order at pid {pid}"
                )
            depths[pid] = depths[parent] + 1
            children[parent].append(pid)
        self._parents = parent_column
        self._labels = label_column
        self._attr_flags = attr_flags
        self._depths = depths
        self._children = children
        empty = Path()
        self._paths = [empty] + [None] * (count - 1)  # type: ignore[list-item]
        self._pids = {empty: 0}
        #: Paths below this pid are present in ``_pids``.
        self._indexed_upto = 1

    # -- lazy materialization -------------------------------------------
    def path(self, pid: int) -> Path:
        cached = self._paths[pid]
        if cached is None:
            cached = self._materialize(pid)
        return cached

    def _materialize(self, pid: int) -> Path:
        paths = self._paths
        parents = self._parents
        chain: List[int] = []
        current = pid
        while paths[current] is None:
            chain.append(current)
            current = parents[current]
        path = paths[current]
        for current in reversed(chain):
            if self._attr_flags[current]:
                path = path.attribute(self._labels[current])
            else:
                path = path.child(self._labels[current])
            paths[current] = path
        return path

    def _ensure_index(self) -> None:
        count = len(self._paths)
        if self._indexed_upto >= count:
            return
        pids = self._pids
        for pid in range(self._indexed_upto, count):
            pids[self.path(pid)] = pid
        self._indexed_upto = count

    # -- overrides touching lazy state ----------------------------------
    def label(self, pid: int) -> str:
        return self._labels[pid]

    def is_attribute(self, pid: int) -> bool:
        return self._attr_flags[pid]

    def all_paths(self) -> List[Path]:
        return [self.path(pid) for pid in self.pids()]

    def pid(self, path: Path) -> int:
        self._ensure_index()
        return super().pid(path)

    def maybe_pid(self, path: Path) -> Optional[int]:
        self._ensure_index()
        return super().maybe_pid(path)

    def __contains__(self, path: object) -> bool:
        self._ensure_index()
        return super().__contains__(path)

    def intern(self, path: Path) -> int:
        self._ensure_index()
        pid = super().intern(path)
        # ``intern`` may have appended this path plus missing prefixes,
        # and it recurses through *this* override for each prefix — so
        # sync the label/kind columns against their own length (inner
        # frames have already covered theirs), never a captured start.
        for new_pid in range(len(self._labels), len(self._paths)):
            step = self._paths[new_pid].last
            self._labels.append(step.label)
            self._attr_flags.append(step.kind == ATTRIBUTE)
        self._indexed_upto = len(self._paths)
        return pid
