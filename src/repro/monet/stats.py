"""Descriptive statistics of a Monet XML store.

The paper argues the schema of semistructured data "may be large,
unknown or implicit and therefore opaque to the user" (§1, citing
[1, 15]).  These statistics are the quantitative face of that
argument: path-summary size vs. instance size, instance counts per
path, depth and fan-out profiles.  The CLI's ``describe`` command and
the dataset tests use them; they also give query planners the
cardinalities they need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..datamodel.paths import Path
from .engine import MonetXML

__all__ = ["StoreStatistics", "collect_statistics"]


@dataclass(slots=True)
class StoreStatistics:
    """Aggregate shape numbers of one store."""

    node_count: int
    distinct_paths: int
    element_paths: int
    attribute_paths: int
    string_associations: int
    max_depth: int
    mean_depth: float
    max_fanout: int
    mean_fanout: float
    #: instance nodes per path, densest first.
    path_histogram: List[Tuple[Path, int]] = field(default_factory=list)
    #: nodes per depth level (index 0 unused; depth is 1-based).
    depth_histogram: List[int] = field(default_factory=list)
    #: instance nodes per element pid — the planner's cardinalities.
    pid_histogram: Dict[int, int] = field(default_factory=dict)
    #: string associations per attribute pid (planner cardinalities).
    association_histogram: Dict[int, int] = field(default_factory=dict)

    def schema_ratio(self) -> float:
        """Distinct paths per node — the 'loose schema' measure.

        Near 1.0 means every node has its own path (pathological);
        near 0 means a regular, relational-ish instance.
        """
        if self.node_count == 0:
            return 0.0
        return self.distinct_paths / self.node_count

    def render(self, top: int = 10) -> str:
        """Human-readable multi-line description."""
        lines = [
            f"nodes:               {self.node_count}",
            f"distinct paths:      {self.distinct_paths} "
            f"({self.element_paths} element, {self.attribute_paths} attribute)",
            f"schema ratio:        {self.schema_ratio():.4f} paths/node",
            f"string associations: {self.string_associations}",
            f"depth:               max {self.max_depth}, "
            f"mean {self.mean_depth:.2f}",
            f"fan-out:             max {self.max_fanout}, "
            f"mean {self.mean_fanout:.2f}",
            f"densest paths:",
        ]
        for path, count in self.path_histogram[:top]:
            lines.append(f"  {count:>8}  {path}")
        return "\n".join(lines)


def collect_statistics(store: MonetXML) -> StoreStatistics:
    """One pass over the columns; O(nodes + relations)."""
    summary = store.summary
    node_count = store.node_count

    path_counts: Dict[int, int] = {}
    depth_total = 0
    max_depth = 0
    depth_histogram: List[int] = []
    for oid in store.iter_oids():
        pid = store.pid_of(oid)
        path_counts[pid] = path_counts.get(pid, 0) + 1
        depth = summary.depth(pid)
        depth_total += depth
        if depth > max_depth:
            max_depth = depth
        while len(depth_histogram) <= depth:
            depth_histogram.append(0)
        depth_histogram[depth] += 1

    child_counts: Dict[int, int] = {}
    for oid in store.iter_oids():
        parent = store.parent_of(oid)
        if parent is not None:
            child_counts[parent] = child_counts.get(parent, 0) + 1
    internal = len(child_counts)
    max_fanout = max(child_counts.values(), default=0)
    mean_fanout = (
        sum(child_counts.values()) / internal if internal else 0.0
    )

    association_histogram: Dict[int, int] = {}
    for pid, relation in store.string_relations():
        association_histogram[pid] = relation.count()
    string_associations = sum(association_histogram.values())

    histogram = sorted(
        ((summary.path(pid), count) for pid, count in path_counts.items()),
        key=lambda item: (-item[1], str(item[0])),
    )

    element_paths = len(summary.element_pids())
    attribute_paths = len(summary.attribute_pids())
    return StoreStatistics(
        node_count=node_count,
        distinct_paths=element_paths + attribute_paths,
        element_paths=element_paths,
        attribute_paths=attribute_paths,
        string_associations=string_associations,
        max_depth=max_depth,
        mean_depth=depth_total / node_count if node_count else 0.0,
        max_fanout=max_fanout,
        mean_fanout=mean_fanout,
        path_histogram=histogram,
        depth_histogram=depth_histogram,
        pid_histogram=path_counts,
        association_histogram=association_histogram,
    )
