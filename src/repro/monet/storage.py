"""Persistence of a :class:`MonetXML` store to a single JSON image.

The on-disk format is a versioned, self-contained JSON document:
the interned path summary (as serialized path strings in pid order),
the three relation families and the root/first OIDs.  JSON keeps the
image portable and diff-able; load rebuilds the dense OID columns from
the relations, then :meth:`MonetXML.validate` cross-checks them.
"""

from __future__ import annotations

import json
from pathlib import Path as FsPath
from typing import Dict, List, Optional, Union

from ..datamodel.errors import ReproError, StorageError
from ..datamodel.paths import Path
from .bat import BAT
from .engine import MonetXML
from .pathsummary import PathSummary

__all__ = ["save", "load", "dumps", "loads"]

_FORMAT_VERSION = 1


def _encode(store: MonetXML) -> Dict:
    summary = store.summary
    return {
        "format": "repro-monet-xml",
        "version": _FORMAT_VERSION,
        "root_oid": store.root_oid,
        "first_oid": store.first_oid,
        "node_count": store.node_count,
        "paths": [str(summary.path(pid)) for pid in summary.pids()],
        "edges": {
            str(summary.path(pid)): relation.to_list()
            for pid, relation in store.edges.items()
        },
        "strings": {
            str(summary.path(pid)): relation.to_list()
            for pid, relation in store.strings.items()
        },
        "ranks": {
            str(summary.path(pid)): relation.to_list()
            for pid, relation in store.ranks.items()
        },
    }


def dumps(store: MonetXML, indent: Optional[int] = None) -> str:
    """Serialize a store to a JSON string."""
    return json.dumps(_encode(store), indent=indent)


def save(
    store: MonetXML, path: Union[str, FsPath], indent: Optional[int] = None
) -> None:
    """Write the JSON image of a store to ``path``.

    ``indent`` is forwarded to :func:`dumps`, so human-diffable
    pretty-printed images don't require going through ``dumps`` by
    hand.
    """
    FsPath(path).write_text(dumps(store, indent=indent), encoding="utf-8")


def _required(image: Dict, key: str):
    """Image field access that reports truncation, not ``KeyError``."""
    try:
        return image[key]
    except (KeyError, TypeError):
        raise StorageError(
            f"truncated image: required field {key!r} is missing"
        ) from None


def loads(text: str) -> MonetXML:
    """Rebuild a store from a JSON string produced by :func:`dumps`.

    Every corruption mode — missing fields, malformed relations,
    out-of-range OIDs — raises :class:`StorageError` with the reason;
    ``KeyError``/``TypeError``/``IndexError`` never escape.
    """
    try:
        image = json.loads(text)
    except json.JSONDecodeError as exc:
        raise StorageError(f"not a JSON image: {exc}") from exc
    if not isinstance(image, dict):
        raise StorageError("not a repro Monet-XML image (not a JSON object)")
    if image.get("format") != "repro-monet-xml":
        raise StorageError("not a repro Monet-XML image")
    if image.get("version") != _FORMAT_VERSION:
        raise StorageError(f"unsupported image version {image.get('version')!r}")

    summary = PathSummary()
    try:
        for text_path in _required(image, "paths"):
            summary.intern(Path.parse(text_path))
    except StorageError:
        raise
    except Exception as exc:
        raise StorageError(f"corrupt path summary in image: {exc}") from exc

    def rebuild(key: str) -> Dict[int, BAT]:
        family = _required(image, key)
        if not isinstance(family, dict):
            raise StorageError(f"corrupt relation family {key!r}: not a mapping")
        relations: Dict[int, BAT] = {}
        for name, buns in family.items():
            try:
                pid = summary.intern(Path.parse(name))
                relations[pid] = BAT(
                    ((head, tail) for head, tail in buns), name=name
                )
            except StorageError:
                raise
            except Exception as exc:
                raise StorageError(
                    f"corrupt relation {name!r} in family {key!r}: {exc}"
                ) from exc
        return relations

    edges = rebuild("edges")
    strings = rebuild("strings")
    ranks = rebuild("ranks")

    first_oid = _required(image, "first_oid")
    node_count = _required(image, "node_count")
    root_oid = _required(image, "root_oid")
    if not all(isinstance(v, int) for v in (first_oid, node_count, root_oid)):
        raise StorageError(
            "corrupt image: first_oid/node_count/root_oid must be ints"
        )
    if node_count < 0:
        raise StorageError(f"corrupt image: negative node_count {node_count}")
    oid_pid: List[int] = [0] * node_count
    oid_parent: List[Optional[int]] = [None] * node_count
    oid_rank: List[int] = [0] * node_count
    try:
        for pid, relation in ranks.items():
            for oid, rank in relation:
                if not 0 <= oid - first_oid < node_count:
                    raise StorageError(
                        f"truncated image: OID {oid} outside the declared "
                        f"node range"
                    )
                if not isinstance(rank, int):
                    raise StorageError(
                        f"corrupt image: non-numeric rank {rank!r} at OID {oid}"
                    )
                oid_pid[oid - first_oid] = pid
                oid_rank[oid - first_oid] = rank
        for pid, relation in edges.items():
            for parent, child in relation:
                if not 0 <= child - first_oid < node_count:
                    raise StorageError(
                        f"truncated image: OID {child} outside the declared "
                        f"node range"
                    )
                if not isinstance(parent, int):
                    raise StorageError(
                        f"corrupt image: non-numeric parent {parent!r} at "
                        f"OID {child}"
                    )
                oid_parent[child - first_oid] = parent
    except StorageError:
        raise
    except TypeError as exc:
        raise StorageError(f"corrupt image: non-numeric OID ({exc})") from exc

    store = MonetXML(
        summary=summary,
        root_oid=root_oid,
        first_oid=first_oid,
        oid_pid=oid_pid,
        oid_parent=oid_parent,
        oid_rank=oid_rank,
        edges=edges,
        strings=strings,
        ranks=ranks,
    )
    try:
        store.validate()
    except ReproError as exc:
        raise StorageError(f"inconsistent image: {exc}") from exc
    return store


def load(path: Union[str, FsPath]) -> MonetXML:
    """Read a JSON image from disk and rebuild the store."""
    try:
        text = FsPath(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise StorageError(f"cannot read image {path}: {exc}") from exc
    return loads(text)
