"""Persistence of a :class:`MonetXML` store to a single JSON image.

The on-disk format is a versioned, self-contained JSON document:
the interned path summary (as serialized path strings in pid order),
the three relation families and the root/first OIDs.  JSON keeps the
image portable and diff-able; load rebuilds the dense OID columns from
the relations, then :meth:`MonetXML.validate` cross-checks them.
"""

from __future__ import annotations

import json
from pathlib import Path as FsPath
from typing import Dict, List, Optional, Union

from ..datamodel.errors import StorageError
from ..datamodel.paths import Path
from .bat import BAT
from .engine import MonetXML
from .pathsummary import PathSummary

__all__ = ["save", "load", "dumps", "loads"]

_FORMAT_VERSION = 1


def _encode(store: MonetXML) -> Dict:
    summary = store.summary
    return {
        "format": "repro-monet-xml",
        "version": _FORMAT_VERSION,
        "root_oid": store.root_oid,
        "first_oid": store.first_oid,
        "node_count": store.node_count,
        "paths": [str(summary.path(pid)) for pid in summary.pids()],
        "edges": {
            str(summary.path(pid)): relation.to_list()
            for pid, relation in store.edges.items()
        },
        "strings": {
            str(summary.path(pid)): relation.to_list()
            for pid, relation in store.strings.items()
        },
        "ranks": {
            str(summary.path(pid)): relation.to_list()
            for pid, relation in store.ranks.items()
        },
    }


def dumps(store: MonetXML, indent: Optional[int] = None) -> str:
    """Serialize a store to a JSON string."""
    return json.dumps(_encode(store), indent=indent)


def save(store: MonetXML, path: Union[str, FsPath]) -> None:
    """Write the JSON image of a store to ``path``."""
    FsPath(path).write_text(dumps(store), encoding="utf-8")


def loads(text: str) -> MonetXML:
    """Rebuild a store from a JSON string produced by :func:`dumps`."""
    try:
        image = json.loads(text)
    except json.JSONDecodeError as exc:
        raise StorageError(f"not a JSON image: {exc}") from exc
    if image.get("format") != "repro-monet-xml":
        raise StorageError("not a repro Monet-XML image")
    if image.get("version") != _FORMAT_VERSION:
        raise StorageError(f"unsupported image version {image.get('version')!r}")

    summary = PathSummary()
    for text_path in image["paths"]:
        summary.intern(Path.parse(text_path))

    def rebuild(family: Dict) -> Dict[int, BAT]:
        relations: Dict[int, BAT] = {}
        for name, buns in family.items():
            pid = summary.intern(Path.parse(name))
            relations[pid] = BAT(
                ((head, tail) for head, tail in buns), name=name
            )
        return relations

    edges = rebuild(image["edges"])
    strings = rebuild(image["strings"])
    ranks = rebuild(image["ranks"])

    first_oid = image["first_oid"]
    node_count = image["node_count"]
    oid_pid: List[int] = [0] * node_count
    oid_parent: List[Optional[int]] = [None] * node_count
    oid_rank: List[int] = [0] * node_count
    for pid, relation in ranks.items():
        for oid, rank in relation:
            oid_pid[oid - first_oid] = pid
            oid_rank[oid - first_oid] = rank
    for pid, relation in edges.items():
        for parent, child in relation:
            oid_parent[child - first_oid] = parent

    store = MonetXML(
        summary=summary,
        root_oid=image["root_oid"],
        first_oid=first_oid,
        oid_pid=oid_pid,
        oid_parent=oid_parent,
        oid_rank=oid_rank,
        edges=edges,
        strings=strings,
        ranks=ranks,
    )
    store.validate()
    return store


def load(path: Union[str, FsPath]) -> MonetXML:
    """Read a JSON image from disk and rebuild the store."""
    try:
        text = FsPath(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise StorageError(f"cannot read image {path}: {exc}") from exc
    return loads(text)
