"""The running example document of the paper (Figure 1).

A bibliography of one institute holding two articles:

* article ``BB99`` — author Ben Bit (firstname/lastname sub-elements),
  title "How to Hack", year 1999;
* article ``BK99`` — author Bob Byte (flat cdata), year 1999,
  title "Hacking & RSI".

With ``first_oid=1`` the depth-first pre-order OIDs reproduce Figure 1
exactly (o1 = bibliography … o19 = the "Hacking & RSI" cdata), which
the tests in ``tests/core/test_paper_examples.py`` rely on to replay
the worked examples of §3.1 verbatim.
"""

from __future__ import annotations

from ..datamodel.builder import DocumentBuilder
from ..datamodel.document import Document

__all__ = ["figure1_document", "FIGURE1_OIDS"]

#: Symbolic names for the OIDs of Figure 1 (first_oid=1).
FIGURE1_OIDS = {
    "bibliography": 1,
    "institute": 2,
    "article1": 3,
    "author1": 4,
    "firstname": 5,
    "cdata_ben": 6,
    "lastname": 7,
    "cdata_bit": 8,
    "title1": 9,
    "cdata_how_to_hack": 10,
    "year1": 11,
    "cdata_1999_a": 12,
    "article2": 13,
    "author2": 14,
    "cdata_bob_byte": 15,
    "year2": 16,
    "cdata_1999_b": 17,
    "title2": 18,
    "cdata_hacking_rsi": 19,
}


def figure1_document() -> Document:
    """Build the Figure 1 example document (OIDs start at 1)."""
    builder = DocumentBuilder("bibliography")
    builder.down("institute")
    # Article 1: nested author with firstname/lastname.
    builder.down("article", key="BB99")
    builder.down("author")
    builder.leaf("firstname", "Ben")
    builder.leaf("lastname", "Bit")
    builder.up()
    builder.leaf("title", "How to Hack")
    builder.leaf("year", "1999")
    builder.up()
    # Article 2: flat author, year before title (as drawn in Figure 1).
    builder.down("article", key="BK99")
    builder.leaf("author", "Bob Byte")
    builder.leaf("year", "1999")
    builder.leaf("title", "Hacking & RSI")
    builder.up()
    builder.up()
    return builder.build(first_oid=1)
