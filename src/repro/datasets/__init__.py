"""Datasets: the paper's example document and synthetic substitutes.

* :func:`figure1_document` — the running example (Figure 1), exact OIDs.
* :func:`dblp_document` — synthetic DBLP with ICDE 1984–1999 (no 1985),
  substitute for the real DBLP of the §5 case study.
* :func:`multimedia_document` / :func:`multimedia_with_markers` —
  synthetic feature-detector output with plantable term distances,
  substitute for the 200 MB multimedia file of §5.
* :func:`random_document` — property-test material.
"""

from .dblp import (
    DblpConfig,
    ICDE_MISSING_YEAR,
    dblp_document,
    expected_icde_publications,
)
from .figure1 import FIGURE1_OIDS, figure1_document
from .multimedia import (
    MultimediaConfig,
    marker_terms,
    multimedia_document,
    multimedia_with_markers,
)
from .plays import PlaysConfig, plays_document
from .randomtree import random_document, random_oid_pairs

__all__ = [
    "DblpConfig",
    "FIGURE1_OIDS",
    "ICDE_MISSING_YEAR",
    "MultimediaConfig",
    "PlaysConfig",
    "plays_document",
    "dblp_document",
    "expected_icde_publications",
    "figure1_document",
    "marker_terms",
    "multimedia_document",
    "multimedia_with_markers",
    "random_document",
    "random_oid_pairs",
]
