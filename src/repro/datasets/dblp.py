"""Synthetic DBLP bibliography — substitute for the real DBLP of §5.

The paper's case study bulk-loads "the DBLP bibliography, which is
available on the Internet" and runs the query *"all publications in
the ICDE proceedings of a certain year"* as a full-text search for
"ICDE" and the year followed by ``meet`` with the root excluded.  The
search interval is widened 1999 back to 1984, and the paper notes
"there was no ICDE in 1985, hence the small step at about 1100 on the
x-axis".

This generator reproduces the *structural* properties that the
experiment depends on:

* flat DBLP mark-up: ``dblp/inproceedings`` and ``dblp/article``
  entries with author/title/year/booktitle/journal/pages children;
* per-venue proceedings entries whose titles mention venue and year;
* venue series with yearly instalments 1984–1999, **ICDE skipping
  1985**;
* the mark-up irregularity that motivates schema-oblivious search:
  a fraction of entries use structured ``author/firstname+lastname``,
  attribute-encoded keys, optional ``pages``/``ee``/``url`` fields.

Everything is deterministic in the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Sequence, Tuple

from ..datamodel.builder import DocumentBuilder, element
from ..datamodel.document import Document
from ..datamodel.node import Node
from .textpool import LAST_NAMES, paper_title, person_name

__all__ = ["DblpConfig", "dblp_document", "ICDE_MISSING_YEAR"]

#: The paper: "note that there was no ICDE in 1985".
ICDE_MISSING_YEAR = 1985

_DEFAULT_VENUES: Tuple[str, ...] = ("ICDE", "VLDB", "SIGMOD", "EDBT")


@dataclass(slots=True)
class DblpConfig:
    """Knobs of the synthetic bibliography."""

    seed: int = 2001
    first_year: int = 1984
    last_year: int = 1999
    venues: Sequence[str] = _DEFAULT_VENUES
    #: inproceedings per venue-year instalment.
    papers_per_proceedings: int = 20
    #: additional journal articles per year (schema variety).
    articles_per_year: int = 5
    #: fraction of entries with structured author names.
    structured_author_fraction: float = 0.3
    #: fraction of entries carrying optional fields (pages, ee, url).
    optional_field_fraction: float = 0.6

    def years(self) -> range:
        return range(self.first_year, self.last_year + 1)

    def has_instalment(self, venue: str, year: int) -> bool:
        return not (venue == "ICDE" and year == ICDE_MISSING_YEAR)


def _author_node(rng: Random, config: DblpConfig) -> Node:
    """An author child, flat or structured (mark-up irregularity)."""
    name = person_name(rng)
    if rng.random() < config.structured_author_fraction:
        author = element("author")
        first, last = name.split(" ", 1)
        author.append(element("firstname", first))
        author.append(element("lastname", last))
        return author
    return element("author", name)


def _entry_stamp(rng: Random, year: int) -> str:
    """A DBLP-style key stamp: surname glued to a two-digit year.

    Real DBLP keys look like ``conf/icde/Schmidt99`` — the year never
    appears as a standalone token, so full-text searches for a year hit
    ``year`` elements and proceedings titles, not every key/URL.  The
    synthetic keys preserve that property (it keeps the §5 case-study
    hit sets faithful).
    """
    surname = rng.choice(LAST_NAMES)
    return f"{surname}{year % 100:02d}{rng.randint(0, 9)}"


def _add_inproceedings(
    builder: DocumentBuilder,
    rng: Random,
    config: DblpConfig,
    venue: str,
    year: int,
    number: int,
) -> None:
    stamp = _entry_stamp(rng, year)
    key = f"conf/{venue.lower()}/{stamp}"
    builder.down("inproceedings", key=key)
    for _ in range(rng.randint(1, 3)):
        builder.subtree(_author_node(rng, config))
    builder.leaf("title", paper_title(rng, words=rng.randint(4, 7)))
    builder.leaf("booktitle", venue)
    builder.leaf("year", str(year))
    if rng.random() < config.optional_field_fraction:
        start = rng.randint(1, 600)
        builder.leaf("pages", f"{start}-{start + rng.randint(5, 20)}")
    if rng.random() < config.optional_field_fraction:
        builder.leaf("ee", f"db/conf/{venue.lower()}/{stamp}.html")
    builder.up()


def _add_article(
    builder: DocumentBuilder, rng: Random, config: DblpConfig, year: int, number: int
) -> None:
    journal = rng.choice(("VLDB Journal", "TODS", "SIGMOD Record", "Information Systems"))
    stamp = _entry_stamp(rng, year)
    key = f"journals/{journal.split()[0].lower()}/{stamp}"
    builder.down("article", key=key)
    for _ in range(rng.randint(1, 3)):
        builder.subtree(_author_node(rng, config))
    builder.leaf("title", paper_title(rng, words=rng.randint(4, 8)))
    builder.leaf("journal", journal)
    builder.leaf("volume", str(rng.randint(1, 30)))
    builder.leaf("year", str(year))
    if rng.random() < config.optional_field_fraction:
        builder.leaf("url", f"db/{key}.html")
    builder.up()


_VENUE_LONG_NAMES = {
    "ICDE": "International Conference on Data Engineering",
    "VLDB": "International Conference on Very Large Data Bases",
    "SIGMOD": "International Conference on Management of Data",
    "EDBT": "International Conference on Extending Database Technology",
}


def _add_proceedings(
    builder: DocumentBuilder, rng: Random, config: DblpConfig, venue: str, year: int
) -> None:
    # Real DBLP proceedings titles spell the conference name out (the
    # acronym appears in the booktitle element only), so a full-text
    # search for the acronym matches one association per entry.
    long_name = _VENUE_LONG_NAMES.get(venue, f"{venue} Conference")
    builder.down("proceedings", key=f"conf/{venue.lower()}/{year}")
    builder.leaf("editor", person_name(rng))
    builder.leaf("title", f"Proceedings of the {long_name}, {year}")
    builder.leaf("booktitle", venue)
    builder.leaf("year", str(year))
    builder.leaf("publisher", rng.choice(("IEEE Computer Society", "ACM Press", "Morgan Kaufmann")))
    builder.up()


def dblp_document(config: DblpConfig | None = None) -> Document:
    """Generate the synthetic bibliography as one frozen document."""
    config = config or DblpConfig()
    rng = Random(config.seed)
    builder = DocumentBuilder("dblp")
    for year in config.years():
        for venue in config.venues:
            if not config.has_instalment(venue, year):
                continue
            _add_proceedings(builder, rng, config, venue, year)
            for number in range(1, config.papers_per_proceedings + 1):
                _add_inproceedings(builder, rng, config, venue, year, number)
        for number in range(1, config.articles_per_year + 1):
            _add_article(builder, rng, config, year, number)
    return builder.build(first_oid=1)


def expected_icde_publications(config: DblpConfig, years: Sequence[int]) -> int:
    """Ground truth for the case study: ICDE inproceedings in the years."""
    return sum(
        config.papers_per_proceedings
        for year in years
        if config.has_instalment("ICDE", year) and "ICDE" in config.venues
    )
