"""Random documents for property tests and ablation benches.

Shapes are controllable (size, fan-out, label alphabet, text density)
and fully determined by the seed.  The generator produces *documents*,
not bare trees, so every consumer exercises the real pipeline
(builder → freeze → Monet transform).
"""

from __future__ import annotations

from random import Random
from typing import List, Sequence, Tuple

from ..datamodel.document import Document
from ..datamodel.node import Node
from .textpool import TECH_NOUNS, sentence

__all__ = ["random_document", "random_oid_pairs"]

_DEFAULT_LABELS: Tuple[str, ...] = (
    "a", "b", "c", "record", "entry", "group", "list", "item", "value",
)


def random_document(
    seed: int,
    nodes: int = 200,
    max_children: int = 4,
    labels: Sequence[str] = _DEFAULT_LABELS,
    text_probability: float = 0.4,
    attribute_probability: float = 0.2,
    first_oid: int = 0,
) -> Document:
    """A random rooted document with roughly ``nodes`` element nodes.

    Built by repeatedly attaching children to a uniformly chosen node
    with remaining capacity, giving natural depth/fan-out variety.
    Character data (which materializes extra cdata nodes) and
    attributes are sprinkled per the probabilities.
    """
    if nodes < 1:
        raise ValueError("need at least the root node")
    rng = Random(seed)
    root = Node("root")
    open_nodes: List[Node] = [root]
    created = 1
    while created < nodes and open_nodes:
        parent = rng.choice(open_nodes)
        child = Node(rng.choice(list(labels)))
        parent.append(child)
        created += 1
        if len(parent.children) >= max_children:
            open_nodes.remove(parent)
        open_nodes.append(child)
        if rng.random() < text_probability:
            child.text = sentence(rng, TECH_NOUNS, rng.randint(1, 4))
        if rng.random() < attribute_probability:
            child.attributes[rng.choice(("kind", "id", "lang"))] = str(
                rng.randint(0, 99)
            )
    return Document(root, first_oid=first_oid)


def random_oid_pairs(
    document_or_store, count: int, seed: int = 0
) -> List[Tuple[int, int]]:
    """``count`` uniform OID pairs over a document or store."""
    rng = Random(seed)
    first = document_or_store.first_oid
    last = document_or_store.last_oid
    return [
        (rng.randint(first, last), rng.randint(first, last))
        for _ in range(count)
    ]
