"""Deterministic text material for the synthetic datasets.

Names, title vocabulary and helper generators shared by the DBLP and
multimedia generators.  Everything is driven by an explicit
:class:`random.Random` so documents are reproducible from a seed.
"""

from __future__ import annotations

from random import Random
from typing import Sequence

__all__ = [
    "FIRST_NAMES",
    "LAST_NAMES",
    "TITLE_WORDS",
    "TECH_NOUNS",
    "person_name",
    "paper_title",
    "sentence",
]

FIRST_NAMES: Sequence[str] = (
    "Ada", "Alan", "Albrecht", "Alice", "Anna", "Barbara", "Ben", "Bob",
    "Carol", "Chen", "Claire", "David", "Edgar", "Elena", "Erik", "Eva",
    "Felix", "Grace", "Hans", "Hector", "Ines", "Ivan", "James", "Jim",
    "Joan", "Jun", "Kurt", "Laura", "Lena", "Luis", "Maria", "Martin",
    "Menzo", "Miguel", "Nina", "Olaf", "Oscar", "Paula", "Peter", "Ravi",
    "Rosa", "Samir", "Sara", "Sofia", "Tanja", "Theo", "Uta", "Victor",
    "Wei", "Yuki",
)

LAST_NAMES: Sequence[str] = (
    "Abiteboul", "Baker", "Bit", "Boncz", "Byte", "Carey", "Chen", "Codd",
    "Davis", "Eisenberg", "Fernandez", "Fisher", "Garcia", "Goldman",
    "Gray", "Haas", "Hull", "Ioannidis", "Jagadish", "Kersten", "Kim",
    "Kossmann", "Lee", "Ley", "Lorentz", "Manolescu", "McHugh", "Miller",
    "Naughton", "Olston", "Patel", "Quass", "Ramakrishnan", "Schek",
    "Schmidt", "Silberschatz", "Stonebraker", "Suciu", "Tanaka", "Ullman",
    "Vianu", "Waas", "Widom", "Wiener", "Windhouwer", "Wong", "Yang",
    "Zaniolo", "Zhang", "Zhou",
)

TITLE_WORDS: Sequence[str] = (
    "Adaptive", "Aggregation", "Algebra", "Algorithms", "Analysis",
    "Approximate", "Architectures", "Benchmarking", "Caching", "Columnar",
    "Compression", "Concurrency", "Constraints", "Cost", "Data", "Database",
    "Declarative", "Dimensional", "Distributed", "Documents", "Efficient",
    "Engines", "Evaluation", "Execution", "Fragmented", "Hierarchical",
    "Incremental", "Indexing", "Integration", "Joins", "Keyword", "Languages",
    "Main-Memory", "Management", "Mediators", "Mining", "Models",
    "Navigation", "Optimization", "Parallel", "Partitioning", "Paths",
    "Performance", "Processing", "Queries", "Query", "Ranking", "Recovery",
    "Relational", "Replication", "Retrieval", "Schemas", "Search",
    "Semistructured", "Storage", "Streams", "Transactions", "Trees",
    "Views", "Warehouses", "Workloads", "XML",
)

TECH_NOUNS: Sequence[str] = (
    "histogram", "wavelet", "contour", "texture", "edge", "color",
    "gradient", "shape", "motion", "region", "silhouette", "spectrum",
    "luminance", "chroma", "saturation", "frequency", "keyframe",
    "caption", "transcript", "thumbnail",
)


def person_name(rng: Random) -> str:
    """A 'Firstname Lastname' author string."""
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"


def paper_title(rng: Random, words: int = 5) -> str:
    """A plausible paper title of the given word count."""
    return " ".join(rng.choice(TITLE_WORDS) for _ in range(words))


def sentence(rng: Random, vocabulary: Sequence[str], words: int) -> str:
    """A lowercase 'sentence' drawn from a vocabulary."""
    return " ".join(rng.choice(vocabulary) for _ in range(words))
