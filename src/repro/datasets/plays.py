"""Synthetic drama corpus — document-centric XML with recursive nesting.

The paper's motivation spans any XML whose mark-up the user does not
know; bibliographies and feature detectors are data-centric.  This
third domain is document-centric: plays with acts, scenes (including
*plays-within-plays*: scenes recursively containing scenes), speeches
and stage directions.  Recursive labels make the path summary grow
with nesting depth and give the `#` wildcard and the meet roll-up a
different shape to chew on than the flat DBLP mark-up.

Deterministic in the seed, like every generator here.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Sequence

from ..datamodel.builder import DocumentBuilder, element
from ..datamodel.document import Document
from ..datamodel.node import Node
from .textpool import FIRST_NAMES, sentence

__all__ = ["PlaysConfig", "plays_document"]

_SPEECH_WORDS: Sequence[str] = (
    "love", "night", "crown", "sword", "ghost", "storm", "letter",
    "garden", "poison", "throne", "fortune", "daughter", "king",
    "moon", "honour", "exile", "masque", "prophecy",
)

_TITLE_WORDS: Sequence[str] = (
    "Tragedy", "Comedy", "History", "Tempest", "Revenge", "Dream",
    "Winter", "Crown", "Masque", "Voyage",
)


@dataclass(slots=True)
class PlaysConfig:
    """Knobs of the synthetic drama corpus."""

    seed: int = 1601
    plays: int = 3
    acts_per_play: int = 3
    scenes_per_act: int = 3
    speeches_per_scene: int = 4
    #: probability that a scene contains a nested play-within-a-play.
    nested_scene_probability: float = 0.2
    #: maximum recursive nesting depth of scenes.
    max_nesting: int = 2


def _speech(rng: Random) -> Node:
    speech = element("speech")
    speech.append(element("speaker", rng.choice(FIRST_NAMES).upper()))
    for _ in range(rng.randint(1, 3)):
        speech.append(element("line", sentence(rng, _SPEECH_WORDS, rng.randint(4, 8))))
    return speech


def _scene(rng: Random, config: PlaysConfig, number: int, nesting: int) -> Node:
    scene = element("scene", number=str(number))
    scene.append(
        element("stagedir", f"Enter {rng.choice(FIRST_NAMES)} and {rng.choice(FIRST_NAMES)}")
    )
    for _ in range(config.speeches_per_scene):
        scene.append(_speech(rng))
    if (
        nesting < config.max_nesting
        and rng.random() < config.nested_scene_probability
    ):
        inner = element("scene", number=f"{number}-inner")
        inner.append(element("stagedir", "A play within the play"))
        for _ in range(2):
            inner.append(_speech(rng))
        scene.append(inner)
    return scene


def plays_document(config: PlaysConfig | None = None) -> Document:
    """Generate the corpus as one frozen document."""
    config = config or PlaysConfig()
    rng = Random(config.seed)
    builder = DocumentBuilder("plays")
    for play_number in range(config.plays):
        title = (
            f"The {rng.choice(_TITLE_WORDS)} of "
            f"{rng.choice(FIRST_NAMES)} {play_number + 1}"
        )
        builder.down("play")
        builder.leaf("title", title)
        builder.leaf("author", f"{rng.choice(FIRST_NAMES)} the Playwright")
        for act_number in range(1, config.acts_per_play + 1):
            builder.down("act", number=str(act_number))
            for scene_number in range(1, config.scenes_per_act + 1):
                builder.subtree(_scene(rng, config, scene_number, nesting=0))
            builder.up()
        builder.up()
    return builder.build(first_oid=1)
