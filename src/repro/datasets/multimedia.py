"""Synthetic multimedia feature-detector documents — the §5 substrate.

The paper's first experiment runs against "a file of about 200 MB with
descriptions of multimedia data items, extracted by feature detectors"
(their Acoi/feature-grammar pipeline, ref. [20]).  That file is not
available; this generator produces documents with the same structural
profile:

* a collection of ``item`` records (images/video/audio) whose
  analysis output is *deeply nested*: scenes containing regions
  containing features containing measurements — deep enough that two
  character-data leaves can sit up to ~20 edges apart, the x-axis of
  Figure 6;
* noisy descriptive vocabulary so full-text searches return
  realistically scattered hit sets.

For the Figure 6 sweep, :func:`multimedia_with_markers` additionally
*plants* pairs of unique marker tokens at exact tree distances: the
bench searches the two markers and measures the meet, so the distance
axis is controlled precisely rather than sampled.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, Sequence, Tuple

from ..datamodel.builder import DocumentBuilder, element
from ..datamodel.document import Document
from ..datamodel.node import Node
from .textpool import TECH_NOUNS, person_name, sentence

__all__ = [
    "MultimediaConfig",
    "multimedia_document",
    "multimedia_with_markers",
    "marker_terms",
]

_MEDIA_KINDS = ("image", "video", "audio")
_DETECTORS = ("colorhist", "edgemap", "faces", "ocr", "silence", "tempo")


@dataclass(slots=True)
class MultimediaConfig:
    """Knobs of the synthetic feature-detector output."""

    seed: int = 1999
    items: int = 50
    scenes_per_item: Tuple[int, int] = (1, 3)
    regions_per_scene: Tuple[int, int] = (1, 4)
    features_per_region: Tuple[int, int] = (1, 4)
    description_words: int = 6


def _feature(rng: Random) -> Node:
    feature = element("feature", detector=rng.choice(_DETECTORS))
    feature.append(element("name", rng.choice(TECH_NOUNS)))
    feature.append(element("value", f"{rng.random():.4f}"))
    feature.append(element("confidence", f"{rng.random():.2f}"))
    return feature


def _region(rng: Random, config: MultimediaConfig) -> Node:
    region = element("region")
    region.append(
        element(
            "bbox",
            x=str(rng.randint(0, 640)),
            y=str(rng.randint(0, 480)),
            w=str(rng.randint(1, 320)),
            h=str(rng.randint(1, 240)),
        )
    )
    region.append(element("annotation", sentence(rng, TECH_NOUNS, 3)))
    features = element("features")
    for _ in range(rng.randint(*config.features_per_region)):
        features.append(_feature(rng))
    region.append(features)
    return region


def _scene(rng: Random, config: MultimediaConfig, index: int) -> Node:
    scene = element("scene", number=str(index))
    scene.append(element("start", f"{rng.randint(0, 3600)}s"))
    regions = element("regions")
    for _ in range(rng.randint(*config.regions_per_scene)):
        regions.append(_region(rng, config))
    scene.append(regions)
    return scene


def _item(rng: Random, config: MultimediaConfig, index: int) -> Node:
    item = element("item", id=f"mm{index:05d}", kind=rng.choice(_MEDIA_KINDS))
    metadata = element("metadata")
    metadata.append(element("title", sentence(rng, TECH_NOUNS, 3)))
    metadata.append(element("creator", person_name(rng)))
    metadata.append(element("format", rng.choice(("jpeg", "mpeg", "wav", "png"))))
    metadata.append(
        element("description", sentence(rng, TECH_NOUNS, config.description_words))
    )
    item.append(metadata)
    analysis = element("analysis")
    scenes = element("scenes")
    for scene_index in range(rng.randint(*config.scenes_per_item)):
        scenes.append(_scene(rng, config, scene_index))
    analysis.append(scenes)
    item.append(analysis)
    return item


def multimedia_document(config: MultimediaConfig | None = None) -> Document:
    """A plain collection of feature-detector item descriptions."""
    config = config or MultimediaConfig()
    rng = Random(config.seed)
    builder = DocumentBuilder("multimedia")
    for index in range(config.items):
        builder.subtree(_item(rng, config, index))
    return builder.build(first_oid=1)


def marker_terms(distance: int) -> Tuple[str, str]:
    """The unique token pair planted for a given distance."""
    return (f"markera{distance}x", f"markerb{distance}x")


def _marker_chain(terms: Tuple[str, str], distance: int) -> Node:
    """A subtree placing the two marker *hit nodes* exactly ``distance``
    edges apart.

    Full-text hits resolve to the materialized ``cdata`` node carrying
    the string (or to the element itself for attribute values), so the
    chain is constructed in terms of those hit nodes:

    * distance 0 — both tokens in one character-data string;
    * distance 1 — one token as an *attribute* of the probe, the other
      as the probe's character data (element ↔ cdata child);
    * distance d ≥ 2 — a fork: two descendant chains of ⌊d/2⌋ and
      ⌈d/2⌉ edges ending in cdata leaves.
    """
    terma, termb = terms
    if distance < 0:
        raise ValueError("distance must be non-negative")
    if distance == 0:
        return element("probe", f"{terma} {termb}")
    if distance == 1:
        probe = element("probe", terma, note=termb)
        return probe

    def chain(edges: int, term: str) -> Node:
        """A branch of exactly ``edges`` edges from the fork to the hit."""
        if edges == 1:
            return Node("cdata", attributes={"string": term})
        top = element("hop")
        node = top
        for _ in range(edges - 2):
            child = element("hop")
            node.append(child)
            node = child
        node.text = term  # materializes as one final cdata edge
        return top

    probe = element("probe")
    left_edges = distance // 2
    right_edges = distance - left_edges
    probe.append(chain(left_edges, terma))
    probe.append(chain(right_edges, termb))
    return probe


def multimedia_with_markers(
    distances: Sequence[int], config: MultimediaConfig | None = None
) -> Tuple[Document, Dict[int, Tuple[str, str]]]:
    """A multimedia document with one planted marker pair per distance.

    Returns the document plus distance → (term₁, term₂).  Markers are
    attached under distinct items, spread deterministically, so
    measurements are independent.
    """
    config = config or MultimediaConfig()
    rng = Random(config.seed)
    builder = DocumentBuilder("multimedia")
    planted: Dict[int, Tuple[str, str]] = {}
    marker_slots = {}
    if config.items < len(distances):
        raise ValueError("need at least one item per planted distance")
    slot_rng = Random(config.seed + 1)
    slots = slot_rng.sample(range(config.items), len(distances))
    for slot, distance in zip(slots, distances):
        marker_slots[slot] = distance
    for index in range(config.items):
        item = _item(rng, config, index)
        if index in marker_slots:
            distance = marker_slots[index]
            terms = marker_terms(distance)
            planted[distance] = terms
            item.append(_marker_chain(terms, distance))
        builder.subtree(item)
    return builder.build(first_oid=1), planted
