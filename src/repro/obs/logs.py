"""Structured logging for the serving path.

One convention: log records carry their structured payload in a
``fields`` dict (``logger.info("access", extra={"fields": {...}})``,
or the :func:`log_event` shorthand).  Two formatters render it:

* :class:`JsonLogFormatter` — one JSON object per line (``ts``,
  ``level``, ``logger``, ``message``, then the fields flattened in),
  the machine-joinable form: an access line, a slow-query line and a
  failover line that share a ``trace_id`` are one request's story;
* :class:`TextLogFormatter` — the same record as
  ``HH:MM:SS LEVEL logger: message key=value ...`` for humans.

:func:`configure_logging` installs exactly one handler on the
``repro`` logger namespace (idempotent — reconfiguring replaces it,
so tests and repeated ``serve`` invocations never stack handlers) and
leaves propagation to the root off, keeping application logs out of
whatever the embedding process does with its own root handler.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Dict, Optional, TextIO

__all__ = [
    "JsonLogFormatter",
    "TextLogFormatter",
    "configure_logging",
    "log_event",
]

#: The handler name used to find (and replace) our own handler.
_HANDLER_NAME = "repro-obs"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def _record_fields(record: logging.LogRecord) -> Dict[str, object]:
    fields = getattr(record, "fields", None)
    return fields if isinstance(fields, dict) else {}


class JsonLogFormatter(logging.Formatter):
    """One JSON object per line; ``fields`` flattened into the object."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, object] = {
            "ts": round(record.created, 3),
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
            )
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        payload.update(_record_fields(record))
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class TextLogFormatter(logging.Formatter):
    """Human-readable: timestamp, level, logger, message, key=value."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        line = (
            f"{stamp} {record.levelname:<7} {record.name}: "
            f"{record.getMessage()}"
        )
        fields = _record_fields(record)
        if fields:
            line += " " + " ".join(
                f"{key}={value}" for key, value in fields.items()
            )
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def configure_logging(
    *,
    json_logs: bool = False,
    level: str = "warning",
    stream: Optional[TextIO] = None,
) -> logging.Handler:
    """Install (or replace) the one ``repro`` log handler.

    ``level`` names the threshold (``debug``/``info``/``warning``/
    ``error``); access logs are INFO, failover detail is DEBUG, slow
    queries are WARNING.  Returns the handler so tests can capture or
    detach it.
    """
    try:
        threshold = _LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}: choose from {sorted(_LEVELS)}"
        ) from None
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.name = _HANDLER_NAME
    handler.setFormatter(
        JsonLogFormatter() if json_logs else TextLogFormatter()
    )
    logger = logging.getLogger("repro")
    for existing in list(logger.handlers):
        if existing.name == _HANDLER_NAME:
            logger.removeHandler(existing)
    logger.addHandler(handler)
    logger.setLevel(threshold)
    logger.propagate = False
    return handler


def log_event(
    logger: logging.Logger, level: int, message: str, **fields: object
) -> None:
    """Emit one structured record (skips formatting when disabled)."""
    if logger.isEnabledFor(level):
        logger.log(level, message, extra={"fields": fields})
