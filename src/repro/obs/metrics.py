"""Typed metrics — counters, gauges, histograms — with a Prometheus view.

The serving tier used to keep its counters as ad-hoc ints scattered
across :mod:`repro.api.admission`, :mod:`repro.exec.executors`,
:mod:`repro.exec.cluster` and :mod:`repro.core.result_cache`; this
module gives them one vocabulary:

* :class:`Counter` — monotonically increasing (requests, hits, sheds);
* :class:`Gauge` — a level, settable or read through a callback at
  scrape time (queue depth, in-flight requests);
* :class:`Histogram` — cumulative-bucket latency distributions;
* :class:`CallbackGauge` — a multi-sample gauge whose labelled values
  are computed when scraped (per-replica circuit state).

Metric objects are **standalone and lock-guarded**: a component
creates its own (so construction never needs a registry parameter
threaded through every layer) and the server *registers* them —
optionally with constant labels such as ``collection="plays"`` — into
one :class:`MetricsRegistry`, whose :meth:`~MetricsRegistry.render`
emits the Prometheus text exposition format (``# HELP`` / ``# TYPE``
headers once per family, escaped label values, cumulative ``_bucket``
series with the ``+Inf`` bucket equal to ``_count``) and whose
:meth:`~MetricsRegistry.snapshot` feeds the JSON ``/v1/stats`` view.

Everything is stdlib; the text format is written by hand and held to
the spec by a strict parser in the test suite.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "CallbackGauge",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Seconds-denominated latency buckets: sub-millisecond cache hits up
#: to multi-second scatter pile-ups, then +Inf.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: One exposition sample: (name suffix, labels, value).  The suffix is
#: empty for scalar metrics and "_bucket"/"_sum"/"_count" for
#: histogram series.
Sample = Tuple[str, Dict[str, str], float]

_VALID_FIRST = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_VALID_REST = _VALID_FIRST | set("0123456789")


def _check_name(name: str) -> str:
    if not name or name[0] not in _VALID_FIRST or any(
        ch not in _VALID_REST for ch in name
    ):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):  # pragma: no cover - never produced here
        return "NaN"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _escape_help(text: str) -> str:
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _label_key(
    label_names: Sequence[str], labels: Mapping[str, object]
) -> Tuple[str, ...]:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {sorted(label_names)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in label_names)


class Counter:
    """A monotonically increasing count, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._values: Dict[Tuple[str, ...], float] = {}
        if not self.label_names:
            self._values[()] = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if self.label_names:
            raise ValueError(
                f"{self.name} is labelled; use .labels(...).inc()"
            )
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._values[()] += amount

    def labels(self, **labels: object) -> "_BoundCounter":
        return _BoundCounter(self, _label_key(self.label_names, labels))

    def _inc_key(self, key: Tuple[str, ...], amount: float) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    @property
    def value(self) -> float:
        """The unlabelled value (labelled counters: sum of children).

        Integral counts come back as ``int`` so snapshots that used to
        expose plain integer counters stay byte-identical.
        """
        with self._lock:
            total = sum(self._values.values())
        return int(total) if float(total).is_integer() else total

    def collect(self) -> List[Sample]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            ("", dict(zip(self.label_names, key)), value)
            for key, value in items
        ]


class _BoundCounter:
    __slots__ = ("_counter", "_key")

    def __init__(self, counter: Counter, key: Tuple[str, ...]):
        self._counter = counter
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._counter._inc_key(self._key, amount)


class Gauge:
    """A level that can go up and down — or be computed when scraped."""

    kind = "gauge"

    def __init__(self, name: str, help: str):
        self.name = _check_name(name)
        self.help = help
        self.label_names: Tuple[str, ...] = ()
        self._lock = threading.Lock()
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> "Gauge":
        """Read the level live at scrape time (queue depth, sizes)."""
        self._fn = fn
        return self

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value

    def collect(self) -> List[Sample]:
        return [("", {}, self.value)]


class CallbackGauge:
    """A gauge family whose labelled samples are computed per scrape.

    ``fn`` returns ``[(labels_dict, value), ...]`` — e.g. one row per
    replica with its circuit state.  The label *names* are fixed at
    construction so the exposition stays a consistent family.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        fn: Callable[[], List[Tuple[Dict[str, str], float]]],
    ):
        self.name = _check_name(name)
        self.help = help
        self.label_names = tuple(label_names)
        self._fn = fn

    def collect(self) -> List[Sample]:
        samples: List[Sample] = []
        for labels, value in self._fn():
            key = _label_key(self.label_names, labels)
            samples.append(
                ("", dict(zip(self.label_names, key)), float(value))
            )
        return samples


class Histogram:
    """Cumulative-bucket observations (Prometheus histogram semantics).

    ``buckets`` are upper bounds in ascending order; ``+Inf`` is
    implicit.  ``observe`` is O(len(buckets)) with one lock — cheap
    enough for the per-request path.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        self.name = _check_name(name)
        self.help = help
        self.label_names = tuple(label_names)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must ascend strictly")
        self.buckets = bounds
        self._lock = threading.Lock()
        # key -> (per-bucket counts (exclusive of +Inf), sum, count)
        self._series: Dict[
            Tuple[str, ...], Tuple[List[int], float, int]
        ] = {}
        if not self.label_names:
            self._series[()] = ([0] * len(bounds), 0.0, 0)

    def observe(self, value: float) -> None:
        if self.label_names:
            raise ValueError(
                f"{self.name} is labelled; use .labels(...).observe()"
            )
        self._observe_key((), value)

    def labels(self, **labels: object) -> "_BoundHistogram":
        return _BoundHistogram(self, _label_key(self.label_names, labels))

    def _observe_key(self, key: Tuple[str, ...], value: float) -> None:
        value = float(value)
        with self._lock:
            counts, total, count = self._series.get(
                key, ([0] * len(self.buckets), 0.0, 0)
            )
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
                    break
            self._series[key] = (counts, total + value, count + 1)

    def snapshot_key(
        self, key: Tuple[str, ...] = ()
    ) -> Tuple[List[int], float, int]:
        """(cumulative bucket counts incl. +Inf, sum, count)."""
        with self._lock:
            counts, total, count = self._series.get(
                key, ([0] * len(self.buckets), 0.0, 0)
            )
            counts = list(counts)
        cumulative: List[int] = []
        running = 0
        for bucket_count in counts:
            running += bucket_count
            cumulative.append(running)
        cumulative.append(count)  # +Inf
        return cumulative, total, count

    def collect(self) -> List[Sample]:
        with self._lock:
            keys = sorted(self._series)
        samples: List[Sample] = []
        for key in keys:
            cumulative, total, count = self.snapshot_key(key)
            base = dict(zip(self.label_names, key))
            for bound, running in zip(self.buckets, cumulative):
                labels = dict(base)
                labels["le"] = _format_value(bound)
                samples.append(("_bucket", labels, running))
            labels = dict(base)
            labels["le"] = "+Inf"
            samples.append(("_bucket", labels, count))
            samples.append(("_sum", dict(base), total))
            samples.append(("_count", dict(base), count))
        return samples


class _BoundHistogram:
    __slots__ = ("_histogram", "_key")

    def __init__(self, histogram: Histogram, key: Tuple[str, ...]):
        self._histogram = histogram
        self._key = key

    def observe(self, value: float) -> None:
        self._histogram._observe_key(self._key, value)


class MetricsRegistry:
    """Collects metric objects; renders one exposition per scrape.

    The same family name may be registered more than once (one result
    cache per collection, distinguished by constant labels) as long as
    kind and help agree — the renderer emits the ``# HELP`` / ``#
    TYPE`` header once and the samples of every instance under it.
    """

    def __init__(self):
        self._lock = threading.Lock()
        # name -> (kind, help, [(metric, const_labels), ...])
        self._families: Dict[
            str, Tuple[str, str, List[Tuple[object, Dict[str, str]]]]
        ] = {}

    def register(
        self, metric, labels: Optional[Mapping[str, object]] = None
    ) -> None:
        const = {str(k): str(v) for k, v in (labels or {}).items()}
        with self._lock:
            family = self._families.get(metric.name)
            if family is None:
                self._families[metric.name] = (
                    metric.kind, metric.help, [(metric, const)]
                )
                return
            kind, help_text, members = family
            if kind != metric.kind or help_text != metric.help:
                raise ValueError(
                    f"metric {metric.name!r} re-registered with a "
                    f"different kind or help text"
                )
            if not any(existing is metric and existing_labels == const
                       for existing, existing_labels in members):
                members.append((metric, const))

    # -- creating-and-registering conveniences ---------------------------
    def counter(
        self, name: str, help: str, labels: Sequence[str] = ()
    ) -> Counter:
        metric = Counter(name, help, label_names=labels)
        self.register(metric)
        return metric

    def gauge(self, name: str, help: str) -> Gauge:
        metric = Gauge(name, help)
        self.register(metric)
        return metric

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        metric = Histogram(name, help, label_names=labels, buckets=buckets)
        self.register(metric)
        return metric

    # -- exposition ------------------------------------------------------
    def render(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            families = sorted(
                (name, kind, help_text, list(members))
                for name, (kind, help_text, members) in self._families.items()
            )
        lines: List[str] = []
        for name, kind, help_text, members in families:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
            for metric, const in members:
                for suffix, labels, value in metric.collect():
                    merged = dict(const)
                    merged.update(labels)
                    if merged:
                        rendered = ",".join(
                            f'{key}="{_escape_label(val)}"'
                            for key, val in merged.items()
                        )
                        series = f"{name}{suffix}{{{rendered}}}"
                    else:
                        series = f"{name}{suffix}"
                    lines.append(f"{series} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready view of every family (the ``/v1/stats`` feed)."""
        with self._lock:
            families = sorted(
                (name, kind, list(members))
                for name, (kind, _help, members) in self._families.items()
            )
        out: Dict[str, object] = {}
        for name, kind, members in families:
            samples = []
            for metric, const in members:
                for suffix, labels, value in metric.collect():
                    merged = dict(const)
                    merged.update(labels)
                    samples.append(
                        {"suffix": suffix, "labels": merged, "value": value}
                    )
            out[name] = {"kind": kind, "samples": samples}
        return out
