"""Observability: request tracing, typed metrics, structured logs.

The instrumentation backbone of the serving tier (PR 8):

* :mod:`repro.obs.trace` — contextvar-carried per-request spans that
  survive the socket hop to remote shard workers and fold back into
  the coordinator's trace;
* :mod:`repro.obs.metrics` — counters/gauges/histograms behind
  ``/v1/stats`` and the Prometheus text exposition at ``/v1/metrics``;
* :mod:`repro.obs.logs` — the JSON/text structured-log convention and
  the one-handler configuration the ``serve`` CLI flags drive.
"""

from .logs import (
    JsonLogFormatter,
    TextLogFormatter,
    configure_logging,
    log_event,
)
from .metrics import (
    CallbackGauge,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import Trace, current_trace, new_trace_id, span, trace_scope

__all__ = [
    "CallbackGauge",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLogFormatter",
    "MetricsRegistry",
    "TextLogFormatter",
    "Trace",
    "configure_logging",
    "current_trace",
    "log_event",
    "new_trace_id",
    "span",
    "trace_scope",
]
