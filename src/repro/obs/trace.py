"""Per-request tracing: where a query's milliseconds go, per stage.

A :class:`Trace` is a flat bag of named spans — ``admission.wait``,
``cache.lookup``, ``shard.scatter``, ``shard[i].nearest``, ``merge``,
``serialize`` — each a single ``(name, ms)`` measurement on the
monotonic clock plus optional attributes (the worker ``pid`` for spans
produced out of process).  It rides the same
:class:`contextvars.ContextVar` pattern as
:mod:`repro.exec.deadline`: the front door opens a
:func:`trace_scope` around an admitted request, and every layer
underneath records through :func:`span` / :func:`current_trace`
without any call signature growing a ``trace=`` parameter.

Tracing is **opt-in per request** (the ``X-Repro-Trace: 1`` header or
the CLI ``--trace`` flag) and the disabled path is one contextvar
read returning ``None`` — cheap enough to leave compiled in on the
hot path.

Cross-process propagation mirrors how index-build counters already
travel: the coordinator stamps the trace id into each op's params
(``_trace``), the shard side measures its handler under
:meth:`~repro.exec.service.ShardService.handle` and attaches the
resulting spans to its response (``_spans``), and the coordinator
folds them back with :meth:`Trace.absorb` — the ``RXFM`` frame's
request-id matching already guarantees a response (and therefore its
spans) belongs to the request that asked.  Threads the executors fan
out to do not inherit the contextvar, and do not need to: the trace
id rides the op payload, and spans come home in the response.
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Trace",
    "current_trace",
    "new_trace_id",
    "span",
    "trace_scope",
]


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (unique enough to join logs on)."""
    return uuid.uuid4().hex[:16]


class Trace:
    """One request's span collection; thread-safe for scatter fan-out."""

    __slots__ = ("trace_id", "_spans", "_lock")

    def __init__(self, trace_id: Optional[str] = None):
        self.trace_id = trace_id or new_trace_id()
        self._spans: List[Dict[str, object]] = []
        self._lock = threading.Lock()

    # -- recording ------------------------------------------------------
    def add(self, name: str, ms: float, **attrs: object) -> None:
        """Record one finished span (milliseconds, rounded)."""
        entry: Dict[str, object] = {"name": name, "ms": round(float(ms), 3)}
        if attrs:
            entry.update(attrs)
        with self._lock:
            self._spans.append(entry)

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(
                name, (time.perf_counter() - started) * 1000, **attrs
            )

    def absorb(self, payload: object) -> None:
        """Fold spans produced elsewhere (a worker process) back in.

        ``payload`` is the ``_spans`` response envelope:
        ``{"trace_id": ..., "spans": [{"name", "ms", ...}, ...]}``.
        A missing payload is a non-traced response; a mismatched trace
        id is a stale answer and is dropped (the transport's
        request-id matching makes this unreachable in practice — the
        check is a correctness backstop, not a recovery path).
        """
        if not isinstance(payload, dict):
            return
        if payload.get("trace_id") != self.trace_id:
            return
        spans = payload.get("spans")
        if not isinstance(spans, (list, tuple)):
            return
        with self._lock:
            for entry in spans:
                if isinstance(entry, dict) and "name" in entry and "ms" in entry:
                    self._spans.append(dict(entry))

    # -- reading --------------------------------------------------------
    @property
    def spans(self) -> List[Dict[str, object]]:
        with self._lock:
            return [dict(entry) for entry in self._spans]

    def span_names(self) -> List[str]:
        return [str(entry["name"]) for entry in self.spans]

    def total_ms(self, name: str) -> float:
        """Sum of every span with this exact name."""
        return sum(
            float(entry["ms"]) for entry in self.spans if entry["name"] == name
        )

    def to_dict(self) -> Dict[str, object]:
        """The JSON payload surfaced as ``stats["trace"]``."""
        spans = self.spans
        return {
            "trace_id": self.trace_id,
            "spans": spans,
            "span_count": len(spans),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Trace {self.trace_id} spans={len(self._spans)}>"


_current: contextvars.ContextVar[Optional[Trace]] = contextvars.ContextVar(
    "repro_trace", default=None
)


def current_trace() -> Optional[Trace]:
    """The trace collecting this context, or ``None`` (tracing off)."""
    return _current.get()


@contextmanager
def trace_scope(trace: Optional[Trace]) -> Iterator[Optional[Trace]]:
    """Pin ``trace`` as the current one for the dynamic extent.

    ``None`` explicitly clears any inherited trace (a background task
    spawned from a request-scoped context must not keep appending to
    the request's spans).
    """
    token = _current.set(trace)
    try:
        yield trace
    finally:
        _current.reset(token)


@contextmanager
def span(name: str, **attrs: object) -> Iterator[None]:
    """Measure one stage into the current trace; a no-op when off."""
    trace = _current.get()
    if trace is None:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        trace.add(name, (time.perf_counter() - started) * 1000, **attrs)
