"""Baselines and comparators (paper §1 intro query, §6 related work).

* :mod:`~repro.baselines.naive_lca` — unsteered pairwise LCA walks.
* :class:`EulerTourLCA` — indexed O(1) LCA (classic refs. [4, 5]).
* :func:`tarjan_offline_lca` — offline batch LCA.
* :mod:`~repro.baselines.pathexpr_baseline` — the intro's inflated
  regular-path-expression answers.
* :mod:`~repro.baselines.proximity` — Goldman et al. [13] style
  "Find … Near …" ranking.
"""

from .euler_rmq import EulerTourLCA
from .naive_lca import lockstep_lca, naive_lca, naive_lca_pairs
from .path_steering import meet2_pathcmp
from .pathexpr_baseline import (
    BaselineAnswer,
    containment_answers,
    witness_pair_answers,
)
from .proximity import ProximityHit, find_near, find_near_terms
from .tarjan import DisjointSet, tarjan_offline_lca

__all__ = [
    "BaselineAnswer",
    "DisjointSet",
    "EulerTourLCA",
    "ProximityHit",
    "containment_answers",
    "find_near",
    "find_near_terms",
    "lockstep_lca",
    "meet2_pathcmp",
    "naive_lca",
    "naive_lca_pairs",
    "tarjan_offline_lca",
    "witness_pair_answers",
]
