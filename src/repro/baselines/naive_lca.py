"""Naive LCA baselines — what Fig. 3's path steering is compared against.

Two classic unsteered strategies:

* :func:`naive_lca` — materialize the full root path of o₁ as a set,
  then climb from o₂ until hitting it.  Always walks depth(o₁) +
  depth(o₂→meet) edges, where the steered walk of Fig. 3 touches only
  the d(o₁, o₂) edges between the nodes.
* :func:`lockstep_lca` — equalize depths, then climb in lock-step.
  Needs the depth column (which the Monet model provides for free) but
  no path comparisons.

Both also serve as independent oracles in the property tests of the
meet operator.

:func:`naive_lca_pairs` extends the pairwise loop to two OID sets —
the quadratic strategy the set-at-a-time ``meet_S`` (Fig. 4) avoids;
the ablation bench measures exactly this gap.  Note its result is the
*unfiltered* bag of pairwise LCAs: without the minimality bookkeeping
of Fig. 4 it exhibits the combinatorial explosion the paper warns
about (|O₁| × |O₂| results).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..datamodel.errors import ModelError
from ..monet.engine import MonetXML

__all__ = ["naive_lca", "lockstep_lca", "naive_lca_pairs"]


def naive_lca(store: MonetXML, oid1: int, oid2: int) -> int:
    """Ancestor-set LCA: O(depth₁) space, no steering."""
    ancestors: Set[int] = set()
    current: Optional[int] = oid1
    while current is not None:
        ancestors.add(current)
        current = store.parent_of(current)
    current = oid2
    while current is not None:
        if current in ancestors:
            return current
        current = store.parent_of(current)
    raise ModelError(f"OIDs {oid1} and {oid2} share no ancestor")


def lockstep_lca(store: MonetXML, oid1: int, oid2: int) -> int:
    """Depth-equalizing LCA: climb the deeper node, then both together."""
    depth1 = store.depth_of(oid1)
    depth2 = store.depth_of(oid2)
    current1: Optional[int] = oid1
    current2: Optional[int] = oid2
    while depth1 > depth2:
        assert current1 is not None
        current1 = store.parent_of(current1)
        depth1 -= 1
    while depth2 > depth1:
        assert current2 is not None
        current2 = store.parent_of(current2)
        depth2 -= 1
    while current1 != current2:
        if current1 is None or current2 is None:
            raise ModelError(f"OIDs {oid1} and {oid2} share no ancestor")
        current1 = store.parent_of(current1)
        current2 = store.parent_of(current2)
    assert current1 is not None
    return current1


def naive_lca_pairs(
    store: MonetXML, left: Iterable[int], right: Iterable[int]
) -> List[Tuple[int, int, int]]:
    """All pairwise LCAs of two sets: (lca, o₁, o₂) per pair.

    The |O₁| × |O₂| loop Fig. 4 replaces; returned in pair order.
    """
    right_list = list(right)
    results: List[Tuple[int, int, int]] = []
    for oid1 in left:
        # Re-use one ancestor set per left element.
        ancestors: Dict[int, None] = {}
        current: Optional[int] = oid1
        while current is not None:
            ancestors.setdefault(current)
            current = store.parent_of(current)
        for oid2 in right_list:
            probe: Optional[int] = oid2
            while probe is not None and probe not in ancestors:
                probe = store.parent_of(probe)
            if probe is None:
                raise ModelError(f"OIDs {oid1} and {oid2} share no ancestor")
            results.append((probe, oid1, oid2))
    return results
