"""Tarjan's offline LCA — the batch-processing classic (refs. [4, 5]).

Answers a whole batch of (o₁, o₂) queries in near-linear time with one
DFS and a union-find structure.  Included as the offline baseline for
the ablation bench: ``meet_S`` answers *set* queries online without
knowing the pairs in advance, while Tarjan needs the full query list
up front — exactly the trade-off the paper's interactive-querying goal
rules out.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..datamodel.errors import UnknownOIDError
from ..monet.engine import MonetXML

__all__ = ["tarjan_offline_lca", "DisjointSet"]


class DisjointSet:
    """Union-find with path compression and union by rank."""

    def __init__(self):
        self._parent: Dict[int, int] = {}
        self._rank: Dict[int, int] = {}

    def make_set(self, item: int) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item: int) -> int:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left: int, right: int) -> int:
        """Union the two sets; returns the new representative."""
        root1, root2 = self.find(left), self.find(right)
        if root1 == root2:
            return root1
        if self._rank[root1] < self._rank[root2]:
            root1, root2 = root2, root1
        self._parent[root2] = root1
        if self._rank[root1] == self._rank[root2]:
            self._rank[root1] += 1
        return root1


def tarjan_offline_lca(
    store: MonetXML, queries: Sequence[Tuple[int, int]]
) -> List[int]:
    """LCA for every query pair, via one post-order DFS (offline).

    Returns the answers positionally aligned with ``queries``.
    """
    for oid1, oid2 in queries:
        if oid1 not in store:
            raise UnknownOIDError(oid1)
        if oid2 not in store:
            raise UnknownOIDError(oid2)

    # Group queries per endpoint for O(1) lookup during the DFS.
    pending: Dict[int, List[Tuple[int, int]]] = {}
    for index, (oid1, oid2) in enumerate(queries):
        pending.setdefault(oid1, []).append((oid2, index))
        if oid1 != oid2:
            pending.setdefault(oid2, []).append((oid1, index))

    answers: List[int] = [-1] * len(queries)
    dsu = DisjointSet()
    ancestor: Dict[int, int] = {}
    visited: Dict[int, bool] = {}

    # Iterative DFS with explicit post-processing stage.
    stack: List[Tuple[int, bool]] = [(store.root_oid, False)]
    while stack:
        oid, processed = stack.pop()
        if not processed:
            dsu.make_set(oid)
            ancestor[dsu.find(oid)] = oid
            stack.append((oid, True))
            for child in reversed(store.children_of(oid)):
                stack.append((child, False))
            continue
        # Post-order: all children merged; answer queries touching oid.
        visited[oid] = True
        for other, index in pending.get(oid, ()):
            if other == oid:
                answers[index] = oid
            elif visited.get(other):
                answers[index] = ancestor[dsu.find(other)]
        parent = store.parent_of(oid)
        if parent is not None:
            dsu.make_set(parent)
            representative = dsu.union(parent, oid)
            ancestor[representative] = parent
    return answers
