"""Euler-tour + sparse-table RMQ LCA (the classic offline-preprocessing
answer to the LCA problem the paper cites as refs. [4, 5]).

After O(n log n) preprocessing every LCA query is O(1).  The paper's
meet₂ deliberately does *not* use such an index — its per-query cost
is proportional to the distance, which doubles as the ranking measure,
and no preprocessing beyond the Monet transform is needed.  This
implementation exists as the indexed baseline in the ablation bench
and as another independent oracle for correctness tests.
"""

from __future__ import annotations

from typing import Dict, List

from ..datamodel.errors import UnknownOIDError
from ..monet.engine import MonetXML

__all__ = ["EulerTourLCA"]


class EulerTourLCA:
    """O(1)-query LCA over one store via Euler tour and sparse table."""

    def __init__(self, store: MonetXML):
        self.store = store
        self._tour: List[int] = []          # node OID per Euler step
        self._tour_depth: List[int] = []    # depth per Euler step
        self._first: Dict[int, int] = {}    # OID → first tour position
        self._build_tour()
        self._build_sparse_table()

    # -- preprocessing ----------------------------------------------------
    def _build_tour(self) -> None:
        store = self.store
        root = store.root_oid
        # Iterative Euler tour: (oid, depth, child cursor) frames.
        stack: List[List[int]] = [[root, 1, 0]]
        children_cache: Dict[int, List[int]] = {}
        while stack:
            frame = stack[-1]
            oid, depth, cursor = frame
            if cursor == 0:
                self._first.setdefault(oid, len(self._tour))
            self._tour.append(oid)
            self._tour_depth.append(depth)
            children = children_cache.get(oid)
            if children is None:
                children = store.children_of(oid)
                children_cache[oid] = children
            if cursor < len(children):
                frame[2] += 1
                stack.append([children[cursor], depth + 1, 0])
            else:
                stack.pop()
                # Returning to the parent re-appends it (next iteration
                # of the loop via its frame's cursor handling).
        # The loop appends the parent again naturally on each return,
        # because the parent frame re-enters the while body.

    def _build_sparse_table(self) -> None:
        depths = self._tour_depth
        length = len(depths)
        log = [0] * (length + 1)
        for i in range(2, length + 1):
            log[i] = log[i // 2] + 1
        self._log = log
        # table[k][i] = position of min depth in tour[i : i + 2**k]
        table: List[List[int]] = [list(range(length))]
        k = 1
        while (1 << k) <= length:
            previous = table[k - 1]
            span = 1 << (k - 1)
            row = [0] * (length - (1 << k) + 1)
            for i in range(len(row)):
                left = previous[i]
                right = previous[i + span]
                row[i] = left if depths[left] <= depths[right] else right
            table.append(row)
            k += 1
        self._table = table

    # -- queries -------------------------------------------------------
    def lca(self, oid1: int, oid2: int) -> int:
        """The lowest common ancestor, in O(1) after preprocessing."""
        try:
            first1 = self._first[oid1]
            first2 = self._first[oid2]
        except KeyError as exc:
            raise UnknownOIDError(int(str(exc.args[0]))) from None
        low, high = min(first1, first2), max(first1, first2)
        k = self._log[high - low + 1]
        left = self._table[k][low]
        right = self._table[k][high - (1 << k) + 1]
        position = (
            left if self._tour_depth[left] <= self._tour_depth[right] else right
        )
        return self._tour[position]

    def distance(self, oid1: int, oid2: int) -> int:
        """Tree distance via depths and the O(1) LCA."""
        meet = self.lca(oid1, oid2)
        return (
            self.store.depth_of(oid1)
            + self.store.depth_of(oid2)
            - 2 * self.store.depth_of(meet)
        )

    @property
    def tour_length(self) -> int:
        return len(self._tour)
