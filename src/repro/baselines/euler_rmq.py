"""Euler-tour + sparse-table RMQ LCA (the classic offline-preprocessing
answer to the LCA problem the paper cites as refs. [4, 5]).

Historically this lived here as a baseline-only oracle.  It has been
promoted to :mod:`repro.core.lca_index` — where it powers the
``indexed`` meet backend (:class:`repro.core.backends.IndexedBackend`)
with O(1) LCA *and* O(1) depth-based distance — and this module keeps
the original name as a thin alias so the ablation benches and oracle
tests keep reading as "the indexed baseline the paper chose not to
need".
"""

from __future__ import annotations

from ..core.lca_index import LcaIndex

__all__ = ["EulerTourLCA"]


class EulerTourLCA(LcaIndex):
    """Back-compat name for :class:`repro.core.lca_index.LcaIndex`."""
