"""Ablation variant: meet₂ steering on raw paths instead of pids.

DESIGN.md calls out the decision to intern paths ("π(o) look-ups are
O(1) … prefix tests run on small interned tuples, never on the
instance").  This variant implements Fig. 3 with the ⪯ tests executed
directly on :class:`~repro.datamodel.paths.Path` tuples — semantically
identical, but every comparison walks label sequences.  The ablation
bench quantifies what the interning buys.
"""

from __future__ import annotations

from ..datamodel.errors import ModelError
from ..datamodel.paths import prefix_leq
from ..monet.engine import MonetXML

__all__ = ["meet2_pathcmp"]


def meet2_pathcmp(store: MonetXML, oid1: int, oid2: int) -> int:
    """Fig. 3 with raw-path prefix comparisons; same results as meet₂."""
    if oid1 == oid2:
        return oid1
    current1, current2 = oid1, oid2
    while current1 != current2:
        if current1 is None or current2 is None:
            raise ModelError(f"OIDs {oid1} and {oid2} have no common ancestor")
        path1 = store.path_of(current1)
        path2 = store.path_of(current2)
        if path1 != path2 and prefix_leq(path1, path2):
            current1 = store.parent_of(current1)  # type: ignore[assignment]
        elif path1 != path2 and prefix_leq(path2, path1):
            current2 = store.parent_of(current2)  # type: ignore[assignment]
        elif len(path1) > len(path2):
            current1 = store.parent_of(current1)  # type: ignore[assignment]
        elif len(path2) > len(path1):
            current2 = store.parent_of(current2)  # type: ignore[assignment]
        else:
            current1 = store.parent_of(current1)  # type: ignore[assignment]
            current2 = store.parent_of(current2)  # type: ignore[assignment]
    assert current1 is not None
    return current1
