"""The intro's regular-path-expression baseline (paper §1).

The paper motivates the meet operator with a query that binds a path
variable to "the tag names of all nodes whose offspring contains as
character data the string" and shows that its answer drowns the
interesting result in rows *implied by ancestor paths*: for
'Bit'/'1999' on the Figure 1 document the printed answer holds four
rows (article, institute, bibliography, bibliography) where only the
``article`` row carries information — "even worse, in larger databases
the computation might cause a combinatorial explosion of the result
size".

Two faithful renderings of that baseline semantics:

* :func:`containment_answers` — the distinct nodes whose offspring
  contains *all* the terms (the T-binding set).  Every proper ancestor
  of a real answer shows up again: the redundancy is structural.
* :func:`witness_pair_answers` — one row per (witness₁, witness₂)
  pair and common ancestor; the bag whose size explodes
  combinatorially and that the meet operator's minimality rule prunes
  to the nearest concepts only.

Table I of EXPERIMENTS.md compares both counts against the meet
query's single row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..fulltext.search import SearchEngine
from ..monet.engine import MonetXML
from ..query.pathexpr import PathPattern

__all__ = ["BaselineAnswer", "containment_answers", "witness_pair_answers"]


@dataclass(frozen=True, slots=True)
class BaselineAnswer:
    """One baseline result row: a node plus the witnesses behind it."""

    oid: int
    tag: str
    witnesses: Tuple[int, ...]


def _closure(store: MonetXML, witnesses: Set[int]) -> Set[int]:
    """The witnesses and all their ancestors (the 'implied' rows)."""
    closure: Set[int] = set()
    for oid in witnesses:
        current: Optional[int] = oid
        while current is not None and current not in closure:
            closure.add(current)
            current = store.parent_of(current)
    return closure


def containment_answers(
    store: MonetXML,
    search: SearchEngine,
    terms: Sequence[str],
    pattern: Optional[PathPattern] = None,
) -> List[BaselineAnswer]:
    """Nodes whose offspring contains every term, in document order.

    ``pattern`` optionally restricts candidates the way the FROM-clause
    path expression would.
    """
    if not terms:
        return []
    allowed: Optional[Set[int]] = None
    if pattern is not None:
        allowed = {
            pid for pid, _ in pattern.matching_pids(store.summary)
        }
    candidates: Optional[Set[int]] = None
    witness_sets: List[Set[int]] = []
    for term in terms:
        hits = search.find(term).oids()
        witness_sets.append(hits)
        closure = _closure(store, hits)
        candidates = closure if candidates is None else candidates & closure
    assert candidates is not None
    answers: List[BaselineAnswer] = []
    for oid in sorted(candidates):
        if allowed is not None and store.pid_of(oid) not in allowed:
            continue
        relevant = tuple(
            sorted(
                witness
                for hits in witness_sets
                for witness in hits
                if store.is_ancestor(oid, witness)
            )
        )
        answers.append(
            BaselineAnswer(
                oid=oid,
                tag=store.summary.label(store.pid_of(oid)),
                witnesses=relevant,
            )
        )
    return answers


def witness_pair_answers(
    store: MonetXML,
    search: SearchEngine,
    term1: str,
    term2: str,
) -> List[BaselineAnswer]:
    """One row per witness pair and common ancestor — the full bag.

    This renders the ancestor-implication redundancy explicitly: every
    common ancestor of every (hit₁, hit₂) pair becomes a row, which is
    the combinatorial explosion the meet's minimality criterion (3) of
    Def. 6 exists to prevent.
    """
    hits1 = sorted(search.find(term1).oids())
    hits2 = sorted(search.find(term2).oids())
    answers: List[BaselineAnswer] = []
    for oid1 in hits1:
        ancestors1 = _closure(store, {oid1})
        for oid2 in hits2:
            current: Optional[int] = oid2
            # Walk up from oid2; every ancestor shared with oid1 is
            # a (redundant) answer row.
            while current is not None:
                if current in ancestors1:
                    answers.append(
                        BaselineAnswer(
                            oid=current,
                            tag=store.summary.label(store.pid_of(current)),
                            witnesses=(oid1, oid2),
                        )
                    )
                current = store.parent_of(current)
    return answers
