"""Proximity search in the style of Goldman et al. [13] (paper §6).

The related-work comparator: queries follow a "Find objects from O₁
Near objects from O₂" pattern — *the user must specify the result set*
(the Find side), which is exactly the domain knowledge requirement the
meet operator removes ("formulating these queries also requires more
domain-knowledge than is needed for meet queries").

``find_near`` ranks every Find object by its tree distance to the
closest Near object.  Distances are computed with the same steered
walk as meet₂, so the bench comparison isolates the *query model*
difference (explicit result type vs. nearest concept), not the
substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..core.meet_pair import meet2_traced
from ..fulltext.search import SearchEngine
from ..monet.engine import MonetXML
from ..query.pathexpr import PathPattern

__all__ = ["ProximityHit", "find_near", "find_near_terms"]


@dataclass(frozen=True, slots=True)
class ProximityHit:
    """One ranked Find object with its best Near witness."""

    oid: int
    distance: int
    nearest: int

    def sort_key(self) -> Tuple[int, int]:
        return (self.distance, self.oid)


def find_near(
    store: MonetXML,
    find_oids: Iterable[int],
    near_oids: Iterable[int],
    max_distance: Optional[int] = None,
) -> List[ProximityHit]:
    """Rank Find objects by distance to their closest Near object.

    Brute-force over the Near set per Find object (the published
    system used pre-computed distance indexes; the asymptotics of the
    comparison in our bench are unaffected because both sides here
    share the pairwise-walk primitive).
    """
    near_list = list(near_oids)
    hits: List[ProximityHit] = []
    for find_oid in find_oids:
        best: Optional[ProximityHit] = None
        for near_oid in near_list:
            result = meet2_traced(store, find_oid, near_oid)
            if best is None or result.joins < best.distance:
                best = ProximityHit(
                    oid=find_oid, distance=result.joins, nearest=near_oid
                )
                if best.distance == 0:
                    break
        if best is None:
            continue
        if max_distance is None or best.distance <= max_distance:
            hits.append(best)
    hits.sort(key=ProximityHit.sort_key)
    return hits


def find_near_terms(
    store: MonetXML,
    search: SearchEngine,
    find_pattern: PathPattern,
    near_term: str,
    max_distance: Optional[int] = None,
) -> List[ProximityHit]:
    """The user-facing shape of [13]: Find <pattern> Near <term>.

    The Find side must be *named by the user* via a path pattern (e.g.
    ``dblp/#/inproceedings``) — the domain-knowledge burden the meet
    operator avoids.
    """
    find_oids: List[int] = []
    for pid, _bindings in find_pattern.matching_pids(store.summary):
        if store.summary.is_attribute(pid):
            continue
        find_oids.extend(store.oids_on_pid(pid))
    near_oids = sorted(search.find(near_term).oids())
    return find_near(store, find_oids, near_oids, max_distance=max_distance)
