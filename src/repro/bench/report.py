"""Plain-text series and table reports for the benchmark harness.

The benches regenerate the paper's figures as aligned text tables and
simple ASCII plots so the shape comparison (who wins, where the knees
are) is readable straight from ``bench_output.txt``.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

__all__ = ["Series", "render_table", "render_ascii_plot", "write_json_report"]


@dataclass(slots=True)
class Series:
    """One plotted line: (x, y) pairs with a name."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    @property
    def xs(self) -> List[float]:
        return [x for x, _ in self.points]

    @property
    def ys(self) -> List[float]:
        return [y for _, y in self.points]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """A fixed-width text table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            "  ".join(value.rjust(widths[index]) for index, value in enumerate(row))
        )
    return "\n".join(lines)


def write_json_report(
    path: Path,
    benchmark: str,
    config: Dict[str, object],
    results: Sequence[Dict[str, object]],
) -> Path:
    """Write the machine-readable ``BENCH_*.json`` trajectory artefact.

    One shared envelope for every benchmark so downstream tooling can
    diff runs across PRs::

        {"benchmark": ..., "created": ..., "python": ..., "platform": ...,
         "config": {...}, "results": [{flat row}, ...]}

    ``results`` rows are flat dicts; each carries at least ``dataset``
    and ``workload`` plus whatever metrics the bench measured (seconds,
    qps, speedups).
    """
    payload = {
        "benchmark": benchmark,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "config": config,
        "results": list(results),
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def render_ascii_plot(
    series_list: Sequence[Series],
    width: int = 68,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A small ASCII scatter/line plot of one or more series."""
    markers = "*o+x#@"
    points = [
        (x, y) for series in series_list for x, y in series.points
    ]
    if not points:
        return f"{title}\n(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for series_index, series in enumerate(series_list):
        marker = markers[series_index % len(markers)]
        for x, y in series.points:
            column = int((x - x_low) / x_span * (width - 1))
            row = height - 1 - int((y - y_low) / y_span * (height - 1))
            grid[row][column] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_label}  [{y_low:.3g} .. {y_high:.3g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}  [{x_low:.3g} .. {x_high:.3g}]")
    for series_index, series in enumerate(series_list):
        marker = markers[series_index % len(markers)]
        lines.append(f"   {marker} = {series.name}")
    return "\n".join(lines)
