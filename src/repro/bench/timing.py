"""Timing utilities for the benchmark harness.

The paper's figures plot elapsed milliseconds; the helpers here run a
callable repeatedly (with warm-up), return robust statistics and keep
results deterministic apart from the clock itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from statistics import mean, median, stdev
from typing import Any, Callable, List

__all__ = ["Timing", "measure", "time_once"]


@dataclass(frozen=True, slots=True)
class Timing:
    """Statistics of repeated timed runs, in milliseconds."""

    repeats: int
    mean_ms: float
    median_ms: float
    min_ms: float
    max_ms: float
    stdev_ms: float

    def __str__(self) -> str:
        return (
            f"{self.median_ms:8.3f} ms (median of {self.repeats}, "
            f"min {self.min_ms:.3f}, mean {self.mean_ms:.3f})"
        )


def time_once(fn: Callable[[], Any]) -> float:
    """One wall-clock measurement in milliseconds."""
    start = time.perf_counter()
    fn()
    return (time.perf_counter() - start) * 1000.0


def measure(
    fn: Callable[[], Any], repeats: int = 5, warmup: int = 1
) -> Timing:
    """Run ``fn`` ``warmup + repeats`` times; stats over the repeats."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    samples: List[float] = [time_once(fn) for _ in range(repeats)]
    return Timing(
        repeats=repeats,
        mean_ms=mean(samples),
        median_ms=median(samples),
        min_ms=min(samples),
        max_ms=max(samples),
        stdev_ms=stdev(samples) if len(samples) > 1 else 0.0,
    )
