"""Benchmark-harness utilities: timing statistics and text reports."""

from .report import Series, render_ascii_plot, render_table
from .timing import Timing, measure, time_once

__all__ = [
    "Series",
    "Timing",
    "measure",
    "render_ascii_plot",
    "render_table",
    "time_once",
]
