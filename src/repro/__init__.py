"""repro — Nearest Concept Queries over XML (the *meet* operator).

A from-scratch reproduction of:

    Albrecht Schmidt, Martin Kersten, Menzo Windhouwer.
    "Querying XML Documents Made Easy: Nearest Concept Queries."
    Proceedings of ICDE 2001.

The library lets users query XML by *content* without knowing tags or
hierarchy: keyword hits are combined with the ``meet`` operator — the
lowest common ancestor interpreted as the *nearest concept* of the
hits — over the Monet XML path-partitioned storage model.

Quickstart — one front door::

    import repro

    db = repro.open("bib.xml")          # XML, .json image, .snap bundle
    for answer in db.nearest("Bit", "1999").answers:
        print(answer["tag"], answer["oid"], answer["joins"])

(:func:`repro.open` returns a :class:`repro.api.Database`; the
lower-level engine tier stays fully importable — see the README's
"Advanced: engine internals".)

Packages:

* :mod:`repro.api`       — the ``Database`` facade, typed request/
  response envelopes, the embedded HTTP/JSON service.
* :mod:`repro.datamodel` — conceptual model (Defs. 1–3, 5), parser.
* :mod:`repro.monet`     — Monet transform, BAT engine, path summary.
* :mod:`repro.fulltext`  — inverted index / ``contains`` search.
* :mod:`repro.core`      — meet₂ / meet_S / meet, restrictions,
  distance, ranking, the NearestConceptEngine pipeline.
* :mod:`repro.query`     — the SQL-with-paths language with
  ``meet(...)`` aggregation.
* :mod:`repro.baselines` — naive/indexed/offline LCA, intro baseline,
  proximity search.
* :mod:`repro.datasets`  — Figure 1, synthetic DBLP and multimedia.
* :mod:`repro.snapshot`  — binary columnar persistence, catalogs,
  shard-aware bundles.
* :mod:`repro.exec`      — sharded collections, serial and
  process-pool executors, the scatter-gather coordinator.
"""

from .api import (
    Database,
    DatabaseOptions,
    NearestRequest,
    QueryRequest,
    ResultEnvelope,
    SearchRequest,
    open_database,
)
from .api import open as open  # noqa: A004 - deliberate repro.open(...)
from .core import (
    GeneralMeet,
    NearestConcept,
    NearestConceptEngine,
    PairMeet,
    SetMeet,
    bounded_meet2,
    distance,
    meet2,
    meet2_traced,
    meet_depthwise,
    meet_excluding,
    meet_general,
    meet_sets,
    meet_tagged,
)
from .datamodel import (
    Document,
    DocumentBuilder,
    Node,
    Path,
    parse_document,
    serialize,
)
from .exec import (
    ParallelExecutor,
    SerialExecutor,
    ShardedCollection,
    ShardPlan,
)
from .fulltext import FullTextIndex, SearchEngine
from .monet import MonetXML, PathSummary, monet_transform
from .query import QueryProcessor, parse_query, run_query

__version__ = "0.10.0"

__all__ = [
    "Database",
    "DatabaseOptions",
    "Document",
    "DocumentBuilder",
    "FullTextIndex",
    "GeneralMeet",
    "MonetXML",
    "NearestConcept",
    "NearestConceptEngine",
    "NearestRequest",
    "Node",
    "PairMeet",
    "ParallelExecutor",
    "Path",
    "PathSummary",
    "QueryProcessor",
    "SerialExecutor",
    "ShardPlan",
    "ShardedCollection",
    "QueryRequest",
    "ResultEnvelope",
    "SearchEngine",
    "SearchRequest",
    "SetMeet",
    "__version__",
    "bounded_meet2",
    "distance",
    "meet2",
    "meet2_traced",
    "meet_depthwise",
    "meet_excluding",
    "meet_general",
    "meet_sets",
    "meet_tagged",
    "monet_transform",
    "open",
    "open_database",
    "parse_document",
    "parse_query",
    "run_query",
    "serialize",
]
