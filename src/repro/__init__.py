"""repro — Nearest Concept Queries over XML (the *meet* operator).

A from-scratch reproduction of:

    Albrecht Schmidt, Martin Kersten, Menzo Windhouwer.
    "Querying XML Documents Made Easy: Nearest Concept Queries."
    Proceedings of ICDE 2001.

The library lets users query XML by *content* without knowing tags or
hierarchy: keyword hits are combined with the ``meet`` operator — the
lowest common ancestor interpreted as the *nearest concept* of the
hits — over the Monet XML path-partitioned storage model.

Quickstart::

    from repro import parse_document, monet_transform, NearestConceptEngine

    store = monet_transform(parse_document(xml_text))
    engine = NearestConceptEngine(store)
    for concept in engine.nearest_concepts("Bit", "1999"):
        print(concept.tag, concept.oid, concept.joins)

Packages:

* :mod:`repro.datamodel` — conceptual model (Defs. 1–3, 5), parser.
* :mod:`repro.monet`     — Monet transform, BAT engine, path summary.
* :mod:`repro.fulltext`  — inverted index / ``contains`` search.
* :mod:`repro.core`      — meet₂ / meet_S / meet, restrictions,
  distance, ranking, the NearestConceptEngine pipeline.
* :mod:`repro.query`     — the SQL-with-paths language with
  ``meet(...)`` aggregation.
* :mod:`repro.baselines` — naive/indexed/offline LCA, intro baseline,
  proximity search.
* :mod:`repro.datasets`  — Figure 1, synthetic DBLP and multimedia.
"""

from .core import (
    GeneralMeet,
    NearestConcept,
    NearestConceptEngine,
    PairMeet,
    SetMeet,
    bounded_meet2,
    distance,
    meet2,
    meet2_traced,
    meet_depthwise,
    meet_excluding,
    meet_general,
    meet_sets,
    meet_tagged,
)
from .datamodel import (
    Document,
    DocumentBuilder,
    Node,
    Path,
    parse_document,
    serialize,
)
from .fulltext import FullTextIndex, SearchEngine
from .monet import MonetXML, PathSummary, monet_transform
from .query import QueryProcessor, parse_query, run_query

__version__ = "1.0.0"

__all__ = [
    "Document",
    "DocumentBuilder",
    "FullTextIndex",
    "GeneralMeet",
    "MonetXML",
    "NearestConcept",
    "NearestConceptEngine",
    "Node",
    "PairMeet",
    "Path",
    "PathSummary",
    "QueryProcessor",
    "SearchEngine",
    "SetMeet",
    "__version__",
    "bounded_meet2",
    "distance",
    "meet2",
    "meet2_traced",
    "meet_depthwise",
    "meet_excluding",
    "meet_general",
    "meet_sets",
    "meet_tagged",
    "monet_transform",
    "parse_document",
    "parse_query",
    "run_query",
    "serialize",
]
