"""Query execution: bindings, closures, enumeration and meet aggregation.

Binding semantics (matching the paper's reading of the intro query):

* a node variable ``$v`` with pattern P and conditions C ranges over
  **all nodes matching P whose offspring satisfies every condition in
  C** — "the query binds T to the tag names of all nodes whose
  offspring contains as character data the string";
* for row-wise select items the variables enumerate independently
  (cross product — precisely the redundancy the paper criticizes, kept
  faithful here as the baseline behaviour);
* a ``meet(...)`` select item is an *aggregation*: each variable
  contributes its **minimal** bound nodes (those without a bound
  proper descendant — i.e. the witnesses themselves, not their implied
  ancestors), tagged per variable, and the general roll-up of Fig. 5
  computes the nearest concepts.  This is how the §3.2 reformulated
  query returns exactly the ``article`` node.

Results are :class:`QueryResult` tables; ``render_answer`` prints the
paper's ``<answer><result>…`` blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..core.backends import BackendSpec, MeetBackend, resolve_backend
from ..core.meet_general import meet_tagged
from ..core.restrictions import resolve_pids
from ..core.result_cache import (
    CacheSpec,
    ResultCache,
    ResultCacheInfo,
    resolve_result_cache,
)
from ..datamodel.errors import QueryPlanError
from ..datamodel.paths import Path
from ..fulltext.search import SearchEngine
from ..monet.engine import MonetXML
from ..monet.reassembly import object_text
from ..valueindex import get_value_index
from .ast import (
    ContainsCondition,
    DistanceItem,
    EqualsCondition,
    MeetItem,
    PathItem,
    PathVarItem,
    Query,
    RangeCondition,
    TagItem,
    TextItem,
    VarItem,
    compare_values,
)
from .parser import parse_query
from .planner import ACCESS_VALUE_INDEX, Plan, plan_query

__all__ = [
    "QueryResult",
    "QueryProcessor",
    "run_query",
    "column_name",
    "referenced_variables",
]

Cell = Union[int, str]


def column_name(item) -> str:
    """The result-table column header of one select item."""
    if isinstance(item, VarItem):
        return f"${item.variable}"
    if isinstance(item, TagItem):
        return f"tag(${item.variable})"
    if isinstance(item, PathItem):
        return f"path(${item.variable})"
    if isinstance(item, TextItem):
        return f"text(${item.variable})"
    if isinstance(item, PathVarItem):
        return f"%{item.name}"
    if isinstance(item, DistanceItem):
        return f"distance(${item.left}, ${item.right})"
    if isinstance(item, MeetItem):
        return "meet(" + ", ".join(f"${v}" for v in item.variables) + ")"
    raise QueryPlanError(f"unknown select item {item!r}")  # pragma: no cover


def referenced_variables(query: Query) -> List[str]:
    """Variables the select list actually touches, in binding order."""
    referenced: Set[str] = set()
    for item in query.select:
        if isinstance(item, (VarItem, TagItem, PathItem, TextItem)):
            referenced.add(item.variable)
        elif isinstance(item, PathVarItem):
            # Path variables live on the owning binding's pattern.
            for binding in query.bindings:
                if item.name in binding.pattern.variables:
                    referenced.add(binding.variable)
                    break
    return [
        binding.variable
        for binding in query.bindings
        if binding.variable in referenced
    ]


@dataclass(slots=True)
class QueryResult:
    """A small result table; cells are OIDs or strings."""

    columns: List[str]
    rows: List[Tuple[Cell, ...]] = field(default_factory=list)
    #: The executed plan's :meth:`~repro.query.planner.Plan.describe`
    #: payload (chosen access paths, estimated vs actual rows).  Not
    #: part of the row data: ``to_dict`` omits it, cache hits lack it.
    plan: Optional[Dict[str, object]] = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> List[Cell]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def to_dict(self) -> Dict[str, object]:
        """The machine-readable table: columns, typed cells, row count.

        Cells keep their Python types (OIDs stay ``int``, strings stay
        ``str``), which JSON preserves — the one shared representation
        behind both :meth:`render_answer` and the API envelope codec
        (:mod:`repro.api.envelopes`), so servers never re-parse
        rendered text.
        """
        return {
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "row_count": len(self.rows),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "QueryResult":
        """Rebuild a result table from :meth:`to_dict` output."""
        columns = payload.get("columns")
        rows = payload.get("rows")
        if not isinstance(columns, list) or not isinstance(rows, list):
            raise ValueError("query result payload needs 'columns' and 'rows' lists")
        return cls(
            columns=[str(name) for name in columns],
            rows=[tuple(row) for row in rows],
        )

    def render_answer(self, store: Optional[MonetXML] = None) -> str:
        """The paper's ``<answer>`` block: tags with OID annotations."""
        lines = ["<answer>"]
        for row in self.rows:
            cells = []
            for cell in row:
                if isinstance(cell, int) and store is not None and cell in store:
                    label = store.summary.label(store.pid_of(cell))
                    cells.append(f"{label} <!-- oid {cell} -->")
                else:
                    cells.append(str(cell))
            lines.append("  <result> " + ", ".join(cells) + " </result>")
        lines.append("</answer>")
        return "\n".join(lines)


class QueryProcessor:
    """Plans and executes queries over one store (reusable, cached index)."""

    def __init__(
        self,
        store: MonetXML,
        search: Optional[SearchEngine] = None,
        max_rows: Optional[int] = 100_000,
        backend: BackendSpec = None,
        cache: CacheSpec = None,
        force_scan: bool = False,
        value_indexes: Sequence[str] = (),
    ):
        self.store = store
        self.search = search or SearchEngine(store)
        self.max_rows = max_rows
        #: Meet execution strategy for meet(...)/distance(...) items.
        self.backend: MeetBackend = resolve_backend(store, backend)
        #: Serving-layer result cache (off by default); keys embed the
        #: store generation, so invalidated stores never serve stale rows.
        self.result_cache: Optional[ResultCache] = resolve_result_cache(cache)
        #: The differential harness's escape hatch: pin every
        #: equality/range predicate to the string-relation scan.
        self.force_scan = force_scan
        #: Declared value-index path patterns (observability; the
        #: in-memory index always covers every path).
        self.value_indexes: Tuple[str, ...] = tuple(value_indexes)
        #: Prepared-plan cache: normalized text → (generation, Plan).
        self._plan_cache: Dict[str, Tuple[int, Plan]] = {}
        self._plan_hits = 0
        self._plan_misses = 0

    # -- public API ---------------------------------------------------------
    @staticmethod
    def _bindings_key(
        bindings: Optional[Mapping[str, str]]
    ) -> Tuple[Tuple[str, str], ...]:
        """Canonical, order-independent form of parameter bindings.

        Part of every result-cache key: two executions of one prepared
        plan with different bindings must never collide.
        """
        if not bindings:
            return ()
        return tuple(sorted((str(k), str(v)) for k, v in bindings.items()))

    def execute(
        self,
        query: Union[str, Query],
        bindings: Optional[Mapping[str, str]] = None,
    ) -> QueryResult:
        cache = self.result_cache
        key = None
        if cache is not None and isinstance(query, str):
            # Normalized query: only *surrounding* whitespace is safe to
            # strip — interior runs can sit inside quoted string
            # literals, where they change `contains` semantics.  The
            # search case mode, backend and parameter bindings are part
            # of the key so a shared cache never crosses configurations
            # or serves one binding's rows for another.
            cache.sync_generation(self.store.generation)
            key = (
                self.store.generation,
                query.strip(),
                self.search.case_sensitive,
                self.backend.name,
                self._bindings_key(bindings),
            )
            cached = cache.get(key)
            if cached is not None:
                columns, rows = cached
                return QueryResult(columns=list(columns), rows=list(rows))
        result = self._execute(query, bindings=bindings)
        if key is not None:
            cache.put(key, (tuple(result.columns), tuple(result.rows)))
        return result

    def execute_template(
        self,
        template: Query,
        *,
        text: str,
        bindings: Optional[Mapping[str, str]] = None,
    ) -> QueryResult:
        """Execute an already-parsed prepared template with bindings.

        The schema half of the plan is cached per normalized text and
        store generation — repeated executions of one prepared
        statement skip lexing, parsing and pattern matching, and only
        re-plan the predicate access paths for the bound literals.
        """
        normalized = text.strip()
        bindings_key = self._bindings_key(bindings)
        cache = self.result_cache
        key = None
        if cache is not None:
            cache.sync_generation(self.store.generation)
            key = (
                self.store.generation,
                normalized,
                self.search.case_sensitive,
                self.backend.name,
                bindings_key,
            )
            cached = cache.get(key)
            if cached is not None:
                columns, rows = cached
                return QueryResult(columns=list(columns), rows=list(rows))
        plan = self._template_plan(template, normalized)
        try:
            bound_query = template.bind(dict(bindings or {}))
        except (KeyError, ValueError) as exc:
            raise QueryPlanError(str(exc).strip("'\"")) from exc
        result = self._execute_plan(plan.rebound(bound_query))
        if key is not None:
            cache.put(key, (tuple(result.columns), tuple(result.rows)))
        return result

    def _template_plan(self, template: Query, normalized: str) -> Plan:
        """The generation-keyed schema plan of a prepared template."""
        generation = self.store.generation
        cached = self._plan_cache.get(normalized)
        if cached is not None and cached[0] == generation:
            self._plan_hits += 1
            return cached[1]
        self._plan_misses += 1
        plan = plan_query(
            template,
            self.store,
            force_scan=self.force_scan,
            case_sensitive=self.search.case_sensitive,
        )
        self._plan_cache[normalized] = (generation, plan)
        return plan

    def plan_cache_info(self) -> Dict[str, int]:
        """Prepared-plan cache counters (for the metrics registry)."""
        return {
            "hits": self._plan_hits,
            "misses": self._plan_misses,
            "currsize": len(self._plan_cache),
        }

    def cache_info(self) -> Optional[ResultCacheInfo]:
        """Result-cache counters, or ``None`` when caching is off."""
        if self.result_cache is None:
            return None
        return self.result_cache.cache_info()

    def _execute(
        self,
        query: Union[str, Query],
        bindings: Optional[Mapping[str, str]] = None,
    ) -> QueryResult:
        parsed = parse_query(query) if isinstance(query, str) else query
        if bindings or parsed.parameters:
            try:
                parsed = parsed.bind(dict(bindings or {}))
            except (KeyError, ValueError) as exc:
                raise QueryPlanError(str(exc).strip("'\"")) from exc
        plan = plan_query(
            parsed,
            self.store,
            force_scan=self.force_scan,
            case_sensitive=self.search.case_sensitive,
        )
        return self._execute_plan(plan)

    def _execute_plan(self, plan: Plan) -> QueryResult:
        if plan.query.parameters:
            raise QueryPlanError(
                "cannot execute a query with unbound parameter(s) "
                + ", ".join(f"${name}" for name in plan.query.parameters)
            )
        if plan.aggregate:
            result = self._execute_aggregate(plan)
        else:
            result = self._execute_enumeration(plan)
        result.plan = plan.describe()
        return result

    def explain(self, query: Union[str, Query]) -> str:
        parsed = parse_query(query) if isinstance(query, str) else query
        return plan_query(
            parsed,
            self.store,
            force_scan=self.force_scan,
            case_sensitive=self.search.case_sensitive,
        ).explain()

    # -- binding computation --------------------------------------------
    def _pattern_oids(self, plan: Plan, variable: str) -> Set[int]:
        """All node OIDs on any summary path matched by the pattern.

        A pattern ending in an attribute step (``…@shelf``) binds the
        *owning elements* — the first components of the oid × string
        associations on that path.
        """
        oids: Set[int] = set()
        for pid in plan.variables[variable].pids:
            if self.store.summary.is_attribute(pid):
                relation = self.store.strings.get(pid)
                if relation is not None:
                    oids.update(relation.heads)
                continue
            oids.update(self.store.oids_on_pid(pid))
        return oids

    def _condition_closure(self, condition, plan: Optional[Plan] = None) -> Set[int]:
        """Node set satisfying the condition.

        ``contains`` has offspring semantics (the intro query: "nodes
        whose offspring contains … the string"), so the witnesses are
        closed under ancestors.  ``=`` and the range comparisons are
        node-level tests: the node itself carries an association whose
        value passes.

        The plan's chosen access path decides *how* the node set is
        produced — value-index probe vs. string-relation scan — never
        *what* it contains; the probe structures reproduce the scan
        semantics exactly.  The observed row count is recorded back
        onto the plan for estimated-vs-actual reporting.
        """
        condition_plan = (
            plan.condition_plan_for(condition) if plan is not None else None
        )
        use_index = (
            condition_plan is not None
            and condition_plan.access == ACCESS_VALUE_INDEX
        )
        if isinstance(condition, ContainsCondition):
            witnesses = self.search.find(condition.needle).oids()
            closure: Set[int] = set()
            for oid in witnesses:
                current: Optional[int] = oid
                while current is not None and current not in closure:
                    closure.add(current)
                    current = self.store.parent_of(current)
            result = closure
        elif isinstance(condition, EqualsCondition):
            if use_index:
                result = set(get_value_index(self.store).lookup_eq(condition.value))
            else:
                result = set()
                for _pid, relation in self.store.string_relations():
                    for oid, _value in relation.select_eq(condition.value):
                        result.add(oid)
        elif isinstance(condition, RangeCondition):
            if use_index:
                result = set(
                    get_value_index(self.store).lookup_cmp(
                        condition.op, condition.value
                    )
                )
            else:
                result = set()
                for _pid, relation in self.store.string_relations():
                    for oid, value in relation:
                        if compare_values(value, condition.op, condition.value):
                            result.add(oid)
        else:  # pragma: no cover - parser only emits the three kinds
            raise QueryPlanError(f"unknown condition {condition!r}")
        if condition_plan is not None:
            condition_plan.actual_rows = len(result)
        return result

    def _bound_nodes(self, plan: Plan, variable: str) -> Set[int]:
        """Closure-semantics binding set of a variable."""
        bound = self._pattern_oids(plan, variable)
        for condition in plan.query.conditions_for(variable):
            bound &= self._condition_closure(condition, plan)
        return bound

    def _minimal(self, bound: Set[int]) -> Set[int]:
        """Members with no proper descendant in the set (the witnesses)."""
        dominated: Set[int] = set()
        for oid in bound:
            current = self.store.parent_of(oid)
            while current is not None:
                if current in bound:
                    dominated.add(current)
                current = self.store.parent_of(current)
        return bound - dominated

    # -- enumeration mode ------------------------------------------------
    def _execute_enumeration(self, plan: Plan) -> QueryResult:
        query = plan.query
        bound: Dict[str, List[int]] = {}
        needed = self._referenced_variables(query)
        for variable in needed:
            bound[variable] = sorted(self._bound_nodes(plan, variable))

        columns = [self._column_name(item) for item in query.select]
        result = QueryResult(columns=columns)
        seen: Set[Tuple[Cell, ...]] = set()

        def emit(assignment: Dict[str, int]) -> bool:
            row = tuple(
                self._cell(plan, item, assignment) for item in query.select
            )
            if query.distinct:
                if row in seen:
                    return True
                seen.add(row)
            result.rows.append(row)
            if self.max_rows is not None and len(result.rows) > self.max_rows:
                raise QueryPlanError(
                    f"result exceeds max_rows={self.max_rows}; "
                    "refine the query or use meet(...) aggregation"
                )
            return True

        variables = list(needed)
        if not variables:
            return result

        def recurse(index: int, assignment: Dict[str, int]) -> None:
            if index == len(variables):
                emit(assignment)
                return
            variable = variables[index]
            for oid in bound[variable]:
                assignment[variable] = oid
                recurse(index + 1, assignment)
            assignment.pop(variable, None)

        recurse(0, {})
        return result

    def _referenced_variables(self, query: Query) -> List[str]:
        """Variables the select list actually touches, in binding order."""
        return referenced_variables(query)

    def _column_name(self, item) -> str:
        return column_name(item)

    def _cell(self, plan: Plan, item, assignment: Dict[str, int]) -> Cell:
        store = self.store
        if isinstance(item, VarItem):
            return assignment[item.variable]
        if isinstance(item, TagItem):
            return store.summary.label(store.pid_of(assignment[item.variable]))
        if isinstance(item, PathItem):
            return str(store.path_of(assignment[item.variable]))
        if isinstance(item, TextItem):
            return object_text(store, assignment[item.variable])
        if isinstance(item, PathVarItem):
            owner = plan.path_variable_owner[item.name]
            oid = assignment[owner]
            bindings = plan.variables[owner].binding.pattern.match(
                store.path_of(oid)
            )
            return "" if bindings is None else bindings.get(item.name, "")
        raise QueryPlanError(f"unexpected row item {item!r}")  # pragma: no cover

    # -- aggregation mode -------------------------------------------------
    def _execute_aggregate(self, plan: Plan) -> QueryResult:
        query = plan.query
        columns = [self._column_name(item) for item in query.select]
        result = QueryResult(columns=columns)

        cells_per_item: List[List[Cell]] = []
        for item in query.select:
            if isinstance(item, MeetItem):
                cells_per_item.append(self._meet_cells(plan, item))
            elif isinstance(item, DistanceItem):
                cells_per_item.append(self._distance_cells(plan, item))
            else:  # pragma: no cover - planner rejects mixed selects
                raise QueryPlanError("row-wise item in aggregate query")

        height = max((len(cells) for cells in cells_per_item), default=0)
        for index in range(height):
            row = tuple(
                cells[index] if index < len(cells) else ""
                for cells in cells_per_item
            )
            result.rows.append(row)
        return result

    def _meet_cells(self, plan: Plan, item: MeetItem) -> List[Cell]:
        tagged: List[Tuple[str, int]] = []
        for variable in item.variables:
            bound = self._bound_nodes(plan, variable)
            for oid in self._minimal(bound):
                tagged.append((variable, oid))
        meets = meet_tagged(self.store, tagged, backend=self.backend)

        excluded = resolve_pids(self.store, item.exclude_paths)
        if item.exclude_root:
            excluded.add(self.store.pid_of(self.store.root_oid))
        cells: List[Cell] = []
        for meet in meets:
            if self.store.pid_of(meet.oid) in excluded:
                continue
            if item.within is not None:
                meet_depth = self.store.depth_of(meet.oid)
                joins = sum(
                    self.store.depth_of(oid) - meet_depth
                    for oid in meet.origins
                )
                if joins > item.within:
                    continue
            cells.append(meet.oid)
        cells.sort()
        return cells

    def _distance_cells(self, plan: Plan, item: DistanceItem) -> List[Cell]:
        left = self._minimal(self._bound_nodes(plan, item.left))
        right = self._minimal(self._bound_nodes(plan, item.right))
        if len(left) != 1 or len(right) != 1:
            raise QueryPlanError(
                "distance($a, $b) requires both variables to bind exactly "
                f"one witness (got {len(left)} and {len(right)})"
            )
        (oid1,), (oid2,) = tuple(left), tuple(right)
        return [self.backend.meet(oid1, oid2).joins]


def run_query(store: MonetXML, text: str) -> QueryResult:
    """One-shot convenience: parse, plan and execute a query string."""
    return QueryProcessor(store).execute(text)
