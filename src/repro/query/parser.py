"""Recursive-descent parser for the query dialect.

Grammar (keywords case-insensitive)::

    query      := SELECT [DISTINCT] items FROM bindings [WHERE conds]
    items      := item (',' item)*
    item       := MEET '(' $v (',' $v)* ')' [WITHIN int] [EXCLUDE excl]
                | DISTANCE '(' $v ',' $v ')'
                | TAG '(' $v ')' | PATH '(' $v ')' | TEXT '(' $v ')'
                | $v | %V
    excl       := ROOT | pattern (',' pattern)*
    bindings   := pattern $v (',' pattern $v)*
    pattern    := pstep (('/' pstep) | astep)*
    pstep      := IDENT | '%' NAME | '#' | '*'
    astep      := '@' IDENT
    conds      := cond (AND cond)*
    cond       := $v CONTAINS rhs | $v cmp rhs
    cmp        := '=' | '<' | '<=' | '>' | '>='
    rhs        := string | int | $param

A ``$param`` on the literal side of a condition is a *parameter
placeholder* (prepared queries bind it per call); its name must not
collide with a FROM-bound node variable.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..datamodel.errors import QuerySyntaxError
from .ast import (
    RANGE_OPS,
    Binding,
    ContainsCondition,
    DistanceItem,
    EqualsCondition,
    MeetItem,
    ParamRef,
    PathItem,
    PathVarItem,
    Query,
    RangeCondition,
    SelectItem,
    TagItem,
    TextItem,
    VarItem,
)
from .lexer import Token, TokenKind, tokenize_query
from .pathexpr import (
    AnyStep,
    AttributeStep,
    LiteralStep,
    PathPattern,
    SequenceWildcard,
    VariableStep,
)

__all__ = ["parse_query"]


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- cursor helpers -----------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.kind != TokenKind.EOF:
            self.position += 1
        return token

    def error(self, message: str) -> QuerySyntaxError:
        return QuerySyntaxError(message, self.current.position)

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise self.error(f"expected keyword {word!r}, got {self.current.value!r}")
        return self.advance()

    def expect_symbol(self, symbol: str) -> Token:
        if not self.current.is_symbol(symbol):
            raise self.error(f"expected {symbol!r}, got {self.current.value!r}")
        return self.advance()

    def expect_nodevar(self) -> str:
        if self.current.kind != TokenKind.NODEVAR:
            raise self.error(f"expected a node variable, got {self.current.value!r}")
        return self.advance().value

    def accept_symbol(self, symbol: str) -> bool:
        if self.current.is_symbol(symbol):
            self.advance()
            return True
        return False

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    # -- grammar ----------------------------------------------------------
    def parse(self) -> Query:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        select = [self.parse_item()]
        while self.accept_symbol(","):
            select.append(self.parse_item())
        self.expect_keyword("from")
        bindings = [self.parse_binding()]
        while self.accept_symbol(","):
            bindings.append(self.parse_binding())
        conditions = []
        if self.accept_keyword("where"):
            conditions.append(self.parse_condition())
            while self.accept_keyword("and"):
                conditions.append(self.parse_condition())
        if self.current.kind != TokenKind.EOF:
            raise self.error(f"trailing input {self.current.value!r}")
        query = Query(
            select=select,
            bindings=bindings,
            conditions=conditions,
            distinct=distinct,
        )
        self._check_references(query)
        return query

    def _check_references(self, query: Query) -> None:
        bound = {binding.variable for binding in query.bindings}
        seen = set()
        for binding in query.bindings:
            if binding.variable in seen:
                raise QuerySyntaxError(
                    f"duplicate binding for ${binding.variable}"
                )
            seen.add(binding.variable)
        path_vars = set()
        for binding in query.bindings:
            path_vars.update(binding.pattern.variables)

        def check(variable: str) -> None:
            if variable not in bound:
                raise QuerySyntaxError(f"unbound node variable ${variable}")

        for item in query.select:
            if isinstance(item, (VarItem, TagItem, PathItem, TextItem)):
                check(item.variable)
            elif isinstance(item, DistanceItem):
                check(item.left)
                check(item.right)
            elif isinstance(item, MeetItem):
                for variable in item.variables:
                    check(variable)
            elif isinstance(item, PathVarItem):
                if item.name not in path_vars:
                    raise QuerySyntaxError(f"unbound path variable %{item.name}")
        for condition in query.conditions:
            check(condition.variable)
            literal = (
                condition.needle
                if isinstance(condition, ContainsCondition)
                else condition.value
            )
            if isinstance(literal, ParamRef) and literal.name in bound:
                raise QuerySyntaxError(
                    f"parameter ${literal.name} collides with a FROM-bound "
                    "node variable of the same name"
                )

    def parse_item(self) -> SelectItem:
        token = self.current
        if token.is_keyword("meet"):
            return self.parse_meet_item()
        if token.is_keyword("distance"):
            self.advance()
            self.expect_symbol("(")
            left = self.expect_nodevar()
            self.expect_symbol(",")
            right = self.expect_nodevar()
            self.expect_symbol(")")
            return DistanceItem(left, right)
        for word, cls in (("tag", TagItem), ("path", PathItem), ("text", TextItem)):
            if token.is_keyword(word):
                self.advance()
                self.expect_symbol("(")
                variable = self.expect_nodevar()
                self.expect_symbol(")")
                return cls(variable)
        if token.kind == TokenKind.NODEVAR:
            return VarItem(self.advance().value)
        if token.kind == TokenKind.PATHVAR:
            return PathVarItem(self.advance().value)
        raise self.error(f"expected a select item, got {token.value!r}")

    def parse_meet_item(self) -> MeetItem:
        self.expect_keyword("meet")
        self.expect_symbol("(")
        variables = [self.expect_nodevar()]
        while self.accept_symbol(","):
            variables.append(self.expect_nodevar())
        self.expect_symbol(")")
        if len(variables) < 2:
            raise self.error("meet(...) needs at least two variables")
        within: Optional[int] = None
        exclude_paths: Tuple[str, ...] = ()
        exclude_root = False
        if self.accept_keyword("within"):
            if self.current.kind != TokenKind.INT:
                raise self.error("within expects an integer distance bound")
            within = int(self.advance().value)
        if self.accept_keyword("exclude"):
            if self.accept_keyword("root"):
                exclude_root = True
            else:
                patterns = [str(self.parse_pattern())]
                while self.accept_symbol(","):
                    if self.accept_keyword("root"):
                        exclude_root = True
                        break
                    patterns.append(str(self.parse_pattern()))
                exclude_paths = tuple(patterns)
        return MeetItem(
            variables=tuple(variables),
            within=within,
            exclude_paths=exclude_paths,
            exclude_root=exclude_root,
        )

    def parse_binding(self) -> Binding:
        pattern = self.parse_pattern()
        variable = self.expect_nodevar()
        return Binding(pattern=pattern, variable=variable)

    def parse_pattern(self) -> PathPattern:
        steps = [self.parse_pattern_step()]
        while True:
            if self.accept_symbol("/"):
                steps.append(self.parse_pattern_step())
            elif self.current.is_symbol("@"):
                self.advance()
                if self.current.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
                    raise self.error("expected attribute name after '@'")
                steps.append(AttributeStep(self.advance().value))
                break
            else:
                break
        return PathPattern(steps)

    def parse_pattern_step(self):
        token = self.current
        if token.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            # Keywords double as tag names inside patterns (e.g. 'text').
            return LiteralStep(self.advance().value)
        if token.kind == TokenKind.PATHVAR:
            return VariableStep(self.advance().value)
        if token.is_symbol("#"):
            self.advance()
            return SequenceWildcard()
        if token.is_symbol("*"):
            self.advance()
            return AnyStep()
        raise self.error(f"expected a path step, got {token.value!r}")

    def parse_condition(self):
        variable = self.expect_nodevar()
        if self.accept_keyword("contains"):
            if self.current.kind == TokenKind.NODEVAR:
                return ContainsCondition(variable, ParamRef(self.advance().value))
            if self.current.kind != TokenKind.STRING:
                raise self.error(
                    "contains expects a string literal or $param placeholder"
                )
            return ContainsCondition(variable, self.advance().value)
        if self.accept_symbol("="):
            if self.current.kind == TokenKind.NODEVAR:
                return EqualsCondition(variable, ParamRef(self.advance().value))
            if self.current.kind not in (TokenKind.STRING, TokenKind.INT):
                raise self.error(
                    "'=' expects a string/integer literal or $param placeholder"
                )
            return EqualsCondition(variable, self.advance().value)
        for op in RANGE_OPS:
            if not self.current.is_symbol(op):
                continue
            # '<' must not shadow '<=' — the lexer already folds the
            # two-character operators into single tokens, so a literal
            # match on the token value is exact.
            self.advance()
            if self.current.kind == TokenKind.NODEVAR:
                return RangeCondition(variable, op, ParamRef(self.advance().value))
            if self.current.kind not in (TokenKind.STRING, TokenKind.INT):
                raise self.error(
                    f"{op!r} expects a string/integer literal or $param "
                    "placeholder"
                )
            return RangeCondition(variable, op, self.advance().value)
        raise self.error(
            "expected 'contains', '=' or a range operator in condition"
        )


def parse_query(text: str) -> Query:
    """Parse query text into a :class:`~repro.query.ast.Query`."""
    return _Parser(tokenize_query(text)).parse()
