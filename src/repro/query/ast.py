"""Abstract syntax of the query dialect.

A query is ``select <items> from <bindings> [where <conditions>]``.
Select items reference node variables bound in the FROM clause; the
``meet(...)`` item is an *aggregation* over the bound witness sets
("from now on, we interpret the meet operator as an aggregation
operation", §3.2) and carries the §4 restrictions (``within k``,
``exclude <paths>``, ``exclude root``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from .pathexpr import PathPattern

__all__ = [
    "Binding",
    "ContainsCondition",
    "EqualsCondition",
    "VarItem",
    "TagItem",
    "PathItem",
    "TextItem",
    "PathVarItem",
    "DistanceItem",
    "MeetItem",
    "Query",
    "Condition",
    "SelectItem",
]


@dataclass(frozen=True, slots=True)
class Binding:
    """One FROM-clause entry: ``<pattern> $var``."""

    pattern: PathPattern
    variable: str


@dataclass(frozen=True, slots=True)
class ContainsCondition:
    """``$var contains 'text'`` — offspring character data containment."""

    variable: str
    needle: str


@dataclass(frozen=True, slots=True)
class EqualsCondition:
    """``$var = 'text'`` — an association value equals the literal."""

    variable: str
    value: str


Condition = Union[ContainsCondition, EqualsCondition]


@dataclass(frozen=True, slots=True)
class VarItem:
    """Select the bound node itself (rendered as OID)."""

    variable: str


@dataclass(frozen=True, slots=True)
class TagItem:
    """``tag($var)`` — the node's element name."""

    variable: str


@dataclass(frozen=True, slots=True)
class PathItem:
    """``path($var)`` — π of the node."""

    variable: str


@dataclass(frozen=True, slots=True)
class TextItem:
    """``text($var)`` — the node's descendant character data."""

    variable: str


@dataclass(frozen=True, slots=True)
class PathVarItem:
    """Select a path variable bound by a FROM pattern (``select %T``)."""

    name: str


@dataclass(frozen=True, slots=True)
class DistanceItem:
    """``distance($a, $b)`` — tree distance via the meet (§4)."""

    left: str
    right: str


@dataclass(frozen=True, slots=True)
class MeetItem:
    """``meet($a, $b, …) [within k] [exclude root|p1, p2 …]``."""

    variables: Tuple[str, ...]
    within: Optional[int] = None
    exclude_paths: Tuple[str, ...] = ()
    exclude_root: bool = False


SelectItem = Union[
    VarItem, TagItem, PathItem, TextItem, PathVarItem, DistanceItem, MeetItem
]


@dataclass(slots=True)
class Query:
    """A parsed query, ready for the planner."""

    select: List[SelectItem]
    bindings: List[Binding]
    conditions: List[Condition] = field(default_factory=list)
    distinct: bool = False

    def binding_for(self, variable: str) -> Binding:
        for binding in self.bindings:
            if binding.variable == variable:
                return binding
        raise KeyError(variable)

    def conditions_for(self, variable: str) -> List[Condition]:
        return [
            condition
            for condition in self.conditions
            if condition.variable == variable
        ]
