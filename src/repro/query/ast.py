"""Abstract syntax of the query dialect.

A query is ``select <items> from <bindings> [where <conditions>]``.
Select items reference node variables bound in the FROM clause; the
``meet(...)`` item is an *aggregation* over the bound witness sets
("from now on, we interpret the meet operator as an aggregation
operation", §3.2) and carries the §4 restrictions (``within k``,
``exclude <paths>``, ``exclude root``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Mapping, Optional, Tuple, Union

from .pathexpr import PathPattern

__all__ = [
    "Binding",
    "ParamRef",
    "ContainsCondition",
    "EqualsCondition",
    "RangeCondition",
    "RANGE_OPS",
    "compare_values",
    "numeric_value",
    "VarItem",
    "TagItem",
    "PathItem",
    "TextItem",
    "PathVarItem",
    "DistanceItem",
    "MeetItem",
    "Query",
    "Condition",
    "SelectItem",
]


@dataclass(frozen=True, slots=True)
class Binding:
    """One FROM-clause entry: ``<pattern> $var``."""

    pattern: PathPattern
    variable: str


@dataclass(frozen=True, slots=True)
class ParamRef:
    """A ``$name`` placeholder on a condition's literal side.

    Prepared queries parse once with placeholders and bind per call
    (:meth:`Query.bind`); executing with an unbound :class:`ParamRef`
    is a plan error.
    """

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True, slots=True)
class ContainsCondition:
    """``$var contains 'text'`` — offspring character data containment.

    The needle may be a :class:`ParamRef` placeholder awaiting binding.
    """

    variable: str
    needle: Union[str, ParamRef]


@dataclass(frozen=True, slots=True)
class EqualsCondition:
    """``$var = 'text'`` — an association value equals the literal.

    The value may be a :class:`ParamRef` placeholder awaiting binding.
    """

    variable: str
    value: Union[str, ParamRef]


#: Range comparison operators accepted in conditions.
RANGE_OPS = ("<", "<=", ">", ">=")


def numeric_value(value: str) -> Optional[float]:
    """The numeric reading of a value, or ``None`` if it has none."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def compare_values(value: str, op: str, literal: str) -> bool:
    """The range predicate's comparison semantics.

    Typed: when both sides parse as numbers they compare numerically;
    otherwise lexicographically as strings.  The value index's range
    probe (:meth:`repro.valueindex.ValueIndex.lookup_cmp`) implements
    exactly this rule, which is what keeps probe and scan answers
    byte-identical.
    """
    left_num = numeric_value(value)
    right_num = numeric_value(literal)
    if left_num is not None and right_num is not None:
        left, right = left_num, right_num
    else:
        left, right = value, literal
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ValueError(f"unknown range operator {op!r}")


@dataclass(frozen=True, slots=True)
class RangeCondition:
    """``$var < 'literal'`` (or ``<=``, ``>``, ``>=``) — a typed range test.

    Node-level like ``=``: the node carries an association whose value
    satisfies the comparison under :func:`compare_values`.  The literal
    may be a :class:`ParamRef` placeholder awaiting binding.
    """

    variable: str
    op: str
    value: Union[str, ParamRef]


Condition = Union[ContainsCondition, EqualsCondition, RangeCondition]


def _condition_literal(condition: Condition) -> Union[str, ParamRef]:
    if isinstance(condition, ContainsCondition):
        return condition.needle
    return condition.value


@dataclass(frozen=True, slots=True)
class VarItem:
    """Select the bound node itself (rendered as OID)."""

    variable: str


@dataclass(frozen=True, slots=True)
class TagItem:
    """``tag($var)`` — the node's element name."""

    variable: str


@dataclass(frozen=True, slots=True)
class PathItem:
    """``path($var)`` — π of the node."""

    variable: str


@dataclass(frozen=True, slots=True)
class TextItem:
    """``text($var)`` — the node's descendant character data."""

    variable: str


@dataclass(frozen=True, slots=True)
class PathVarItem:
    """Select a path variable bound by a FROM pattern (``select %T``)."""

    name: str


@dataclass(frozen=True, slots=True)
class DistanceItem:
    """``distance($a, $b)`` — tree distance via the meet (§4)."""

    left: str
    right: str


@dataclass(frozen=True, slots=True)
class MeetItem:
    """``meet($a, $b, …) [within k] [exclude root|p1, p2 …]``."""

    variables: Tuple[str, ...]
    within: Optional[int] = None
    exclude_paths: Tuple[str, ...] = ()
    exclude_root: bool = False


SelectItem = Union[
    VarItem, TagItem, PathItem, TextItem, PathVarItem, DistanceItem, MeetItem
]


@dataclass(slots=True)
class Query:
    """A parsed query, ready for the planner."""

    select: List[SelectItem]
    bindings: List[Binding]
    conditions: List[Condition] = field(default_factory=list)
    distinct: bool = False

    def binding_for(self, variable: str) -> Binding:
        for binding in self.bindings:
            if binding.variable == variable:
                return binding
        raise KeyError(variable)

    def conditions_for(self, variable: str) -> List[Condition]:
        return [
            condition
            for condition in self.conditions
            if condition.variable == variable
        ]

    @property
    def parameters(self) -> Tuple[str, ...]:
        """Unbound ``$param`` placeholder names, in condition order."""
        names: List[str] = []
        for condition in self.conditions:
            literal = _condition_literal(condition)
            if isinstance(literal, ParamRef) and literal.name not in names:
                names.append(literal.name)
        return tuple(names)

    def bind(self, params: Mapping[str, str]) -> "Query":
        """A copy with every placeholder replaced by its bound literal.

        Raises :class:`KeyError` for a placeholder without a binding and
        :class:`ValueError` for a binding naming no placeholder — both
        sides of the contract are checked so a typo'd parameter name
        fails loudly instead of silently executing the wrong query.
        """
        declared = set(self.parameters)
        unknown = sorted(set(params) - declared)
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {', '.join('$' + name for name in unknown)}"
            )
        missing = sorted(declared - set(params))
        if missing:
            raise KeyError(
                f"unbound parameter(s) {', '.join('$' + name for name in missing)}"
            )
        if not declared:
            return self
        conditions: List[Condition] = []
        for condition in self.conditions:
            literal = _condition_literal(condition)
            if isinstance(literal, ParamRef):
                value = str(params[literal.name])
                if isinstance(condition, ContainsCondition):
                    condition = replace(condition, needle=value)
                else:
                    condition = replace(condition, value=value)
            conditions.append(condition)
        return Query(
            select=self.select,
            bindings=self.bindings,
            conditions=conditions,
            distinct=self.distinct,
        )
