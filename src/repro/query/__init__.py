"""The SQL-with-paths query language (paper footnote 1 and §3.2).

* :func:`parse_query` — text → :class:`~repro.query.ast.Query`.
* :func:`plan_query` — resolve patterns against a store's summary.
* :class:`QueryProcessor` / :func:`run_query` — execution, with
  ``meet(...)`` as the §3.2 aggregation.
* :class:`PathPattern` — ``#`` / ``%V`` / ``@attr`` path expressions.
"""

from .ast import (
    Binding,
    ContainsCondition,
    DistanceItem,
    EqualsCondition,
    MeetItem,
    PathItem,
    PathVarItem,
    Query,
    TagItem,
    TextItem,
    VarItem,
)
from .executor import QueryProcessor, QueryResult, run_query
from .lexer import Token, TokenKind, tokenize_query
from .parser import parse_query
from .pathexpr import (
    AnyStep,
    AttributeStep,
    LiteralStep,
    PathPattern,
    SequenceWildcard,
    VariableStep,
)
from .planner import Plan, VariablePlan, plan_query

__all__ = [
    "AnyStep",
    "AttributeStep",
    "Binding",
    "ContainsCondition",
    "DistanceItem",
    "EqualsCondition",
    "LiteralStep",
    "MeetItem",
    "PathItem",
    "PathPattern",
    "PathVarItem",
    "Plan",
    "Query",
    "QueryProcessor",
    "QueryResult",
    "SequenceWildcard",
    "TagItem",
    "TextItem",
    "Token",
    "TokenKind",
    "VarItem",
    "VariablePlan",
    "VariableStep",
    "parse_query",
    "plan_query",
    "run_query",
    "tokenize_query",
]
