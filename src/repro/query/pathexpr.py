"""Path patterns with wildcards and path variables (paper footnote 1).

A pattern is a sequence of steps:

* ``label``      — a literal element tag;
* ``%V``         — a *path variable*: matches a single tag and binds it
  (the intro query binds ``%T`` "to the tag names of all nodes whose
  offspring contains …"); repeated occurrences of the same variable
  must bind the same tag;
* ``#``          — the schema wildcard: "may stand for any sequence of
  tags" (zero or more element steps);
* ``*``          — one arbitrary tag, unnamed;
* ``@name``      — a final attribute step.

Matching runs against :class:`~repro.datamodel.paths.Path` objects via
backtracking (patterns and paths are short); the planner matches every
distinct path of the summary once, so instance size does not matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..datamodel.paths import ATTRIBUTE, ELEMENT, Path
from ..monet.pathsummary import PathSummary

__all__ = [
    "LiteralStep",
    "VariableStep",
    "AnyStep",
    "SequenceWildcard",
    "AttributeStep",
    "PathPattern",
]


@dataclass(frozen=True, slots=True)
class LiteralStep:
    label: str

    def __str__(self) -> str:
        return self.label


@dataclass(frozen=True, slots=True)
class VariableStep:
    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True, slots=True)
class AnyStep:
    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True, slots=True)
class SequenceWildcard:
    def __str__(self) -> str:
        return "#"


@dataclass(frozen=True, slots=True)
class AttributeStep:
    name: str

    def __str__(self) -> str:
        return f"@{self.name}"


PatternStep = Union[
    LiteralStep, VariableStep, AnyStep, SequenceWildcard, AttributeStep
]


class PathPattern:
    """An immutable sequence of pattern steps with a matcher."""

    def __init__(self, steps: List[PatternStep]):
        for position, step in enumerate(steps):
            if isinstance(step, AttributeStep) and position != len(steps) - 1:
                raise ValueError("attribute step must be the final step")
        self.steps: Tuple[PatternStep, ...] = tuple(steps)

    def __str__(self) -> str:
        out: List[str] = []
        for step in self.steps:
            if isinstance(step, AttributeStep):
                out.append(str(step))
            else:
                if out and not out[-1].startswith("@"):
                    out.append("/")
                out.append(str(step))
        return "".join(out)

    def __repr__(self) -> str:
        return f"PathPattern({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PathPattern) and self.steps == other.steps

    def __hash__(self) -> int:
        return hash(self.steps)

    @property
    def variables(self) -> List[str]:
        """Names of the path variables, in order of first appearance."""
        seen: Dict[str, None] = {}
        for step in self.steps:
            if isinstance(step, VariableStep):
                seen.setdefault(step.name)
        return list(seen)

    # -- matching ---------------------------------------------------------
    def match(self, path: Path) -> Optional[Dict[str, str]]:
        """Bindings if the pattern matches the whole path, else ``None``.

        Patterns are anchored at both ends (the paper's patterns start
        at the document root).  Use a leading ``#`` for a free prefix.
        """
        return _match(self.steps, path.steps, 0, 0, {})

    def matching_pids(self, summary: PathSummary) -> List[Tuple[int, Dict[str, str]]]:
        """All (pid, bindings) of summary paths matching the pattern.

        Memoized on the summary itself, keyed by the pattern steps and
        the summary size: paths are only ever *interned* (never removed
        or rewritten), so a grown summary simply misses and re-matches.
        Ad-hoc queries re-plan per call, and on wide summaries this
        match dominated planning.
        """
        cache: Optional[Dict] = getattr(summary, "_pattern_match_cache", None)
        if cache is None:
            cache = {}
            summary._pattern_match_cache = cache  # type: ignore[attr-defined]
        size = len(summary)
        hit = cache.get(self.steps)
        if hit is not None and hit[0] == size:
            return list(hit[1])
        matches: List[Tuple[int, Dict[str, str]]] = []
        for pid in summary.pids():
            bindings = self.match(summary.path(pid))
            if bindings is not None:
                matches.append((pid, bindings))
        if len(cache) >= 256:
            cache.clear()
        cache[self.steps] = (size, matches)
        return list(matches)


def _match(
    pattern: Tuple[PatternStep, ...],
    steps,
    pattern_index: int,
    step_index: int,
    bindings: Dict[str, str],
) -> Optional[Dict[str, str]]:
    """Backtracking matcher; returns the successful binding or None."""
    if pattern_index == len(pattern):
        return dict(bindings) if step_index == len(steps) else None

    head = pattern[pattern_index]

    if isinstance(head, SequenceWildcard):
        # Try consuming 0 .. remaining element steps (shortest first).
        for skip in range(len(steps) - step_index + 1):
            # '#' stands for a sequence of *tags*: element steps only.
            if skip > 0 and steps[step_index + skip - 1].kind != ELEMENT:
                break
            result = _match(
                pattern, steps, pattern_index + 1, step_index + skip, bindings
            )
            if result is not None:
                return result
        return None

    if step_index >= len(steps):
        return None
    step = steps[step_index]

    if isinstance(head, LiteralStep):
        if step.kind == ELEMENT and step.label == head.label:
            return _match(pattern, steps, pattern_index + 1, step_index + 1, bindings)
        return None

    if isinstance(head, AnyStep):
        if step.kind == ELEMENT:
            return _match(pattern, steps, pattern_index + 1, step_index + 1, bindings)
        return None

    if isinstance(head, VariableStep):
        if step.kind != ELEMENT:
            return None
        bound = bindings.get(head.name)
        if bound is not None and bound != step.label:
            return None
        if bound is None:
            bindings[head.name] = step.label
            result = _match(
                pattern, steps, pattern_index + 1, step_index + 1, bindings
            )
            if result is None:
                del bindings[head.name]
            return result
        return _match(pattern, steps, pattern_index + 1, step_index + 1, bindings)

    if isinstance(head, AttributeStep):
        if step.kind == ATTRIBUTE and step.label == head.name:
            return _match(pattern, steps, pattern_index + 1, step_index + 1, bindings)
        return None

    raise TypeError(f"unknown pattern step {head!r}")  # pragma: no cover
