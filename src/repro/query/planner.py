"""Query planning: resolve patterns against the path summary.

Planning is the schema-level half of execution: every FROM pattern is
matched once against the (small) path summary, yielding the candidate
relation set per variable together with any path-variable bindings.
The instance-level half (full-text probes, closures, the meet roll-up)
happens in :mod:`repro.query.executor`.

The plan's :meth:`Plan.explain` renders the relation fan-out — useful
to see how a schema wildcard like ``#`` expands over a real document.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..datamodel.errors import QueryPlanError
from ..monet.engine import MonetXML
from .ast import (
    Binding,
    DistanceItem,
    MeetItem,
    PathVarItem,
    Query,
    SelectItem,
)

__all__ = ["VariablePlan", "Plan", "plan_query"]


@dataclass(slots=True)
class VariablePlan:
    """Candidate relations for one node variable."""

    variable: str
    binding: Binding
    #: (pid, path-variable bindings) for every matching summary path.
    matches: List[Tuple[int, Dict[str, str]]] = field(default_factory=list)

    @property
    def pids(self) -> List[int]:
        return [pid for pid, _ in self.matches]


@dataclass(slots=True)
class Plan:
    """A planned query, ready to execute against its store."""

    query: Query
    store: MonetXML
    variables: Dict[str, VariablePlan]
    #: which variable's pattern binds each select-able path variable
    path_variable_owner: Dict[str, str]
    aggregate: bool

    def explain(self) -> str:
        """Human-readable relation fan-out of the plan."""
        lines = [f"plan over {self.store!r}"]
        for plan in self.variables.values():
            lines.append(
                f"  ${plan.variable} := {plan.binding.pattern} "
                f"→ {len(plan.matches)} relation(s)"
            )
            for pid, bindings in plan.matches[:8]:
                path = self.store.summary.path(pid)
                suffix = f"  {bindings}" if bindings else ""
                lines.append(f"      {path}{suffix}")
            if len(plan.matches) > 8:
                lines.append(f"      … {len(plan.matches) - 8} more")
        mode = "aggregate (meet)" if self.aggregate else "enumeration"
        lines.append(f"  mode: {mode}")
        return "\n".join(lines)


def _is_aggregate_item(item: SelectItem) -> bool:
    return isinstance(item, (MeetItem, DistanceItem))


def plan_query(query: Query, store: MonetXML) -> Plan:
    """Match every binding pattern against the store's path summary.

    Raises :class:`QueryPlanError` when aggregation items (``meet``,
    ``distance``) are mixed with row-wise items — the paper treats meet
    as an aggregation over the bound sets, so a mixed select has no
    coherent row semantics.
    """
    aggregates = [item for item in query.select if _is_aggregate_item(item)]
    rowwise = [item for item in query.select if not _is_aggregate_item(item)]
    if aggregates and rowwise:
        raise QueryPlanError(
            "meet()/distance() aggregations cannot be mixed with "
            "row-wise select items"
        )

    variables: Dict[str, VariablePlan] = {}
    path_variable_owner: Dict[str, str] = {}
    for binding in query.bindings:
        plan = VariablePlan(variable=binding.variable, binding=binding)
        plan.matches = binding.pattern.matching_pids(store.summary)
        variables[binding.variable] = plan
        for name in binding.pattern.variables:
            path_variable_owner.setdefault(name, binding.variable)

    for item in query.select:
        if isinstance(item, PathVarItem) and item.name not in path_variable_owner:
            raise QueryPlanError(f"path variable %{item.name} is not bound")

    return Plan(
        query=query,
        store=store,
        variables=variables,
        path_variable_owner=path_variable_owner,
        aggregate=bool(aggregates),
    )
