"""Cost-based query planning: patterns, predicates and access paths.

Planning has two halves.  The schema-level half is unchanged from the
original planner: every FROM pattern is matched once against the
(small) path summary, yielding the candidate relation set per variable
together with any path-variable bindings.  The predicate half is new:
each WHERE condition gets an *access path* —

===============  ====================================================
predicate        access paths considered
===============  ====================================================
``=``            value-index probe  ·  string-relation scan
``<,<=,>,>=``    value-index range  ·  string-relation scan
``contains``     fulltext postings  ·  string-relation scan
===============  ====================================================

The choice is ranked by cost: an equality/range probe into the typed
value index touches only matching entries, a fulltext posting lookup
touches one dictionary bucket, and a scan touches every string
association.  Because the probe structures reproduce the scan
semantics *exactly* (see :mod:`repro.valueindex` and
:func:`repro.query.ast.compare_values`), the choice changes cost, not
answers — which the differential harness asserts byte-for-byte via
``force_scan``.

The chosen access per predicate is rendered in :meth:`Plan.explain`
(deterministically — the sharded coordinator plans against a
summary-only shim and must produce identical text), while
:meth:`Plan.describe` additionally carries the store-dependent
estimated and actual row counts from :mod:`repro.monet.stats`
cardinalities, surfaced as ``ResultEnvelope.stats["plan"]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from weakref import WeakKeyDictionary

from ..datamodel.errors import QueryPlanError
from ..fulltext.index import cached_fulltext_index
from ..fulltext.tokenizer import tokenize
from ..monet.engine import MonetXML
from ..valueindex import cached_value_index
from .ast import (
    Binding,
    Condition,
    ContainsCondition,
    DistanceItem,
    EqualsCondition,
    MeetItem,
    ParamRef,
    PathVarItem,
    Query,
    RangeCondition,
    SelectItem,
)

__all__ = [
    "VariablePlan",
    "ConditionPlan",
    "Plan",
    "plan_query",
    "ACCESS_VALUE_INDEX",
    "ACCESS_FULLTEXT",
    "ACCESS_SCAN",
]

#: Access-path names recorded per predicate.
ACCESS_VALUE_INDEX = "value-index"
ACCESS_FULLTEXT = "fulltext"
ACCESS_SCAN = "scan"


@dataclass(slots=True)
class VariablePlan:
    """Candidate relations for one node variable."""

    variable: str
    binding: Binding
    #: (pid, path-variable bindings) for every matching summary path.
    matches: List[Tuple[int, Dict[str, str]]] = field(default_factory=list)
    #: Instance nodes across the matched relations (None without stats).
    estimated_rows: Optional[int] = None

    @property
    def pids(self) -> List[int]:
        return [pid for pid, _ in self.matches]


@dataclass(slots=True)
class ConditionPlan:
    """The chosen access path for one WHERE predicate."""

    condition: Condition
    #: One of :data:`ACCESS_VALUE_INDEX` / ``FULLTEXT`` / ``SCAN``.
    access: str
    #: Deterministic label shown in explain (no store-dependent numbers).
    detail: str
    #: Rows the access path is expected to yield (None when unknowable
    #: without touching the store, e.g. when planning against a
    #: summary-only shim or with an unbound parameter).
    estimated_rows: Optional[int] = None
    #: Associations a full scan would touch (the rejected alternative).
    scan_cost: Optional[int] = None
    #: Rows the access path actually yielded (filled by the executor).
    actual_rows: Optional[int] = None

    def render(self) -> str:
        """The predicate with its access path, estimate-free."""
        return f"where {_render_condition(self.condition)} via {self.detail}"

    def describe(self) -> Dict[str, object]:
        return {
            "predicate": _render_condition(self.condition),
            "access": self.access,
            "detail": self.detail,
            "estimated_rows": self.estimated_rows,
            "actual_rows": self.actual_rows,
            "scan_cost": self.scan_cost,
        }


def _render_literal(literal) -> str:
    if isinstance(literal, ParamRef):
        return str(literal)
    return f"'{literal}'"


def _render_condition(condition: Condition) -> str:
    if isinstance(condition, ContainsCondition):
        return (
            f"${condition.variable} contains {_render_literal(condition.needle)}"
        )
    if isinstance(condition, EqualsCondition):
        return f"${condition.variable} = {_render_literal(condition.value)}"
    if isinstance(condition, RangeCondition):
        return (
            f"${condition.variable} {condition.op} "
            f"{_render_literal(condition.value)}"
        )
    raise QueryPlanError(f"unknown condition {condition!r}")  # pragma: no cover


@dataclass(slots=True)
class Plan:
    """A planned query, ready to execute against its store."""

    query: Query
    store: MonetXML
    variables: Dict[str, VariablePlan]
    #: which variable's pattern binds each select-able path variable
    path_variable_owner: Dict[str, str]
    aggregate: bool
    #: Access-path decision per WHERE condition, in condition order.
    condition_plans: List[ConditionPlan] = field(default_factory=list)
    #: The differential harness's escape hatch: every predicate scans.
    forced_scan: bool = False
    #: Case mode the executing search engine runs under (estimates only).
    case_sensitive: bool = False

    def explain(self) -> str:
        """Human-readable relation fan-out and access paths of the plan.

        Deterministic given the query text and planner flags: the
        sharded coordinator explains against a summary-only shim and
        its output must match the monolithic processor's byte for byte,
        so store-dependent row estimates live in :meth:`describe`, not
        here.
        """
        lines = [f"plan over {self.store!r}"]
        for plan in self.variables.values():
            lines.append(
                f"  ${plan.variable} := {plan.binding.pattern} "
                f"→ {len(plan.matches)} relation(s)"
            )
            for pid, bindings in plan.matches[:8]:
                path = self.store.summary.path(pid)
                suffix = f"  {bindings}" if bindings else ""
                lines.append(f"      {path}{suffix}")
            if len(plan.matches) > 8:
                lines.append(f"      … {len(plan.matches) - 8} more")
        for condition_plan in self.condition_plans:
            lines.append(f"  {condition_plan.render()}")
        mode = "aggregate (meet)" if self.aggregate else "enumeration"
        lines.append(f"  mode: {mode}")
        return "\n".join(lines)

    def describe(self) -> Dict[str, object]:
        """The machine-readable plan: ``ResultEnvelope.stats["plan"]``."""
        return {
            "mode": "aggregate" if self.aggregate else "enumeration",
            "forced_scan": self.forced_scan,
            "variables": [
                {
                    "variable": plan.variable,
                    "pattern": str(plan.binding.pattern),
                    "relations": len(plan.matches),
                    "estimated_rows": plan.estimated_rows,
                }
                for plan in self.variables.values()
            ],
            "conditions": [
                condition_plan.describe()
                for condition_plan in self.condition_plans
            ],
        }

    def condition_plan_for(self, condition: Condition) -> Optional[ConditionPlan]:
        """The access decision of one condition (identity, then equality)."""
        for condition_plan in self.condition_plans:
            if condition_plan.condition is condition:
                return condition_plan
        for condition_plan in self.condition_plans:
            if condition_plan.condition == condition:
                return condition_plan
        return None

    def rebound(self, bound_query: Query) -> "Plan":
        """This plan re-targeted at a parameter-bound copy of its query.

        The schema half (pattern matches) is reused as-is — bindings
        never change which relations a pattern matches — while the
        predicate half is re-planned so bound literals get real
        estimates.  This is what lets a prepared statement plan once
        and execute many times.
        """
        return Plan(
            query=bound_query,
            store=self.store,
            variables=self.variables,
            path_variable_owner=self.path_variable_owner,
            aggregate=self.aggregate,
            condition_plans=[
                _plan_condition(
                    condition,
                    self.store,
                    forced_scan=self.forced_scan,
                    case_sensitive=self.case_sensitive,
                )
                for condition in bound_query.conditions
            ],
            forced_scan=self.forced_scan,
            case_sensitive=self.case_sensitive,
        )


def _is_aggregate_item(item: SelectItem) -> bool:
    return isinstance(item, (MeetItem, DistanceItem))


# ---------------------------------------------------------------------------
# Cardinality estimation (store-dependent; absent against the shim).
# ---------------------------------------------------------------------------

#: store → (generation, pid → node count, attr pid → association count).
_stats_cache: "WeakKeyDictionary[MonetXML, Tuple[int, Dict[int, int], Dict[int, int]]]" = (
    WeakKeyDictionary()
)


def _cardinalities(
    store: MonetXML,
) -> Tuple[Optional[Dict[int, int]], Optional[Dict[int, int]]]:
    """Per-pid node and association counts, cached per generation.

    ``(None, None)`` when the store cannot answer (the coordinator's
    summary-only shim) — estimates then stay ``None`` rather than lie.
    """
    if not hasattr(store, "iter_oids") or not hasattr(store, "string_relations"):
        return None, None
    generation = getattr(store, "generation", 0)
    cached = _stats_cache.get(store)
    if cached is not None and cached[0] == generation:
        return cached[1], cached[2]
    pid_counts: Dict[int, int] = {}
    iter_oids = getattr(store, "iter_live_oids", None) or store.iter_oids
    for oid in iter_oids():
        pid = store.pid_of(oid)
        pid_counts[pid] = pid_counts.get(pid, 0) + 1
    association_counts: Dict[int, int] = {
        pid: relation.count() for pid, relation in store.string_relations()
    }
    _stats_cache[store] = (generation, pid_counts, association_counts)
    return pid_counts, association_counts


def _estimate_variable(
    plan: VariablePlan,
    store: MonetXML,
    pid_counts: Optional[Dict[int, int]],
    association_counts: Optional[Dict[int, int]],
) -> Optional[int]:
    if pid_counts is None or association_counts is None:
        return None
    total = 0
    summary = store.summary
    for pid in plan.pids:
        if summary.is_attribute(pid):
            total += association_counts.get(pid, 0)
        else:
            total += pid_counts.get(pid, 0)
    return total


def _plan_condition(
    condition: Condition,
    store: MonetXML,
    *,
    forced_scan: bool,
    case_sensitive: bool,
    scan_cost: Optional[int] = None,
) -> ConditionPlan:
    """Choose and annotate the access path of one predicate.

    The *choice* is deterministic given the predicate shape and the
    ``forced_scan`` flag — explain parity across the sharded shim
    depends on it.  The *estimates* consult whatever index is already
    cached for the store (a pure peek; planning never builds one).
    """
    literal = (
        condition.needle
        if isinstance(condition, ContainsCondition)
        else condition.value
    )
    bound = None if isinstance(literal, ParamRef) else literal

    if isinstance(condition, ContainsCondition):
        # contains always executes through the search engine; the plan
        # records which strategy the engine will take for this needle.
        if bound is None:
            detail = "fulltext postings (strategy bound per execution)"
            access = ACCESS_FULLTEXT
            estimate = None
        else:
            tokens = tokenize(bound, case_sensitive)
            whole = all(ch.isalnum() for ch in bound.strip())
            if len(tokens) == 1 and whole:
                access, detail = ACCESS_FULLTEXT, "fulltext token postings"
            elif len(tokens) > 1:
                access, detail = (
                    ACCESS_FULLTEXT,
                    "fulltext conjunctive postings + substring confirm",
                )
            else:
                access, detail = ACCESS_SCAN, "string-relation scan (substring)"
            estimate = None
            index = cached_fulltext_index(store, case_sensitive)
            if index is not None and len(tokens) == 1 and whole:
                estimate = index.document_frequency(bound)
        return ConditionPlan(
            condition=condition,
            access=access,
            detail=detail,
            estimated_rows=estimate,
            scan_cost=scan_cost,
        )

    if forced_scan:
        return ConditionPlan(
            condition=condition,
            access=ACCESS_SCAN,
            detail="string-relation scan (forced)",
            scan_cost=scan_cost,
        )

    # Equality and range prefer the typed value index: a probe touches
    # only matching entries where a scan touches every association, so
    # the cost ranking is independent of the literal.  The estimate is
    # exact when an index is already warm.
    index = cached_value_index(store)
    estimate = None
    if isinstance(condition, EqualsCondition):
        detail = "value-index probe"
        if index is not None and bound is not None:
            estimate = index.estimate_eq(bound)
    else:
        detail = f"value-index range ({condition.op})"
        if index is not None and bound is not None:
            estimate = index.estimate_cmp(condition.op, bound)
    return ConditionPlan(
        condition=condition,
        access=ACCESS_VALUE_INDEX,
        detail=detail,
        estimated_rows=estimate,
        scan_cost=scan_cost,
    )


def plan_query(
    query: Query,
    store: MonetXML,
    *,
    force_scan: bool = False,
    case_sensitive: bool = False,
) -> Plan:
    """Match patterns against the path summary and pick access paths.

    Raises :class:`QueryPlanError` when aggregation items (``meet``,
    ``distance``) are mixed with row-wise items — the paper treats meet
    as an aggregation over the bound sets, so a mixed select has no
    coherent row semantics.

    ``force_scan`` pins every equality/range predicate to the
    string-relation scan — the differential harness's reference
    execution.  Cardinality estimates come from the per-generation
    pid/association histograms (``None`` against a summary-only shim).
    """
    aggregates = [item for item in query.select if _is_aggregate_item(item)]
    rowwise = [item for item in query.select if not _is_aggregate_item(item)]
    if aggregates and rowwise:
        raise QueryPlanError(
            "meet()/distance() aggregations cannot be mixed with "
            "row-wise select items"
        )

    pid_counts, association_counts = _cardinalities(store)
    scan_cost = (
        sum(association_counts.values()) if association_counts else None
    )

    variables: Dict[str, VariablePlan] = {}
    path_variable_owner: Dict[str, str] = {}
    for binding in query.bindings:
        plan = VariablePlan(variable=binding.variable, binding=binding)
        plan.matches = binding.pattern.matching_pids(store.summary)
        plan.estimated_rows = _estimate_variable(
            plan, store, pid_counts, association_counts
        )
        variables[binding.variable] = plan
        for name in binding.pattern.variables:
            path_variable_owner.setdefault(name, binding.variable)

    for item in query.select:
        if isinstance(item, PathVarItem) and item.name not in path_variable_owner:
            raise QueryPlanError(f"path variable %{item.name} is not bound")

    condition_plans = [
        _plan_condition(
            condition,
            store,
            forced_scan=force_scan,
            case_sensitive=case_sensitive,
            scan_cost=scan_cost,
        )
        for condition in query.conditions
    ]

    return Plan(
        query=query,
        store=store,
        variables=variables,
        path_variable_owner=path_variable_owner,
        aggregate=bool(aggregates),
        condition_plans=condition_plans,
        forced_scan=force_scan,
        case_sensitive=case_sensitive,
    )
