"""Tokenizer for the paper's SQL-with-paths query dialect.

The paper (footnote 1) queries look like::

    select meet($o1, $o2)
    from   bibliography/#/%T1 $o1,
           bibliography/#/%T2 $o2
    where  $o1 contains 'Bit'
    and    $o2 contains '1999'

Lexical elements: keywords (case-insensitive), identifiers, node
variables ``$name``, path variables ``%name``, the schema wildcard
``#``, path separators ``/`` and ``@``, string literals in single or
double quotes, integers, commas, parentheses and the comparison
operators ``=``, ``<``, ``<=``, ``>``, ``>=``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..datamodel.errors import QuerySyntaxError

__all__ = ["Token", "TokenKind", "tokenize_query", "KEYWORDS"]


class TokenKind:
    """Token kind constants (plain strings keep debugging readable)."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NODEVAR = "nodevar"
    PATHVAR = "pathvar"
    STRING = "string"
    INT = "int"
    SYMBOL = "symbol"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "select",
        "from",
        "where",
        "and",
        "contains",
        "meet",
        "within",
        "exclude",
        "root",
        "distance",
        "tag",
        "path",
        "text",
        "distinct",
    }
)

_SYMBOLS = ("(", ")", ",", "/", "@", "#", "=", "*", "<", ">")

#: Two-character comparison operators, matched before single symbols.
_DIGRAPHS = ("<=", ">=")


@dataclass(frozen=True, slots=True)
class Token:
    kind: str
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.value == word

    def is_symbol(self, symbol: str) -> bool:
        return self.kind == TokenKind.SYMBOL and self.value == symbol


def _read_name(text: str, start: int) -> int:
    position = start
    while position < len(text) and (
        text[position].isalnum() or text[position] in "_-."
    ):
        position += 1
    return position


def tokenize_query(text: str) -> List[Token]:
    """Tokenize a query; raises :class:`QuerySyntaxError` on bad input."""
    tokens: List[Token] = []
    position = 0
    length = len(text)
    while position < length:
        ch = text[position]
        if ch in " \t\r\n":
            position += 1
            continue
        if ch == "-" and text.startswith("--", position):
            newline = text.find("\n", position)
            position = length if newline < 0 else newline + 1
            continue
        if ch in ("'", '"'):
            end = text.find(ch, position + 1)
            if end < 0:
                raise QuerySyntaxError("unterminated string literal", position)
            tokens.append(Token(TokenKind.STRING, text[position + 1 : end], position))
            position = end + 1
            continue
        if ch == "$":
            end = _read_name(text, position + 1)
            if end == position + 1:
                raise QuerySyntaxError("empty node variable after '$'", position)
            tokens.append(Token(TokenKind.NODEVAR, text[position + 1 : end], position))
            position = end
            continue
        if ch == "%":
            end = _read_name(text, position + 1)
            if end == position + 1:
                raise QuerySyntaxError("empty path variable after '%'", position)
            tokens.append(Token(TokenKind.PATHVAR, text[position + 1 : end], position))
            position = end
            continue
        if ch.isdigit():
            end = position
            while end < length and text[end].isdigit():
                end += 1
            # A digit run followed by name characters is an identifier
            # (tag names like 1999 do not appear; be strict).
            tokens.append(Token(TokenKind.INT, text[position:end], position))
            position = end
            continue
        if ch.isalpha() or ch == "_":
            end = _read_name(text, position)
            word = text[position:end]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, lowered, position))
            else:
                tokens.append(Token(TokenKind.IDENT, word, position))
            position = end
            continue
        if text.startswith(_DIGRAPHS, position):
            tokens.append(Token(TokenKind.SYMBOL, text[position : position + 2], position))
            position += 2
            continue
        if ch in _SYMBOLS:
            tokens.append(Token(TokenKind.SYMBOL, ch, position))
            position += 1
            continue
        raise QuerySyntaxError(f"unexpected character {ch!r}", position)
    tokens.append(Token(TokenKind.EOF, "", length))
    return tokens
