"""The ``Database`` facade — the library's one supported front door.

The paper's pitch is that nearest-concept queries serve users
"familiar with the content but unaware of tags and hierarchies"; this
module extends the courtesy to *programmers*.  Instead of wiring
``MonetXML`` + ``SearchEngine`` + ``NearestConceptEngine`` +
``QueryProcessor`` + ``Catalog`` by hand, callers open one object::

    import repro

    db = repro.open("bib.xml")                  # or .json / .snap / a
    db.nearest("Bit", "1999").answers           # catalog collection
    db.query("select meet($a,$b) from # $a, # $b "
             "where $a contains 'Bit' and $b contains '1999'")

Every entry point returns a :class:`~repro.api.envelopes.ResultEnvelope`
(answers + ranking keys + timing + cache/backend stats, JSON-codable),
and every answer is produced by the documented low-level tier —
``db.engine`` / ``db.processor`` are the very
:class:`~repro.core.engine.NearestConceptEngine` and
:class:`~repro.query.executor.QueryProcessor` instances, so facade
answers are identical (including ranking order) to direct calls.

A ``Database`` is **immutable after open** — the store, its
generation-keyed indexes and the engine wiring never change — which
is what makes one instance safe to share across server threads: lazy
engine/processor wiring is built under a lock, and the result cache
locks internally.  Call :meth:`Database.warm_up` (the server does,
before accepting traffic) to force the derived indexes to exist
first; threads racing an *un-warmed* database may duplicate an index
build — never corrupting state, since every build is equivalent and
the generation-keyed cache keeps one — but paying redundant work.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path as FsPath
from typing import Dict, List, Optional, Union

from ..core.engine import NearestConceptEngine
from ..core.result_cache import ResultCache, resolve_result_cache
from ..datamodel.errors import ReproError
from ..fulltext.search import SearchEngine
from ..monet.engine import MonetXML
from ..query.executor import QueryProcessor, QueryResult
from ..snapshot.codec import Snapshot
from .envelopes import (
    NearestRequest,
    QueryRequest,
    ResultEnvelope,
    SearchRequest,
)
from .options import DatabaseOptions
from .resolve import ResolvedSource, SourceLike, resolve_source

__all__ = ["Database", "open_database"]


def _cache_info_dict(info) -> Optional[Dict[str, object]]:
    """A ResultCacheInfo as a JSON-ready dict (None when caching is off)."""
    if info is None:
        return None
    return {
        "hits": info.hits,
        "misses": info.misses,
        "maxsize": info.maxsize,
        "currsize": info.currsize,
        "evictions": info.evictions,
        "hit_rate": round(info.hit_rate, 4),
    }


class Database:
    """One opened document collection, queryable three ways.

    Construct via :meth:`open` (or :func:`repro.open`); the raw
    constructor accepts an already-loaded store for embedding
    scenarios (tests, benchmarks, in-memory documents).
    """

    def __init__(
        self,
        store: MonetXML,
        *,
        options: Optional[DatabaseOptions] = None,
        origin: str = "store",
        snapshot: Optional[Snapshot] = None,
        source: Optional[str] = None,
        load_seconds: float = 0.0,
    ):
        self.store = store
        self.options = options or DatabaseOptions()
        self.origin = origin
        self.snapshot = snapshot
        self.source = source
        self.load_seconds = load_seconds
        self.case_sensitive, self.backend_name = self.options.effective(snapshot)
        #: One lock-guarded result cache shared by the engine and the
        #: query processor (their key shapes cannot collide).
        self.result_cache: Optional[ResultCache] = resolve_result_cache(
            self.options.cache
        )
        self._wiring_lock = threading.Lock()
        self._engine: Optional[NearestConceptEngine] = None
        self._processor: Optional[QueryProcessor] = None

    # -- opening --------------------------------------------------------
    @classmethod
    def open(
        cls,
        source: Optional[SourceLike] = None,
        *,
        options: Optional[DatabaseOptions] = None,
        snapshot: Optional[SourceLike] = None,
        **overrides,
    ) -> "Database":
        """Resolve and load any supported source behind one call.

        ``source`` may be an XML file, a legacy ``.json`` Monet image,
        a ``.snap`` snapshot bundle, or the name of a catalog
        collection; ``snapshot=`` forces bundle/collection resolution
        (the CLI's ``--snapshot``).  Keyword ``overrides`` (``backend=``,
        ``case_sensitive=``, ``cache=``, ``catalog=``, ``mmap=``,
        ``max_rows=``) are applied on top of ``options``.
        """
        options = options or DatabaseOptions()
        if overrides:
            options = options.replace(**overrides)
        started = time.perf_counter()
        resolved: ResolvedSource = resolve_source(
            source,
            snapshot=snapshot,
            catalog=options.catalog,
            case_sensitive=options.case_sensitive,
            use_mmap=options.mmap,
        )
        return cls(
            resolved.store,
            options=options,
            origin=resolved.origin,
            snapshot=resolved.snapshot,
            source=None if source is None else str(source),
            load_seconds=time.perf_counter() - started,
        )

    @classmethod
    def open_all(
        cls,
        catalog: SourceLike,
        *,
        options: Optional[DatabaseOptions] = None,
        **overrides,
    ) -> Dict[str, "Database"]:
        """Open every collection of a catalog — the server's fleet."""
        from ..snapshot import Catalog

        options = options or DatabaseOptions()
        if overrides:
            options = options.replace(**overrides)
        options = options.replace(catalog=catalog)
        names = Catalog(FsPath(catalog), create=False).names()
        if not names:
            raise ReproError(f"catalog {catalog} holds no collections")
        return {
            name: cls.open(options=options, snapshot=name) for name in names
        }

    # -- wiring (lazy, built once) --------------------------------------
    @property
    def engine(self) -> NearestConceptEngine:
        """The documented low-level tier, wired to this database."""
        if self._engine is None:
            with self._wiring_lock:
                if self._engine is None:
                    self._engine = NearestConceptEngine(
                        self.store,
                        case_sensitive=self.case_sensitive,
                        backend=self.backend_name,
                        cache=self.result_cache,
                    )
        return self._engine

    @property
    def processor(self) -> QueryProcessor:
        """The query-language tier, sharing this database's wiring."""
        if self._processor is None:
            with self._wiring_lock:
                if self._processor is None:
                    self._processor = QueryProcessor(
                        self.store,
                        search=SearchEngine(
                            self.store, case_sensitive=self.case_sensitive
                        ),
                        max_rows=self.options.max_rows,
                        backend=self.backend_name,
                        cache=self.result_cache,
                    )
        return self._processor

    def warm_up(self) -> None:
        """Force every derived index to exist before traffic arrives.

        Touching the full-text index and (on the indexed backend) the
        LCA index through their generation-keyed caches here is what
        lets a multi-threaded server guarantee zero index rebuilds
        once it starts answering.
        """
        _ = self.engine.index
        _ = self.engine.backend
        _ = self.processor.search.index

    # -- introspection --------------------------------------------------
    @property
    def generation(self) -> int:
        return self.store.generation

    @property
    def node_count(self) -> int:
        return self.store.node_count

    def cache_info(self):
        """Result-cache counters, or ``None`` when caching is off."""
        if self.result_cache is None:
            return None
        return self.result_cache.cache_info()

    def describe(self) -> Dict[str, object]:
        """Static collection metadata (the ``/v1/collections`` row)."""
        meta: Dict[str, object] = {
            "origin": self.origin,
            "source": self.source,
            "node_count": self.store.node_count,
            "path_count": len(self.store.summary) - 1,
            "backend": self.backend_name,
            "case_sensitive": self.case_sensitive,
        }
        if self.snapshot is not None:
            meta["snapshot"] = {
                "vocabulary_size": self.snapshot.fulltext_index.vocabulary_size,
                "tour_length": self.snapshot.lca_index.tour_length,
            }
        return meta

    def stats(self) -> Dict[str, object]:
        """Live serving statistics (the ``/v1/stats`` row).

        Index-build counters are process-wide, not per-store, so they
        live one level up — :meth:`ReproServer.stats` reports them
        once for the whole process.
        """
        return {
            "origin": self.origin,
            "backend": self.backend_name,
            "case_sensitive": self.case_sensitive,
            "generation": self.store.generation,
            "node_count": self.store.node_count,
            "load_ms": round(self.load_seconds * 1000, 3),
            "cache": _cache_info_dict(self.cache_info()),
        }

    def _envelope_stats(self) -> Dict[str, object]:
        return {
            "origin": self.origin,
            "backend": self.backend_name,
            "case_sensitive": self.case_sensitive,
            "generation": self.store.generation,
            "cache": _cache_info_dict(self.cache_info()),
        }

    # -- the three query surfaces ----------------------------------------
    def search(self, request: Union[str, SearchRequest]) -> ResultEnvelope:
        """Raw full-text hits for one term, as an envelope."""
        if isinstance(request, str):
            request = SearchRequest(term=request)
        started = time.perf_counter()
        hits = self.engine.term_hits(request.term)
        oids = sorted(hits.oids())
        if request.limit is not None:
            oids = oids[: request.limit]
        store = self.store
        answers = tuple(
            {
                "oid": oid,
                "tag": store.summary.label(store.pid_of(oid)),
                "path": str(store.path_of(oid)),
            }
            for oid in oids
        )
        elapsed = time.perf_counter() - started
        return ResultEnvelope(
            kind=SearchRequest.kind,
            request=request.to_dict(),
            answers=answers,
            count=len(answers),
            elapsed_ms=round(elapsed * 1000, 3),
            stats=self._envelope_stats(),
        )

    def nearest(
        self, request: Union[NearestRequest, str], *terms: str, **options
    ) -> ResultEnvelope:
        """Ranked nearest concepts; answers carry the full §4 key.

        Accepts either a ready :class:`NearestRequest` or the terms
        inline — ``db.nearest("Bit", "1999", limit=5)``.
        """
        if isinstance(request, str):
            request = NearestRequest(terms=(request, *terms), **options)
        elif terms or options:
            raise TypeError(
                "pass either a NearestRequest or inline terms, not both"
            )
        started = time.perf_counter()
        concepts = self.engine.nearest_concepts(
            *request.terms,
            exclude_root=request.exclude_root,
            require_all_terms=request.require_all_terms,
            within=request.within,
            limit=request.limit,
        )
        answers: List[Dict[str, object]] = []
        for concept in concepts:
            answer: Dict[str, object] = {
                "oid": concept.oid,
                "tag": concept.tag,
                "path": str(concept.path),
                "joins": concept.joins,
                "spread": concept.spread,
                "depth": concept.depth,
                "origins": list(concept.origins),
                "terms": list(concept.terms),
            }
            if request.snippets:
                answer["snippet"] = self.engine.snippet(concept)
            answers.append(answer)
        elapsed = time.perf_counter() - started
        return ResultEnvelope(
            kind=NearestRequest.kind,
            request=request.to_dict(),
            answers=tuple(answers),
            count=len(answers),
            elapsed_ms=round(elapsed * 1000, 3),
            stats=self._envelope_stats(),
        )

    def query(self, request: Union[str, QueryRequest]) -> ResultEnvelope:
        """Execute (or explain) a select/from/where query."""
        if isinstance(request, str):
            request = QueryRequest(text=request)
        started = time.perf_counter()
        if request.explain:
            rendered = self.processor.explain(request.text)
            elapsed = time.perf_counter() - started
            return ResultEnvelope(
                kind=QueryRequest.kind,
                request=request.to_dict(),
                columns=(),
                rows=(),
                rendered=rendered,
                count=0,
                elapsed_ms=round(elapsed * 1000, 3),
                stats=self._envelope_stats(),
            )
        result: QueryResult = self.processor.execute(request.text)
        elapsed = time.perf_counter() - started
        table = result.to_dict()
        return ResultEnvelope(
            kind=QueryRequest.kind,
            request=request.to_dict(),
            columns=tuple(table["columns"]),
            rows=tuple(tuple(row) for row in table["rows"]),
            rendered=result.render_answer(self.store)
            if request.render
            else None,
            count=table["row_count"],
            elapsed_ms=round(elapsed * 1000, 3),
            stats=self._envelope_stats(),
        )

    def explain(self, text: str) -> str:
        """The query plan, as the processor renders it."""
        return self.processor.explain(text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Database nodes={self.store.node_count} origin={self.origin!r} "
            f"backend={self.backend_name!r}>"
        )


def open_database(
    source: Optional[SourceLike] = None,
    *,
    options: Optional[DatabaseOptions] = None,
    snapshot: Optional[SourceLike] = None,
    **overrides,
) -> Database:
    """Module-level spelling of :meth:`Database.open` (``repro.open``)."""
    return Database.open(
        source, options=options, snapshot=snapshot, **overrides
    )
