"""The ``Database`` facade — the library's one supported front door.

The paper's pitch is that nearest-concept queries serve users
"familiar with the content but unaware of tags and hierarchies"; this
module extends the courtesy to *programmers*.  Instead of wiring
``MonetXML`` + ``SearchEngine`` + ``NearestConceptEngine`` +
``QueryProcessor`` + ``Catalog`` by hand, callers open one object::

    import repro

    db = repro.open("bib.xml")                  # or .json / .snap / a
    db.nearest("Bit", "1999").answers           # catalog collection
    db.query("select meet($a,$b) from # $a, # $b "
             "where $a contains 'Bit' and $b contains '1999'")

Every entry point returns a :class:`~repro.api.envelopes.ResultEnvelope`
(answers + ranking keys + timing + cache/backend stats, JSON-codable).
For a monolithic open, every answer is produced by the documented
low-level tier — ``db.engine`` / ``db.processor`` are the very
:class:`~repro.core.engine.NearestConceptEngine` and
:class:`~repro.query.executor.QueryProcessor` instances, so facade
answers are identical (including ranking order) to direct calls.

With ``shards=`` / ``workers=`` (or a catalog collection built with
``snapshot build --shards N``) the same surfaces run on the execution
layer instead: per-shard work as a pure function of a shard handle
(:mod:`repro.exec.service`), executed serially or on a process pool
(:mod:`repro.exec.executors`), merged by the coordinator
(:mod:`repro.exec.coordinator`) — with answers and ranking order
byte-identical to the monolithic path by construction and by the
differential test suite.

A ``Database`` is a **live collection**: reads share a
writer-preference readers–writer lock, and :meth:`put` /
:meth:`delete` / :meth:`replace` mutate the store under the exclusive
side while queries keep answering between mutations.  A mutation bumps
the store generation, so every generation-keyed cache (LCA, full-text,
results) invalidates precisely — the full-text index rolls forward
through the mutation journal instead of rebuilding.  Snapshot-backed
opens get durability for free: each acknowledged mutation appends one
delta section to the ``.snap`` bundle (:mod:`repro.snapshot.deltas`)
before it is applied, and :meth:`compact` folds tombstones and the
delta tail back into a dense base bundle behind the catalog's
crash-safe manifest flip.  Lazy engine/processor wiring is still built
under its own lock; threads racing an *un-warmed* database may
duplicate an index build — never corrupting state, since every build
is equivalent and the generation-keyed cache keeps one — but paying
redundant work (call :meth:`warm_up` first, as the server does).
"""

from __future__ import annotations

import hashlib
import shutil
import tempfile
import threading
import time
import weakref
from contextlib import contextmanager
from pathlib import Path as FsPath
from typing import Dict, List, Optional, Tuple, Union

from .. import kernels
from ..core.backends import snapshot_default_backend
from ..core.engine import NearestConceptEngine
from ..core.result_cache import ResultCache, resolve_result_cache
from ..datamodel.errors import (
    DuplicateDocumentError,
    QueryPlanError,
    ReproError,
    StorageError,
    UnknownDocumentError,
)
from ..datamodel.parser import parse_fragment
from ..exec.coordinator import ShardedCollection
from ..exec.executors import ParallelExecutor, SerialExecutor
from ..exec.service import ShardService
from ..exec.sharding import ShardPlan, compute_shard_plan, slice_store
from ..fulltext.search import SearchEngine
from ..monet.engine import MonetXML
from ..monet.mutate import (
    compact_store,
    delete_document,
    ensure_document_registry,
    put_document,
    replace_document,
)
from ..obs.metrics import CallbackGauge, Counter, Gauge
from ..query.ast import Query
from ..query.executor import QueryProcessor, QueryResult
from ..query.parser import parse_query
from ..snapshot.codec import Snapshot, read_snapshot, write_snapshot
from ..snapshot.deltas import DeltaOp, append_delta
from .envelopes import (
    ExecuteRequest,
    NearestRequest,
    PrepareRequest,
    QueryRequest,
    ResultEnvelope,
    SearchRequest,
)
from .options import DatabaseOptions
from .resolve import ResolvedSource, SourceLike, resolve_source

__all__ = ["Database", "open_database"]


class _RWLock:
    """A writer-preference readers–writer lock.

    Readers share; a writer excludes everyone.  Arriving writers block
    *new* readers, so a mutation cannot starve behind a stream of
    overlapping queries.  Not reentrant — the facade takes it exactly
    once per public call.
    """

    __slots__ = (
        "_lock",
        "_readers_ok",
        "_writers_ok",
        "_readers",
        "_writers_waiting",
        "_writing",
    )

    def __init__(self):
        self._lock = threading.Lock()
        self._readers_ok = threading.Condition(self._lock)
        self._writers_ok = threading.Condition(self._lock)
        self._readers = 0
        self._writers_waiting = 0
        self._writing = False

    @contextmanager
    def read(self):
        with self._lock:
            while self._writing or self._writers_waiting:
                self._readers_ok.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._lock:
                self._readers -= 1
                if not self._readers:
                    self._writers_ok.notify()

    @contextmanager
    def write(self):
        with self._lock:
            self._writers_waiting += 1
            while self._writing or self._readers:
                self._writers_ok.wait()
            self._writers_waiting -= 1
            self._writing = True
        try:
            yield
        finally:
            with self._lock:
                self._writing = False
                if self._writers_waiting:
                    self._writers_ok.notify()
                else:
                    self._readers_ok.notify_all()


def _cache_info_dict(info) -> Optional[Dict[str, object]]:
    """A ResultCacheInfo as a JSON-ready dict (None when caching is off)."""
    if info is None:
        return None
    return {
        "hits": info.hits,
        "misses": info.misses,
        "maxsize": info.maxsize,
        "currsize": info.currsize,
        "evictions": info.evictions,
        "hit_rate": round(info.hit_rate, 4),
    }


class Database:
    """One opened document collection, queryable three ways.

    Construct via :meth:`open` (or :func:`repro.open`); the raw
    constructor accepts an already-loaded store for embedding
    scenarios (tests, benchmarks, in-memory documents).
    """

    def __init__(
        self,
        store: Optional[MonetXML] = None,
        *,
        options: Optional[DatabaseOptions] = None,
        origin: str = "store",
        snapshot: Optional[Snapshot] = None,
        source: Optional[str] = None,
        load_seconds: float = 0.0,
        sharded: Optional[ShardedCollection] = None,
        _cleanup=None,
    ):
        if store is None and sharded is None:
            raise ReproError("Database needs a store or a sharded collection")
        self.store = store
        self.options = options or DatabaseOptions()
        self.origin = origin
        self.snapshot = snapshot
        self.source = source
        self.load_seconds = load_seconds
        self.sharded = sharded
        if sharded is not None:
            self.case_sensitive = sharded.case_sensitive
            self.backend_name = sharded.backend_name
            self.result_cache: Optional[ResultCache] = sharded.result_cache
        else:
            self.case_sensitive, self.backend_name = self.options.effective(
                snapshot
            )
            #: One lock-guarded result cache shared by the engine and the
            #: query processor (their key shapes cannot collide).
            self.result_cache = resolve_result_cache(self.options.cache)
        self._wiring_lock = threading.Lock()
        self._engine: Optional[NearestConceptEngine] = None
        self._processor: Optional[QueryProcessor] = None
        #: Readers share; put/delete/replace/compact take the write side.
        self._rw = _RWLock()
        #: For in-memory sharded serving (workers=0): the unsliced store
        #: mutations apply to before the shard fabric is rebuilt.
        self._base_store: Optional[MonetXML] = None
        self._delta_path: Optional[FsPath] = None
        self._mutable_catalog: Optional[Tuple[FsPath, str]] = None
        self._pending_deltas = 0
        self._mutations = 0
        #: Declared value-index path patterns (recorded in the bundle's
        #: manifest meta); preserved across compaction rewrites.
        self._value_indexes: Optional[List[str]] = None
        #: Prepared statements: handle → (normalized text, parsed template).
        self._prepared: Dict[str, Tuple[str, Query]] = {}
        self._prepared_lock = threading.Lock()
        self._metric_objects: Optional[List[object]] = None
        self._prepared_executions = Counter(
            "repro_prepared_executions_total",
            "Executions of prepared statements.",
        )
        if snapshot is not None:
            self._bind_write_through(snapshot)
        self._finalizer = (
            weakref.finalize(self, _cleanup) if _cleanup is not None else None
        )

    def _bind_write_through(self, snapshot: Snapshot) -> None:
        """Route future mutations to the bundle this store loaded from."""
        if snapshot.path is None:
            return
        self._delta_path = FsPath(snapshot.path)
        self._pending_deltas = snapshot.delta_count
        declared = snapshot.meta.get("value_indexes")
        if isinstance(declared, list):
            self._value_indexes = [str(pattern) for pattern in declared]
        catalog_root = snapshot.meta.get("catalog")
        collection = snapshot.meta.get("collection")
        if isinstance(catalog_root, str) and isinstance(collection, str):
            self._mutable_catalog = (FsPath(catalog_root), collection)

    # -- opening --------------------------------------------------------
    @classmethod
    def open(
        cls,
        source: Optional[SourceLike] = None,
        *,
        options: Optional[DatabaseOptions] = None,
        snapshot: Optional[SourceLike] = None,
        **overrides,
    ) -> "Database":
        """Resolve and load any supported source behind one call.

        ``source`` may be an XML file, a legacy ``.json`` Monet image,
        a ``.snap`` snapshot bundle, or the name of a catalog
        collection; ``snapshot=`` forces bundle/collection resolution
        (the CLI's ``--snapshot``).  Keyword ``overrides`` (``backend=``,
        ``case_sensitive=``, ``cache=``, ``catalog=``, ``mmap=``,
        ``max_rows=``, ``shards=``, ``workers=``) are applied on top of
        ``options``.
        """
        options = options or DatabaseOptions()
        if overrides:
            options = options.replace(**overrides)
        started = time.perf_counter()
        resolved: ResolvedSource = resolve_source(
            source,
            snapshot=snapshot,
            catalog=options.catalog,
            case_sensitive=options.case_sensitive,
            use_mmap=options.mmap,
        )
        source_name = None if source is None else str(source)
        if resolved.sharded is not None:
            return cls._open_sharded_bundles(
                resolved, options, source_name, started
            )
        if options.effective_shards is not None:
            return cls._open_sharded_store(
                resolved, options, source_name, started
            )
        return cls(
            resolved.store,
            options=options,
            origin=resolved.origin,
            snapshot=resolved.snapshot,
            source=source_name,
            load_seconds=time.perf_counter() - started,
        )

    @classmethod
    def _open_sharded_bundles(
        cls,
        resolved: ResolvedSource,
        options: DatabaseOptions,
        source_name: Optional[str],
        started: float,
    ) -> "Database":
        """A catalog collection persisted as shard bundles."""
        from ..snapshot.sharded import read_snapshot_header

        bundles = resolved.sharded
        plan = ShardPlan.from_dict(bundles.layout)
        # Only an *explicit* shards= can conflict with the persisted
        # layout; the worker count is independent of the shard count.
        requested = options.shards
        if requested is not None and requested != plan.shard_count:
            raise ReproError(
                f"collection is persisted as {plan.shard_count} shard(s); "
                f"rebuild it (snapshot build --shards {requested}) to "
                "change the layout"
            )
        case_sensitive = (
            bundles.case_sensitive
            if options.case_sensitive is None
            else bool(options.case_sensitive)
        )
        backend_name = options.backend or snapshot_default_backend()

        def _check_layout(meta: Dict[str, object], path) -> None:
            # A crash mid-rebuild can leave bundles of one generation
            # under a manifest of another; refuse loudly rather than
            # scatter-gather over a mixed set.
            from ..snapshot.sharded import layout_from_meta

            if layout_from_meta(meta) != plan:
                raise ReproError(
                    f"shard bundle {path} does not match the catalog's "
                    "recorded layout; rebuild the collection "
                    "(snapshot build --shards N)"
                )

        if options.cluster is not None or options.replicas > 0:
            meta, summary = read_snapshot_header(bundles.paths[0])
            _check_layout(meta, bundles.paths[0])
            if options.cluster is not None:
                executor = cls._cluster_executor_from_addresses(
                    options.cluster, plan.shard_count
                )
            else:
                executor = cls._replicated_executor(
                    bundles.paths,
                    options.replicas,
                    case_sensitive=case_sensitive,
                    backend=backend_name,
                )
            generations = (bundles.generation,) * plan.shard_count
        elif options.workers > 0:
            meta, summary = read_snapshot_header(bundles.paths[0])
            _check_layout(meta, bundles.paths[0])
            executor = ParallelExecutor(
                bundles.paths,
                workers=options.workers,
                case_sensitive=case_sensitive,
                backend=backend_name,
                use_mmap=True,
            )
            generations = (bundles.generation,) * plan.shard_count
        else:
            snapshots = [
                read_snapshot(path, use_mmap=options.mmap)
                for path in bundles.paths
            ]
            for snapshot, path in zip(snapshots, bundles.paths):
                _check_layout(snapshot.meta, path)
            meta = snapshots[0].meta
            summary = snapshots[0].store.summary
            executor = SerialExecutor(
                [
                    ShardService(
                        snap.store,
                        shard_id=index,
                        case_sensitive=case_sensitive,
                        backend=backend_name,
                    )
                    for index, snap in enumerate(snapshots)
                ]
            )
            generations = tuple(
                snap.store.generation for snap in snapshots
            )
        sharded = ShardedCollection(
            plan,
            summary,
            executor,
            case_sensitive=case_sensitive,
            backend_name=backend_name,
            generations=generations,
            cache=resolve_result_cache(options.cache),
            max_rows=options.max_rows,
        )
        database = cls(
            options=options,
            origin=resolved.origin,
            source=source_name,
            load_seconds=time.perf_counter() - started,
            sharded=sharded,
        )
        declared = meta.get("value_indexes")
        if isinstance(declared, list):
            database._value_indexes = [str(pattern) for pattern in declared]
        return database

    @staticmethod
    def _cluster_executor_from_addresses(cluster, shard_count: int):
        """A :class:`ClusterExecutor` over already-running workers.

        ``cluster`` is the options-level tuple of per-shard address
        groups; the workers are *unmanaged* — never respawned here,
        only health-checked and failed over.
        """
        from ..exec.cluster import ClusterExecutor, ReplicaSpec

        if len(cluster) != shard_count:
            raise ReproError(
                f"the cluster map has {len(cluster)} shard group(s) but "
                f"the collection has {shard_count} shard(s)"
            )
        return ClusterExecutor(
            [
                [ReplicaSpec(address=(str(host), int(port)))
                 for host, port in group]
                for group in cluster
            ]
        )

    @staticmethod
    def _replicated_executor(
        bundle_paths,
        replicas: int,
        *,
        case_sensitive: bool,
        backend: Optional[str],
    ):
        """Spawn and supervise ``replicas`` socket workers per shard.

        Each worker process loads exactly one shard's bundle, so a
        kill takes out one replica of one shard — the blast radius
        the failover machinery is built around.  The specs carry the
        spawn recipe, so the cluster's prober can respawn a dead
        worker from the same bundle.
        """
        import functools

        from ..exec.cluster import ClusterExecutor, ReplicaSpec
        from ..exec.remote import spawn_worker_process

        specs = []
        for shard_id, path in enumerate(bundle_paths):
            spawn = functools.partial(
                spawn_worker_process,
                [str(path)],
                shard_ids=[shard_id],
                case_sensitive=case_sensitive,
                backend=backend,
            )
            specs.append([ReplicaSpec(spawn=spawn) for _ in range(replicas)])
        return ClusterExecutor(specs)

    @classmethod
    def _open_sharded_store(
        cls,
        resolved: ResolvedSource,
        options: DatabaseOptions,
        source_name: Optional[str],
        started: float,
    ) -> "Database":
        """Shard a store resolved in memory (parse / image / bundle)."""
        store = resolved.store
        shard_count = options.effective_shards
        case_sensitive, backend_name = options.effective(resolved.snapshot)
        cleanup = None
        # One try covers everything from temp-dir creation to instance
        # construction: a failure anywhere after materialization (plan
        # validation, executor spin-up, ShardedCollection wiring) must
        # not leave the temp shard bundles behind.
        try:
            if options.cluster is not None:
                # Remote workers already hold the data; the local
                # store only supplies the plan and path summary the
                # coordinator merges with.
                plan = compute_shard_plan(store, shard_count)
                executor = cls._cluster_executor_from_addresses(
                    options.cluster, plan.shard_count
                )
                generations = (store.generation,) * plan.shard_count
            elif options.workers > 0 or options.replicas > 0:
                # Worker processes load shards from disk: materialize
                # warm bundles (store + indexes) into a temp directory.
                from ..snapshot.sharded import write_shard_bundles

                tempdir = tempfile.mkdtemp(prefix="repro-shards-")
                cleanup = lambda: shutil.rmtree(tempdir, ignore_errors=True)  # noqa: E731
                plan, paths, _size = write_shard_bundles(
                    store,
                    tempdir,
                    "collection",
                    shards=shard_count,
                    case_sensitive=case_sensitive,
                )
                if options.replicas > 0:
                    executor = cls._replicated_executor(
                        paths,
                        options.replicas,
                        case_sensitive=case_sensitive,
                        backend=backend_name,
                    )
                else:
                    executor = ParallelExecutor(
                        paths,
                        workers=options.workers,
                        case_sensitive=case_sensitive,
                        backend=backend_name,
                        use_mmap=True,
                    )
                generations = (store.generation,) * plan.shard_count
            else:
                plan = compute_shard_plan(store, shard_count)
                slices = slice_store(store, plan)
                executor = SerialExecutor(
                    [
                        ShardService(
                            shard,
                            shard_id=index,
                            case_sensitive=case_sensitive,
                            backend=backend_name,
                        )
                        for index, shard in enumerate(slices)
                    ]
                )
                generations = tuple(shard.generation for shard in slices)
            sharded = ShardedCollection(
                plan,
                store.summary,
                executor,
                case_sensitive=case_sensitive,
                backend_name=backend_name,
                generations=generations,
                cache=resolve_result_cache(options.cache),
                max_rows=options.max_rows,
            )
            database = cls(
                options=options,
                origin=f"{resolved.origin} ({plan.shard_count} shards)",
                source=source_name,
                load_seconds=time.perf_counter() - started,
                sharded=sharded,
                _cleanup=cleanup,
            )
        except BaseException:
            if cleanup is not None:
                cleanup()
            raise
        if (
            options.workers == 0
            and options.replicas == 0
            and options.cluster is None
        ):
            # Serial in-process shards stay writable: mutations land on
            # the unsliced base store, then the fabric is re-sliced.
            # Out-of-process shards (pool, replicas, cluster) serve
            # read-only bundles.
            database._base_store = store
            if resolved.snapshot is not None:
                database._bind_write_through(resolved.snapshot)
        return database

    @classmethod
    def open_all(
        cls,
        catalog: SourceLike,
        *,
        options: Optional[DatabaseOptions] = None,
        **overrides,
    ) -> Dict[str, "Database"]:
        """Open every collection of a catalog — the server's fleet."""
        from ..snapshot import Catalog

        options = options or DatabaseOptions()
        if overrides:
            options = options.replace(**overrides)
        options = options.replace(catalog=catalog)
        names = Catalog(FsPath(catalog), create=False).names()
        if not names:
            raise ReproError(f"catalog {catalog} holds no collections")
        return {
            name: cls.open(options=options, snapshot=name) for name in names
        }

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Release executor processes and temp shard bundles (idempotent)."""
        if self.sharded is not None:
            self.sharded.executor.close()
        if self._finalizer is not None:
            self._finalizer()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def is_sharded(self) -> bool:
        return self.sharded is not None

    # -- wiring (lazy, built once) --------------------------------------
    @property
    def engine(self) -> NearestConceptEngine:
        """The documented low-level tier, wired to this database."""
        if self.store is None:
            raise ReproError(
                "a sharded database has no single engine; use the facade "
                "methods (search/nearest/query) or open without shards"
            )
        if self._engine is None:
            with self._wiring_lock:
                if self._engine is None:
                    self._engine = NearestConceptEngine(
                        self.store,
                        case_sensitive=self.case_sensitive,
                        backend=self.backend_name,
                        cache=self.result_cache,
                    )
        return self._engine

    @property
    def processor(self) -> QueryProcessor:
        """The query-language tier, sharing this database's wiring."""
        if self.store is None:
            raise ReproError(
                "a sharded database has no single query processor; use "
                "db.query(...) or open without shards"
            )
        if self._processor is None:
            with self._wiring_lock:
                if self._processor is None:
                    self._processor = QueryProcessor(
                        self.store,
                        search=SearchEngine(
                            self.store, case_sensitive=self.case_sensitive
                        ),
                        max_rows=self.options.max_rows,
                        backend=self.backend_name,
                        cache=self.result_cache,
                        value_indexes=tuple(self._value_indexes or ()),
                    )
        return self._processor

    def warm_up(self) -> None:
        """Force every derived index to exist before traffic arrives.

        Touching the full-text index and (on the indexed backend) the
        LCA index through their generation-keyed caches here is what
        lets a multi-threaded server guarantee zero index rebuilds
        once it starts answering.  A sharded database pings every
        shard instead — same effect per shard store, and it spins the
        worker pool up before the first request.
        """
        with self._rw.read():
            if self.sharded is not None:
                self.sharded.warm_up()
                return
            _ = self.engine.index
            backend = self.engine.backend
            # The vector backend additionally binds its NumPy column
            # views here, so the first query pays no view setup.
            _ = getattr(backend, "kernels", None)
            _ = self.processor.search.index

    # -- introspection --------------------------------------------------
    @property
    def generation(self):
        if self.sharded is not None:
            return self.sharded.generations
        return self.store.generation

    @property
    def node_count(self) -> int:
        if self.sharded is not None:
            return self.sharded.node_count
        return self.store.node_count

    def cache_info(self):
        """Result-cache counters, or ``None`` when caching is off."""
        if self.result_cache is None:
            return None
        return self.result_cache.cache_info()

    def metrics(self) -> List[object]:
        """The typed metric objects this database owns (cache, executor
        and planner counters), for registration in a server's
        :class:`~repro.obs.metrics.MetricsRegistry`."""
        objects: List[object] = []
        if self.result_cache is not None:
            objects.extend(self.result_cache.metric_objects())
        if self.sharded is not None:
            collect = getattr(
                self.sharded.executor, "metric_objects", None
            )
            if callable(collect):
                objects.extend(collect())
        objects.extend(self._planner_metric_objects())
        return objects

    def _planner_metric_objects(self) -> List[object]:
        """Prepared-statement and plan-cache metrics (built once)."""
        if self._metric_objects is None:
            statements = Gauge(
                "repro_prepared_statements",
                "Prepared statements currently held by the collection.",
            ).set_function(lambda: float(len(self._prepared)))
            hits = Gauge(
                "repro_planner_plan_cache_hits",
                "Prepared-plan cache hits (plan reused across executions).",
            ).set_function(lambda: float(self.plan_cache_info()["hits"]))
            misses = Gauge(
                "repro_planner_plan_cache_misses",
                "Prepared-plan cache misses (plan computed).",
            ).set_function(lambda: float(self.plan_cache_info()["misses"]))
            tier = CallbackGauge(
                "repro_kernel_tier_info",
                "Active batch-kernel tier (info-style: the labelled "
                "sample with value 1 names the tier in use).",
                ("tier",),
                lambda: [
                    ({"tier": kernels.active_tier(self.backend_name)}, 1.0)
                ],
            )
            self._metric_objects = [
                statements,
                self._prepared_executions,
                hits,
                misses,
                tier,
            ]
        return self._metric_objects

    def plan_cache_info(self) -> Dict[str, int]:
        """Prepared-plan cache counters, summed across the execution tree.

        Monolithic opens read the query processor's cache; in-process
        sharded opens sum over the shard services' template memos.
        Out-of-process executors keep their memos worker-side and
        report zeros here.
        """
        totals = {"hits": 0, "misses": 0, "currsize": 0}
        processor = self._processor
        if processor is not None:
            info = processor.plan_cache_info()
            for field in totals:
                totals[field] += info[field]
        if self.sharded is not None:
            services = getattr(self.sharded.executor, "services", None)
            if services:
                for service in services:
                    plans = getattr(service, "_plans", None)
                    if plans is not None:
                        totals["hits"] += service._plan_hits
                        totals["misses"] += service._plan_misses
                        totals["currsize"] += len(plans)
        return totals

    def to_xml(self, oid: int, indent: int = 2) -> str:
        """Serialize one answer subtree, whichever execution layer."""
        with self._rw.read():
            if self.sharded is not None:
                return self.sharded.to_xml(oid, indent=indent)
            return self.engine.to_xml(oid, indent=indent)

    def describe(self) -> Dict[str, object]:
        """Static collection metadata (the ``/v1/collections`` row)."""
        meta: Dict[str, object] = {
            "origin": self.origin,
            "source": self.source,
            "node_count": self.node_count,
            "backend": self.backend_name,
            "kernel_tier": kernels.active_tier(self.backend_name),
            "case_sensitive": self.case_sensitive,
        }
        if self._value_indexes:
            meta["value_indexes"] = list(self._value_indexes)
        if self.sharded is not None:
            plan = self.sharded.plan
            meta["path_count"] = plan.path_count
            meta["shards"] = {
                "count": plan.shard_count,
                "executor": self.sharded.executor.name,
                "starts": list(plan.starts),
                "ends": list(plan.ends),
            }
        else:
            meta["path_count"] = len(self.store.summary) - 1
        if self.snapshot is not None:
            meta["snapshot"] = {
                "vocabulary_size": self.snapshot.fulltext_index.vocabulary_size,
                "tour_length": self.snapshot.lca_index.tour_length,
            }
        return meta

    def stats(self) -> Dict[str, object]:
        """Live serving statistics (the ``/v1/stats`` row).

        Index-build counters are process-wide, not per-store, so they
        live one level up — :meth:`ReproServer.stats` reports them
        once for the whole process (merging in worker-pool counters
        for sharded collections).
        """
        stats: Dict[str, object] = {
            "origin": self.origin,
            "backend": self.backend_name,
            "kernel_tier": kernels.active_tier(self.backend_name),
            "case_sensitive": self.case_sensitive,
            "generation": self.generation,
            "node_count": self.node_count,
            "load_ms": round(self.load_seconds * 1000, 3),
            "cache": _cache_info_dict(self.cache_info()),
        }
        base = self._base_store if self._base_store is not None else self.store
        if base is not None:
            stats["writes"] = {
                "mutations": self._mutations,
                "documents": len(base.documents),
                "live_nodes": base.live_node_count,
                "dead_fraction": round(base.dead_fraction, 4),
                "pending_deltas": self._pending_deltas,
            }
        if self.sharded is not None:
            stats["executor"] = self.sharded.executor.stats()
        return stats

    def health(self) -> Dict[str, object]:
        """Readiness of this collection (the ``/readyz`` row).

        Monolithic and serial-sharded databases are ready whenever
        the process is alive; executor-backed ones delegate, so a
        replicated cluster reports ``degraded`` (last healthy replica
        on some shard) or ``unavailable`` (a shard with none left).
        """
        if self.sharded is not None:
            executor = self.sharded.executor
            health_fn = getattr(executor, "health", None)
            if callable(health_fn):
                return health_fn()
            return {"status": "ok", "shards": []}  # pragma: no cover
        return {"status": "ok", "shards": []}

    def _envelope_stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = {
            "origin": self.origin,
            "backend": self.backend_name,
            "case_sensitive": self.case_sensitive,
            "generation": self.generation,
            "cache": _cache_info_dict(self.cache_info()),
        }
        if self.sharded is not None:
            stats["shards"] = self.sharded.last_shard_stats()
        return stats

    # -- the three query surfaces ----------------------------------------
    def search(self, request: Union[str, SearchRequest]) -> ResultEnvelope:
        """Raw full-text hits for one term, as an envelope."""
        if isinstance(request, str):
            request = SearchRequest(term=request)
        started = time.perf_counter()
        with self._rw.read():
            if self.sharded is not None:
                rows = self.sharded.term_hit_rows(request.term)
                if request.limit is not None:
                    rows = rows[: request.limit]
                summary = self.sharded.summary
                answers = tuple(
                    {
                        "oid": oid,
                        "tag": summary.label(pid),
                        "path": str(summary.path(pid)),
                    }
                    for oid, pid in rows
                )
            else:
                hits = self.engine.term_hits(request.term)
                oids = sorted(hits.oids())
                if request.limit is not None:
                    oids = oids[: request.limit]
                store = self.store
                answers = tuple(
                    {
                        "oid": oid,
                        "tag": store.summary.label(store.pid_of(oid)),
                        "path": str(store.path_of(oid)),
                    }
                    for oid in oids
                )
        elapsed = time.perf_counter() - started
        return ResultEnvelope(
            kind=SearchRequest.kind,
            request=request.to_dict(),
            answers=answers,
            count=len(answers),
            elapsed_ms=round(elapsed * 1000, 3),
            stats=self._envelope_stats(),
        )

    def nearest(
        self, request: Union[NearestRequest, str], *terms: str, **options
    ) -> ResultEnvelope:
        """Ranked nearest concepts; answers carry the full §4 key.

        Accepts either a ready :class:`NearestRequest` or the terms
        inline — ``db.nearest("Bit", "1999", limit=5)``.
        """
        if isinstance(request, str):
            request = NearestRequest(terms=(request, *terms), **options)
        elif terms or options:
            raise TypeError(
                "pass either a NearestRequest or inline terms, not both"
            )
        started = time.perf_counter()
        with self._rw.read():
            surface = self.sharded if self.sharded is not None else self.engine
            concepts = surface.nearest_concepts(
                *request.terms,
                exclude_root=request.exclude_root,
                require_all_terms=request.require_all_terms,
                within=request.within,
                limit=request.limit,
            )
            snippets: Dict[int, str] = {}
            if request.snippets and self.sharded is not None:
                snippets = self.sharded.snippets(
                    [concept.oid for concept in concepts]
                )
            answers: List[Dict[str, object]] = []
            for concept in concepts:
                answer: Dict[str, object] = {
                    "oid": concept.oid,
                    "tag": concept.tag,
                    "path": str(concept.path),
                    "joins": concept.joins,
                    "spread": concept.spread,
                    "depth": concept.depth,
                    "origins": list(concept.origins),
                    "terms": list(concept.terms),
                }
                if request.snippets:
                    answer["snippet"] = (
                        snippets[concept.oid]
                        if self.sharded is not None
                        else self.engine.snippet(concept)
                    )
                answers.append(answer)
        elapsed = time.perf_counter() - started
        return ResultEnvelope(
            kind=NearestRequest.kind,
            request=request.to_dict(),
            answers=tuple(answers),
            count=len(answers),
            elapsed_ms=round(elapsed * 1000, 3),
            stats=self._envelope_stats(),
        )

    def query(self, request: Union[str, QueryRequest]) -> ResultEnvelope:
        """Execute (or explain) a select/from/where query."""
        if isinstance(request, str):
            request = QueryRequest(text=request)
        started = time.perf_counter()
        with self._rw.read():
            if request.explain:
                rendered = self._explain_impl(request.text)
                elapsed = time.perf_counter() - started
                return ResultEnvelope(
                    kind=QueryRequest.kind,
                    request=request.to_dict(),
                    columns=(),
                    rows=(),
                    rendered=rendered,
                    count=0,
                    elapsed_ms=round(elapsed * 1000, 3),
                    stats=self._envelope_stats(),
                )
            if self.sharded is not None:
                result: QueryResult = self.sharded.execute(
                    request.text, bindings=request.params
                )
            else:
                result = self.processor.execute(
                    request.text, bindings=request.params
                )
            rendered = self._render_answer(result) if request.render else None
        elapsed = time.perf_counter() - started
        table = result.to_dict()
        stats = self._envelope_stats()
        if result.plan is not None:
            stats["plan"] = result.plan
        return ResultEnvelope(
            kind=QueryRequest.kind,
            request=request.to_dict(),
            columns=tuple(table["columns"]),
            rows=tuple(tuple(row) for row in table["rows"]),
            rendered=rendered,
            count=table["row_count"],
            elapsed_ms=round(elapsed * 1000, 3),
            stats=stats,
        )

    def _render_answer(self, result: QueryResult) -> str:
        if self.sharded is not None:
            in_range = [
                cell
                for row in result.rows
                for cell in row
                if isinstance(cell, int)
                and self.sharded.plan.root_oid
                <= cell
                < self.sharded.plan.ends[-1]
            ]
            return result.render_answer(
                _SummaryRenderStore(
                    self.sharded, self.sharded.pids_of(set(in_range))
                )
            )
        return result.render_answer(self.store)

    def explain(self, text: str) -> str:
        """The query plan, as the processor renders it."""
        with self._rw.read():
            return self._explain_impl(text)

    def _explain_impl(self, text: str) -> str:
        if self.sharded is not None:
            return self.sharded.explain(text)
        return self.processor.explain(text)

    # -- prepared statements ----------------------------------------------
    def prepare(
        self, request: Union[str, PrepareRequest]
    ) -> Dict[str, object]:
        """Parse and register a parameterized query; returns its handle.

        The handle is a deterministic digest of the normalized text, so
        re-preparing the same statement is idempotent and clients can
        share handles.  Executions bind ``$name`` parameters per call
        (:meth:`execute`); the schema half of the plan is computed once
        per store generation and reused across executions.
        """
        if isinstance(request, str):
            request = PrepareRequest(text=request)
        text = request.text.strip()
        template = parse_query(text)  # surfaces syntax errors now
        handle = "q" + hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
        with self._prepared_lock:
            self._prepared[handle] = (text, template)
        return {
            "op": "prepare",
            "handle": handle,
            "text": text,
            "parameters": sorted(template.parameters),
        }

    def execute(
        self,
        request: Union[str, ExecuteRequest],
        params: Optional[Dict[str, str]] = None,
        render: bool = False,
    ) -> ResultEnvelope:
        """Execute a prepared statement with per-call parameter bindings.

        Answers are byte-identical to :meth:`query` over the same text
        with the same bindings — only the parse/plan work is amortized.
        """
        if isinstance(request, str):
            request = ExecuteRequest(
                handle=request, params=params, render=render
            )
        elif params is not None or render:
            raise TypeError(
                "pass either an ExecuteRequest or a handle with inline "
                "params, not both"
            )
        entry = self._prepared.get(request.handle)
        if entry is None:
            raise QueryPlanError(
                f"unknown prepared-statement handle {request.handle!r}; "
                "prepare the statement first"
            )
        text, template = entry
        started = time.perf_counter()
        with self._rw.read():
            if self.sharded is not None:
                result: QueryResult = self.sharded.execute(
                    text, bindings=request.params
                )
            else:
                result = self.processor.execute_template(
                    template, text=text, bindings=request.params
                )
            rendered = self._render_answer(result) if request.render else None
        self._prepared_executions.inc()
        elapsed = time.perf_counter() - started
        table = result.to_dict()
        stats = self._envelope_stats()
        if result.plan is not None:
            stats["plan"] = result.plan
        stats["plan_cache"] = self.plan_cache_info()
        return ResultEnvelope(
            kind=ExecuteRequest.kind,
            request=request.to_dict(),
            columns=tuple(table["columns"]),
            rows=tuple(tuple(row) for row in table["rows"]),
            rendered=rendered,
            count=table["row_count"],
            elapsed_ms=round(elapsed * 1000, 3),
            stats=stats,
        )

    # -- the live write path ---------------------------------------------
    def put(self, name: str, xml: str) -> Dict[str, object]:
        """Add ``xml`` as a new named document; rejects duplicates."""
        return self._mutate("put", name, xml)

    def delete(self, name: str) -> Dict[str, object]:
        """Tombstone the named document's OID range."""
        return self._mutate("delete", name, None)

    def replace(self, name: str, xml: str) -> Dict[str, object]:
        """Upsert: delete ``name`` if present, then put ``xml`` under it."""
        return self._mutate("replace", name, xml)

    def documents(self) -> Dict[str, List[int]]:
        """The live registry: document name → ``[first OID, last OID]``.

        Takes the write side because the first call on a freshly
        opened pre-registry store seeds the seed-NNNN names.
        """
        with self._rw.write():
            store = self._writable_store()
            return {
                name: list(span)
                for name, span in sorted(
                    ensure_document_registry(store).items()
                )
            }

    def _writable_store(self) -> MonetXML:
        if self._base_store is not None:
            return self._base_store
        if self.store is not None:
            return self.store
        raise ReproError(
            "this database serves read-only shard bundles; live writes "
            "need a monolithic open or in-process shards (workers=0)"
        )

    def _mutate(self, op: str, name: str, xml: Optional[str]) -> Dict[str, object]:
        with self._rw.write():
            store = self._writable_store()
            registry = ensure_document_registry(store)
            # Everything that can reject the mutation is checked before
            # the durable append: a delta must never record an
            # operation the in-memory apply then refuses.
            if op == "put" and name in registry:
                raise DuplicateDocumentError(name)
            if op == "delete" and name not in registry:
                raise UnknownDocumentError(name)
            if xml is not None:
                parse_fragment(xml)
            self._write_through(DeltaOp(op, name, xml))
            if op == "put":
                records = [put_document(store, name, xml)]
            elif op == "delete":
                records = [delete_document(store, name)]
            else:
                records = replace_document(store, name, xml)
            if self.sharded is not None:
                self._reshard_locked()
            self._mutations += 1
            current = self._writable_store()
            span = (
                list(current.documents[name])
                if name in current.documents
                # A delete's span is the tombstoned range, pre-compaction.
                else list(records[-1].span)
            )
            return {
                "op": op,
                "name": name,
                "span": span,
                "generation": self.generation,
                "documents": len(current.documents),
                "live_nodes": current.live_node_count,
                "dead_fraction": round(current.dead_fraction, 4),
            }

    def compact(self) -> Dict[str, object]:
        """Renumber live nodes densely; fold the bundle's delta tail.

        In memory, tombstoned slots are reclaimed and OIDs return to
        exactly what a rebuild from the surviving documents would
        assign.  Snapshot-backed databases also rewrite their bundle —
        catalog collections through the catalog's crash-safe
        temp-write → rename → manifest-flip (the previous generation
        keeps serving until the flip), direct ``.snap`` files through
        an atomic replace — which drops the accumulated delta
        sections.
        """
        with self._rw.write():
            store = self._writable_store()
            before = store.node_count
            if self.sharded is not None:
                self._reshard_locked()
                store = self._base_store
            else:
                compacted, mapping = compact_store(store)
                if mapping is not None:
                    self.store = compacted
                    self.snapshot = None  # its store/indexes are stale now
                    with self._wiring_lock:
                        self._engine = None
                        self._processor = None
                store = compacted
            self._rewrite_bundle(store)
            return {
                "op": "compact",
                "node_count": store.node_count,
                "reclaimed": before - store.node_count,
                "documents": len(ensure_document_registry(store)),
                "generation": self.generation,
            }

    def _write_through(self, op: DeltaOp) -> None:
        """Durably journal one mutation before it applies in memory.

        A crash after the append replays the delta on the next open; a
        crash *during* it leaves a torn tail that tolerant readers drop
        — either way the bundle holds exactly the acknowledged prefix.
        """
        if self._delta_path is None:
            return
        if self._mutable_catalog is not None:
            # Drop the source fingerprint *before* the delta lands: a
            # crash between the two must never leave a mutated bundle
            # that find_source still serves as fresh for its source
            # file.  The reverse loss (fingerprint gone, delta never
            # written) only costs a warm-start preference.
            from ..snapshot import Catalog

            root, name = self._mutable_catalog
            try:
                Catalog(root, create=False).note_mutation(name)
            except StorageError:
                pass  # manifest gone mid-serve; writes stay in-memory-safe
        append_delta(self._delta_path, op)
        self._pending_deltas += 1

    def _reshard_locked(self) -> None:
        """Rebuild the in-process shard fabric over the mutated base.

        Shard plans slice contiguous OID ranges, so the base store is
        first compacted back to dense pre-order; the new
        :class:`ShardedCollection` reuses this database's result cache,
        whose layout-fingerprint + generation key drops stale entries
        by itself.
        """
        base, _ = compact_store(self._base_store)
        self._base_store = base
        plan = compute_shard_plan(base, self.sharded.plan.shard_count)
        slices = slice_store(base, plan)
        executor = SerialExecutor(
            [
                ShardService(
                    shard,
                    shard_id=index,
                    case_sensitive=self.case_sensitive,
                    backend=self.backend_name,
                )
                for index, shard in enumerate(slices)
            ]
        )
        previous = self.sharded
        self.sharded = ShardedCollection(
            plan,
            base.summary,
            executor,
            case_sensitive=self.case_sensitive,
            backend_name=self.backend_name,
            generations=tuple(shard.generation for shard in slices),
            cache=self.result_cache,
            max_rows=self.options.max_rows,
        )
        previous.executor.close()

    def _rewrite_bundle(self, store: MonetXML) -> None:
        if self._delta_path is None or not self._pending_deltas:
            return
        if self._mutable_catalog is not None:
            from ..snapshot import Catalog

            root, name = self._mutable_catalog
            Catalog(root).build(
                name,
                store,
                case_sensitive=self.case_sensitive,
                value_indexes=self._value_indexes,
            )
        else:
            temp = self._delta_path.with_suffix(".snap.tmp")
            try:
                write_snapshot(
                    store,
                    temp,
                    case_sensitive=self.case_sensitive,
                    value_indexes=self._value_indexes,
                )
                temp.replace(self._delta_path)
            except BaseException:
                temp.unlink(missing_ok=True)
                raise
        self._pending_deltas = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = (
            f"shards={self.sharded.shard_count}"
            if self.sharded is not None
            else "monolithic"
        )
        return (
            f"<Database nodes={self.node_count} origin={self.origin!r} "
            f"backend={self.backend_name!r} {mode}>"
        )


class _SummaryRenderStore:
    """Just enough store surface for ``QueryResult.render_answer``.

    The renderer needs OID membership, ``pid_of`` and summary labels;
    the pid map is pre-fetched in one scatter, and membership mirrors
    the monolithic store's range test (so a non-OID integer cell that
    happens to land in range renders the same either way).
    """

    def __init__(self, sharded: ShardedCollection, pid_map: Dict[int, int]):
        self.summary = sharded.summary
        self._pid_map = pid_map

    def __contains__(self, oid: object) -> bool:
        return isinstance(oid, int) and oid in self._pid_map

    def pid_of(self, oid: int) -> int:
        return self._pid_map[oid]


def open_database(
    source: Optional[SourceLike] = None,
    *,
    options: Optional[DatabaseOptions] = None,
    snapshot: Optional[SourceLike] = None,
    **overrides,
) -> Database:
    """Module-level spelling of :meth:`Database.open` (``repro.open``)."""
    return Database.open(
        source, options=options, snapshot=snapshot, **overrides
    )
