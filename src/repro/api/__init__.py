"""repro.api — the one front door to the engine.

Three tiers, outermost first:

* :class:`Database` / :func:`open` — resolve *any* supported source
  (XML file, legacy ``.json`` Monet image, ``.snap`` snapshot bundle,
  catalog collection) behind one call and query it through typed
  request/response envelopes.
* :mod:`repro.api.server` — an embedded HTTP/JSON service
  (:class:`~repro.api.server.ReproServer`) exposing the same envelopes
  over ``POST /v1/search|/v1/nearest|/v1/query`` plus
  ``GET /v1/collections|/v1/stats|/healthz``; the CLI spelling is
  ``repro serve``.
* The documented low-level tier stays importable —
  ``db.engine`` is a :class:`~repro.core.engine.NearestConceptEngine`
  and ``db.processor`` a :class:`~repro.query.executor.QueryProcessor`
  — for callers who want the operators without the envelopes.
"""

from .database import Database, open_database
from .envelopes import (
    ENVELOPE_FORMAT,
    ENVELOPE_VERSION,
    CompactRequest,
    DeleteDocumentRequest,
    EnvelopeError,
    NearestRequest,
    PutDocumentRequest,
    QueryRequest,
    Request,
    ResultEnvelope,
    SearchRequest,
    request_from_dict,
)
from .options import DatabaseOptions
from .resolve import (
    DEFAULT_CATALOG,
    ResolvedSource,
    default_catalog_dir,
    resolve_source,
)
from .server import ReproServer

#: ``repro.api.open`` — and, re-exported, ``repro.open``: the
#: Quick-Start spelling of :meth:`Database.open`.
open = open_database

__all__ = [
    "CompactRequest",
    "DEFAULT_CATALOG",
    "Database",
    "DatabaseOptions",
    "DeleteDocumentRequest",
    "ENVELOPE_FORMAT",
    "ENVELOPE_VERSION",
    "EnvelopeError",
    "NearestRequest",
    "PutDocumentRequest",
    "QueryRequest",
    "ReproServer",
    "Request",
    "ResolvedSource",
    "ResultEnvelope",
    "SearchRequest",
    "default_catalog_dir",
    "open",
    "open_database",
    "request_from_dict",
    "resolve_source",
]
