"""Admission control for the front door: bounded queueing, shedding.

A server without admission control has an unbounded implicit queue
(every accepted connection parks a thread) and, under overload, serves
*every* request late instead of *some* requests on time.  The
:class:`AdmissionController` makes the queue explicit and bounded:

* up to ``max_concurrency`` requests run at once;
* up to ``max_queue`` more wait, each at most ``queue_timeout``
  seconds (never past its own request deadline);
* everything beyond that is **shed immediately** with
  :class:`OverloadedError` (``code="overloaded"``, retryable), which
  the server maps to ``503`` + ``Retry-After`` — the honest answer,
  because a request that would wait longer than its deadline is
  already lost and queueing it just steals capacity from the rest.

The controller also keeps the latency ring (:class:`LatencyWindow`)
behind the ``/v1/stats`` percentiles, so saturation is visible before
it becomes shedding.  Its counters are typed metric objects
(:mod:`repro.obs.metrics`) shared between the ``/v1/stats`` snapshot
and the Prometheus exposition at ``/v1/metrics``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional

from ..datamodel.errors import ReproError
from ..exec.deadline import Deadline
from ..obs.metrics import Counter, Gauge

__all__ = ["AdmissionController", "LatencyWindow", "OverloadedError"]


class OverloadedError(ReproError):
    """The server shed this request to protect the ones in flight."""

    code = "overloaded"
    retryable = True

    def __init__(self, message: str, retry_after: float = 1.0):
        self.retry_after = max(retry_after, 0.0)
        super().__init__(message)


class LatencyWindow:
    """Percentiles over the last ``size`` request latencies.

    A bounded ring, not a histogram: at the window sizes that matter
    here (hundreds), sorting on read is cheaper than maintaining
    buckets, and the percentiles are exact.
    """

    def __init__(self, size: int = 512):
        self._samples: deque = deque(maxlen=size)
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)

    def percentiles(self) -> Dict[str, object]:
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return {"count": 0, "p50_ms": None, "p95_ms": None, "p99_ms": None}

        def at(q: float) -> float:
            index = min(len(samples) - 1, int(q * len(samples)))
            return round(samples[index] * 1000, 3)

        return {
            "count": len(samples),
            "p50_ms": at(0.50),
            "p95_ms": at(0.95),
            "p99_ms": at(0.99),
        }


class AdmissionController:
    """Bounded concurrency + bounded queue + load shedding."""

    def __init__(
        self,
        *,
        max_concurrency: int = 8,
        max_queue: int = 16,
        queue_timeout: float = 2.0,
        latency_window: int = 512,
    ):
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_concurrency = int(max_concurrency)
        self.max_queue = int(max_queue)
        self.queue_timeout = float(queue_timeout)
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self._in_flight = 0
        self._queued = 0
        self._admitted = Counter(
            "repro_admission_admitted_total",
            "Requests that received an execution slot.",
        )
        self._shed = Counter(
            "repro_admission_shed_total",
            "Requests shed by admission control (queue full or timed out).",
        )
        self._timed_out = Counter(
            "repro_admission_queue_timeouts_total",
            "Requests that gave up waiting in the admission queue.",
        )
        self._in_flight_gauge = Gauge(
            "repro_admission_in_flight", "Requests currently executing."
        )
        self._in_flight_gauge.set_function(lambda: self._in_flight)
        self._queued_gauge = Gauge(
            "repro_admission_queued",
            "Requests waiting in the admission queue.",
        )
        self._queued_gauge.set_function(lambda: self._queued)
        self.latency = LatencyWindow(latency_window)

    # -- admission -------------------------------------------------------
    def admit(self, deadline: Optional[Deadline] = None) -> float:
        """Block until a slot frees, or shed.

        Returns the time spent waiting for a slot, in seconds (0.0 for
        an immediate admit) — the server turns this into the
        ``admission.wait`` trace span.  Raises :class:`OverloadedError`
        when the queue is full, or when this request's wait exceeds
        ``queue_timeout`` / its deadline — whichever budget is tighter.
        """
        wait_budget = self.queue_timeout
        if deadline is not None:
            wait_budget = min(wait_budget, deadline.remaining())
        entered = time.monotonic()
        give_up_at = entered + wait_budget
        with self._slot_freed:
            if self._in_flight < self.max_concurrency:
                self._in_flight += 1
                self._admitted.inc()
                return 0.0
            if self._queued >= self.max_queue:
                self._shed.inc()
                raise OverloadedError(
                    f"request queue is full "
                    f"({self._in_flight} in flight, {self._queued} queued)",
                    retry_after=self._retry_after_locked(),
                )
            self._queued += 1
            try:
                while self._in_flight >= self.max_concurrency:
                    remaining = give_up_at - time.monotonic()
                    if remaining <= 0 or not self._slot_freed.wait(remaining):
                        if time.monotonic() >= give_up_at:
                            self._timed_out.inc()
                            self._shed.inc()
                            raise OverloadedError(
                                "request waited too long in the "
                                "admission queue",
                                retry_after=self._retry_after_locked(),
                            )
                self._in_flight += 1
                self._admitted.inc()
            finally:
                self._queued -= 1
        return time.monotonic() - entered

    def release(self, latency_seconds: Optional[float] = None) -> None:
        if latency_seconds is not None:
            self.latency.record(latency_seconds)
        with self._slot_freed:
            self._in_flight -= 1
            self._slot_freed.notify()

    def _retry_after_locked(self) -> float:
        """A Retry-After hint scaled to the backlog (at least 1s)."""
        backlog = self._in_flight + self._queued
        return max(1.0, round(backlog * 0.1, 1))

    # -- observability ---------------------------------------------------
    def metric_objects(self) -> List[object]:
        """The typed metrics backing this controller's counters."""
        return [
            self._admitted,
            self._shed,
            self._timed_out,
            self._in_flight_gauge,
            self._queued_gauge,
        ]

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            counters = {
                "in_flight": self._in_flight,
                "queued": self._queued,
                "max_concurrency": self.max_concurrency,
                "max_queue": self.max_queue,
                "admitted": self._admitted.value,
                "shed": self._shed.value,
                "queue_timeouts": self._timed_out.value,
            }
        counters["latency"] = self.latency.percentiles()
        return counters
