"""Frozen configuration for the :class:`~repro.api.database.Database`.

Before the facade existed, engine knobs travelled as loose keyword
arguments through four constructors (``NearestConceptEngine``,
``QueryProcessor``, ``SearchEngine``, the CLI argument plumbing), and
every caller had to re-derive the snapshot-serving defaults by hand.
:class:`DatabaseOptions` is the one immutable bag for all of them:

* ``backend`` / ``case_sensitive`` default to ``None`` = "follow the
  source" — an opened snapshot bundle supplies ``indexed`` (its LCA
  index is already loaded) and the bundle's case mode, anything else
  falls back to ``steered`` and case-insensitive, exactly the CLI's
  historical behaviour;
* ``cache`` is the serving-layer result cache spec (off, a capacity,
  ``True`` for the default capacity, or a shared
  :class:`~repro.core.result_cache.ResultCache` instance);
* ``catalog`` names the snapshot catalog directory consulted during
  source resolution (``None`` = ``$REPRO_CATALOG`` or
  ``.repro-catalog``);
* ``mmap`` maps snapshot bundles instead of copying them into memory;
* ``max_rows`` bounds enumeration-mode query results;
* ``shards`` partitions the collection into N independent shards
  (:mod:`repro.exec.sharding`) — answers stay byte-identical, work
  becomes scatter-gather.  ``None`` follows the source: a sharded
  catalog collection opens sharded, everything else monolithic;
* ``workers`` > 0 serves shard work from a process pool
  (:class:`repro.exec.executors.ParallelExecutor`) instead of
  in-process — true multi-core query serving.  Implies sharding
  (``shards`` defaults to ``workers`` when unset);
* ``replicas`` > 0 serves each shard from that many **socket worker
  processes** with health-checked failover
  (:class:`repro.exec.cluster.ClusterExecutor`) — the database spawns
  and supervises them.  Implies sharding like ``workers``;
* ``cluster`` points at *already-running* shard workers instead: a
  tuple of per-shard address tuples, e.g.
  ``((("127.0.0.1", 9101), ("127.0.0.1", 9201)), ...)`` — shard ``i``
  is served by the ``i``-th group, failing over inside it.

``workers``, ``replicas`` and ``cluster`` are mutually exclusive —
each names a different executor.

Being frozen, an options object can be shared between databases and
threads without defensive copies; derive variants with
:meth:`DatabaseOptions.replace`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path as FsPath
from typing import Optional, Union

from ..core.backends import BACKEND_NAMES
from ..core.result_cache import CacheSpec

__all__ = ["DatabaseOptions"]


@dataclass(frozen=True, slots=True)
class DatabaseOptions:
    """Immutable configuration shared by every facade entry point."""

    backend: Optional[str] = None
    case_sensitive: Optional[bool] = None
    cache: CacheSpec = None
    catalog: Optional[Union[str, FsPath]] = None
    mmap: bool = False
    max_rows: Optional[int] = 100_000
    shards: Optional[int] = None
    workers: int = 0
    replicas: int = 0
    cluster: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.backend is not None and self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}: "
                f"choose from {sorted(BACKEND_NAMES)}"
            )
        if self.shards is not None and self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {self.replicas}")
        chosen = [
            name
            for name, active in (
                ("workers", self.workers > 0),
                ("replicas", self.replicas > 0),
                ("cluster", self.cluster is not None),
            )
            if active
        ]
        if len(chosen) > 1:
            raise ValueError(
                f"{' and '.join(chosen)} are mutually exclusive: "
                f"each selects a different executor"
            )
        if self.cluster is not None:
            if not self.cluster:
                raise ValueError("cluster needs at least one shard group")
            for shard_id, group in enumerate(self.cluster):
                if not group:
                    raise ValueError(
                        f"cluster shard {shard_id} has no worker addresses"
                    )
            if self.shards is not None and self.shards != len(self.cluster):
                raise ValueError(
                    f"shards={self.shards} disagrees with the cluster "
                    f"map's {len(self.cluster)} shard groups"
                )

    @property
    def effective_shards(self) -> Optional[int]:
        """The shard count actually requested.

        ``workers``/``replicas`` imply sharding; a ``cluster`` map
        fixes the count to its number of shard groups.
        """
        if self.cluster is not None:
            return len(self.cluster)
        if self.shards is not None:
            return self.shards
        if self.workers > 0:
            return self.workers
        if self.replicas > 0:
            # Replicas are per shard; without an explicit shard count
            # a replicated single shard is still a meaningful cluster.
            return 1
        return None

    def replace(self, **overrides) -> "DatabaseOptions":
        """A copy with the given fields replaced (validation re-runs)."""
        return dataclasses.replace(self, **overrides)

    def effective(self, snapshot) -> tuple:
        """``(case_sensitive, backend)`` honouring snapshot defaults.

        ``None`` means "not chosen": serving from a snapshot bundle
        then inherits the bundle's case mode and the fastest backend
        that consumes the bundle's seeded LCA index without a rebuild
        — ``vector`` when the NumPy kernels are importable, else
        ``indexed`` — keeping the warm start rebuild-free.
        """
        case_sensitive = self.case_sensitive
        backend = self.backend
        if snapshot is not None:
            if case_sensitive is None:
                case_sensitive = snapshot.fulltext_index.case_sensitive
            if backend is None:
                from ..core.backends import snapshot_default_backend

                backend = snapshot_default_backend()
        return bool(case_sensitive), backend or "steered"
