"""An embedded HTTP/JSON service over one or more ``Database``\\ s.

Pure stdlib (:class:`http.server.ThreadingHTTPServer`) — the whole
repo stays dependency-free — yet safe for concurrent readers: stores,
path summaries and the generation-keyed indexes are immutable once
built (:meth:`ReproServer.serve_forever` warm-ups every database
before accepting traffic, so no thread ever triggers an index build),
and the one mutable structure, the shared
:class:`~repro.core.result_cache.ResultCache`, locks internally.

Endpoints (all JSON)::

    POST   /v1/search       SearchRequest        → ResultEnvelope
    POST   /v1/nearest      NearestRequest       → ResultEnvelope
    POST   /v1/query        QueryRequest         → ResultEnvelope
    POST   /v1/prepare      PrepareRequest       → prepared-statement handle
    POST   /v1/execute      ExecuteRequest       → ResultEnvelope
    PUT    /v1/documents    PutDocumentRequest   → mutation receipt
    DELETE /v1/documents    DeleteDocumentRequest → mutation receipt
    GET    /v1/documents    name → [low, high] OID spans per document
    POST   /v1/compact      CompactRequest       → compaction receipt
    GET    /v1/collections  collection metadata (Database.describe)
    GET    /v1/stats        live serving stats + admission/latency
    GET    /v1/metrics      Prometheus text exposition (version 0.0.4)
    GET    /healthz         liveness: the process is up
    GET    /readyz          readiness: per-shard replica health
                            (200 ok/degraded, 503 unavailable)

A request body may name a ``"collection"``; with one collection the
field is optional.  Sending ``X-Repro-Trace: 1`` opts a request into
span collection: the response's ``stats["trace"]`` then carries the
named spans (``admission.wait``, ``parse``, ``plan``,
``shard.scatter``, ``shard[i].<op>`` — produced inside the worker
process — ``merge``, ``serialize``), and every response carries its
``X-Repro-Trace-Id`` header so errors join against the access log.  Errors come back as ``{"error": ..., "status": N,
"code": ..., "retryable": ...}`` — the ``code`` is a stable
machine-readable string (``overloaded``, ``shard_unavailable``,
``deadline_exceeded``, ``query_error``, ...) — with 400 (malformed
request / query error), 404 (unknown route, collection or document),
409 (duplicate document on put), 413 (oversized body), 503 (shed or
no healthy replica, with ``Retry-After``), 504 (deadline exceeded) or
500.  Writes serialize behind each database's readers–writer lock, so
in-flight queries always see either the pre- or the post-mutation
store — never a torn state.

Every POST/PUT/DELETE passes **admission control** (bounded
concurrency, bounded queue, load shedding) and may carry an
``X-Repro-Deadline-Ms`` header: the remaining budget rides down the
whole scatter-gather tree and bounds every blocking wait under it.

Programmatic use (the tests and benchmarks drive it this way)::

    server = ReproServer({"plays": db}, port=0)   # port 0: pick a free one
    with server:                                  # warm, bound, serving
        requests.post(server.url("/v1/nearest"), json={...})
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Mapping, Optional, Union
from urllib.parse import parse_qs, urlsplit

from ..datamodel.errors import (
    DuplicateDocumentError,
    ReproError,
    UnknownDocumentError,
)
from ..exec.deadline import Deadline, DeadlineExceededError, deadline_scope
from ..exec.executors import ExecutorError
from ..obs.logs import log_event
from ..obs.metrics import Counter, Histogram, MetricsRegistry
from ..obs.trace import Trace, new_trace_id, trace_scope
from .admission import AdmissionController, OverloadedError
from .database import Database
from .envelopes import (
    CompactRequest,
    DeleteDocumentRequest,
    EnvelopeError,
    ExecuteRequest,
    NearestRequest,
    PrepareRequest,
    PutDocumentRequest,
    QueryRequest,
    Request,
    SearchRequest,
)

__all__ = [
    "ReproServer",
    "MAX_BODY_BYTES",
    "DEADLINE_HEADER",
    "TRACE_HEADER",
    "TRACE_ID_HEADER",
]

logger = logging.getLogger("repro.serve")
access_logger = logging.getLogger("repro.serve.access")

#: Requests larger than this are refused with 413 before parsing.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Per-request deadline override, in milliseconds.  Clients state how
#: long an answer is still useful; the budget rides down the whole
#: scatter-gather tree (admission queue, executors, socket transport).
DEADLINE_HEADER = "X-Repro-Deadline-Ms"

#: Request header opting into span collection: any truthy value makes
#: the response carry ``stats["trace"]`` with the named spans.
TRACE_HEADER = "X-Repro-Trace"

#: Response header carrying the request's trace id (always present, so
#: an error report can be joined against the access log).
TRACE_ID_HEADER = "X-Repro-Trace-Id"

_POST_KINDS = {
    "/v1/search": SearchRequest,
    "/v1/nearest": NearestRequest,
    "/v1/query": QueryRequest,
    "/v1/prepare": PrepareRequest,
    "/v1/execute": ExecuteRequest,
    "/v1/compact": CompactRequest,
}

_PUT_KINDS = {"/v1/documents": PutDocumentRequest}

_DELETE_KINDS = {"/v1/documents": DeleteDocumentRequest}


class _UnknownCollection(ReproError):
    """Routing error distinguished from 400-class request errors."""


class _ReproHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the app object for its handlers."""

    daemon_threads = True
    #: The socketserver default listen backlog (5) resets connections
    #: the moment a few dozen clients connect at once — admission
    #: control never even sees them.  A deep backlog lets every burst
    #: reach the controller, which is where accept/shed is decided.
    request_queue_size = 128

    def __init__(self, address, handler, app: "ReproServer"):
        self.app = app
        super().__init__(address, handler)


class _Handler(BaseHTTPRequestHandler):
    server: _ReproHTTPServer
    protocol_version = "HTTP/1.1"
    #: The handler writes headers and body as two sends; without
    #: TCP_NODELAY, Nagle + delayed ACK stall each response by ~40 ms
    #: on loopback — dominating small-query latency.
    disable_nagle_algorithm = True

    # -- plumbing -------------------------------------------------------
    def _begin(self) -> str:
        """Per-request bookkeeping: clock, trace id, opt-in trace."""
        self._started = time.monotonic()
        self._trace_id = new_trace_id()
        raw = self.headers.get(TRACE_HEADER)
        wants_trace = raw is not None and raw.strip().lower() not in (
            "", "0", "false", "no",
        )
        self._trace = Trace(self._trace_id) if wants_trace else None
        self._queue_wait: Optional[float] = None
        self._shards: Optional[int] = None
        return urlsplit(self.path).path

    def _send_json(
        self, status: int, payload: Dict[str, object], close: bool = False
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        # Observe (metrics + access log) before the body goes out: the
        # moment the client finishes reading, the log line exists.
        self._observe(status, len(body))
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if getattr(self, "_trace_id", None) is not None:
            self.send_header(TRACE_ID_HEADER, self._trace_id)
        if close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(
        self,
        status: int,
        message: str,
        *,
        code: str = "error",
        retryable: bool = False,
        retry_after: Optional[float] = None,
    ) -> None:
        # Close the connection on every error: a request refused before
        # its body was read (413, bad Content-Length) would otherwise
        # leave those bytes on the keep-alive stream, where they would
        # be misparsed as the next request line.
        payload = {
            "error": message,
            "status": status,
            "code": code,
            "retryable": retryable,
        }
        if getattr(self, "_trace_id", None) is not None:
            payload["trace_id"] = self._trace_id
        body = json.dumps(payload).encode("utf-8")
        self._observe(status, len(body), code=code)
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if getattr(self, "_trace_id", None) is not None:
            self.send_header(TRACE_ID_HEADER, self._trace_id)
        if retry_after is not None:
            # Retry-After is an integer count of seconds; round up so
            # a sub-second hint never becomes "retry immediately".
            self.send_header("Retry-After", str(max(1, int(retry_after + 0.999))))
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_repro_error(self, status: int, exc: ReproError, **kw) -> None:
        self._send_error_json(
            status,
            str(exc),
            code=getattr(exc, "code", "error"),
            retryable=getattr(exc, "retryable", False),
            **kw,
        )

    def _observe(
        self, status: int, bytes_out: int, code: Optional[str] = None
    ) -> None:
        """The per-response choke point: metrics + the access log."""
        app = self.server.app
        route = urlsplit(self.path).path
        started = getattr(self, "_started", None)
        elapsed = 0.0 if started is None else time.monotonic() - started
        app.observe_request(route, status, elapsed)
        fields: Dict[str, object] = {
            "trace_id": getattr(self, "_trace_id", None),
            "method": self.command,
            "route": route,
            "status": status,
            "latency_ms": round(elapsed * 1000, 3),
            "bytes": bytes_out,
            "client": self.address_string(),
        }
        if code is not None:
            fields["code"] = code
        if getattr(self, "_queue_wait", None) is not None:
            fields["queue_wait_ms"] = round(self._queue_wait * 1000, 3)
        if getattr(self, "_shards", None) is not None:
            fields["shards"] = self._shards
        log_event(access_logger, logging.INFO, "access", **fields)
        slow_ms = app.slow_query_ms
        if slow_ms is not None and elapsed * 1000 >= slow_ms:
            trace = getattr(self, "_trace", None)
            log_event(
                access_logger,
                logging.WARNING,
                "slow query",
                threshold_ms=slow_ms,
                spans=trace.spans if trace is not None else None,
                **fields,
            )

    def log_request(self, code="-", size="-") -> None:
        """Replaced by the structured access log in :meth:`_observe`."""

    def log_message(self, format: str, *args) -> None:
        # Stray http.server diagnostics (malformed request lines, broken
        # pipes) go through the structured logger, never raw stderr.
        log_event(
            logger,
            logging.WARNING,
            format % args,
            client=self.address_string(),
        )

    def _read_body(self) -> Dict[str, object]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise EnvelopeError("invalid Content-Length header") from None
        if length > MAX_BODY_BYTES:
            raise _BodyTooLarge(length)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise EnvelopeError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise EnvelopeError("request body must be a JSON object")
        return payload

    def _request_deadline(self) -> Optional[Deadline]:
        """The deadline governing this request, header over default."""
        raw = self.headers.get(DEADLINE_HEADER)
        if raw is not None:
            try:
                millis = float(raw)
            except ValueError:
                raise EnvelopeError(
                    f"invalid {DEADLINE_HEADER} header: {raw!r}"
                ) from None
            if millis <= 0:
                raise EnvelopeError(
                    f"{DEADLINE_HEADER} must be positive, got {raw!r}"
                )
            return Deadline.after(millis / 1000.0)
        default = self.server.app.default_deadline
        return None if default is None else Deadline.after(default)

    def _send_metrics(self, app: "ReproServer") -> None:
        """``GET /v1/metrics``: the Prometheus text exposition."""
        self._observe(200, 0)
        body = app.metrics.render().encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        if getattr(self, "_trace_id", None) is not None:
            self.send_header(TRACE_ID_HEADER, self._trace_id)
        self.end_headers()
        self.wfile.write(body)

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        app = self.server.app
        route = self._begin()
        try:
            if route == "/healthz":
                # Liveness only: the process is up and can answer.
                # Readiness (shard replica health) lives at /readyz so
                # a restart-the-process supervisor and a
                # drain-the-traffic balancer watch different signals.
                self._send_json(
                    200,
                    {
                        "status": "ok",
                        "collections": app.names(),
                        "default": app.default,
                    },
                )
            elif route == "/readyz":
                readiness = app.readiness()
                status = 200 if readiness["status"] in ("ok", "degraded") else 503
                self._send_json(status, readiness)
            elif route == "/v1/collections":
                self._send_json(
                    200,
                    {
                        "default": app.default,
                        "collections": {
                            name: db.describe()
                            for name, db in app.databases.items()
                        },
                    },
                )
            elif route == "/v1/stats":
                self._send_json(200, app.stats())
            elif route == "/v1/metrics":
                self._send_metrics(app)
            elif route == "/v1/documents":
                query = parse_qs(urlsplit(self.path).query)
                collection = (query.get("collection") or [None])[0]
                database = app.database_for(collection)
                self._send_json(200, {"documents": database.documents()})
            else:
                self._send_error_json(404, f"unknown route: {route}")
        except _UnknownCollection as exc:
            self._send_repro_error(404, exc)
        except ReproError as exc:
            self._send_repro_error(400, exc)
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(
                500, f"internal error: {exc}", code="internal"
            )

    def _handle_request(self, route_table: Dict[str, type]) -> None:
        """Admit → parse body → envelope → dispatch, errors to codes."""
        app = self.server.app
        route = self._begin()
        request_cls = route_table.get(route)
        if request_cls is None:
            self._send_error_json(
                404, f"unknown route: {route}", code="unknown_route"
            )
            return
        admitted = False
        started = time.monotonic()
        trace = self._trace
        try:
            deadline = self._request_deadline()
            # Admission happens before the body is read: a shed
            # request costs the server a queue check and one small
            # write, never parsing or planning work.
            waited = app.admission.admit(deadline)
            admitted = True
            self._queue_wait = waited
            if trace is not None:
                trace.add("admission.wait", waited * 1000)
            payload = self._read_body()
            kind = payload.get("kind")
            if kind is not None and kind != request_cls.kind:
                raise EnvelopeError(
                    f"request kind {kind!r} does not match route {route}"
                )
            request: Request = request_cls.from_dict(payload)
            database = app.database_for(request.collection)
            with deadline_scope(deadline), trace_scope(trace):
                # Cooperative check at dispatch entry: even an engine
                # with no other blocking points (a monolithic store)
                # must honor an already-spent budget with 504.
                if deadline is not None:
                    deadline.check("request dispatch")
                result = app.dispatch(database, request)
                if hasattr(result, "to_dict"):
                    if trace is not None:
                        with trace.span("serialize"):
                            body = result.to_dict()
                    else:
                        body = result.to_dict()
                else:
                    body = result
            if isinstance(body, dict):
                stats = body.get("stats")
                if isinstance(stats, dict):
                    shards = stats.get("shards")
                    if isinstance(shards, dict):
                        self._shards = shards.get("count")
                    if trace is not None:
                        stats["trace"] = trace.to_dict()
                elif trace is not None:
                    # Mutation receipts carry no stats dict; the trace
                    # rides at the top level instead.
                    body["trace"] = trace.to_dict()
            self._send_json(200, body)
        except _BodyTooLarge as exc:
            self._send_error_json(413, str(exc), code="body_too_large")
        except OverloadedError as exc:
            self._send_repro_error(503, exc, retry_after=exc.retry_after)
        except DeadlineExceededError as exc:
            app.deadline_exhaustions.inc()
            self._send_repro_error(504, exc)
        except DuplicateDocumentError as exc:
            self._send_repro_error(409, exc)
        except (_UnknownCollection, UnknownDocumentError) as exc:
            self._send_repro_error(404, exc)
        except ExecutorError as exc:
            # A dead worker (or a shard with no healthy replica) fails
            # this request cleanly; recovery — pool respawn, replica
            # failover — happens underneath for the next one.
            self._send_repro_error(503, exc, retry_after=1.0)
        except (EnvelopeError, ReproError, ValueError) as exc:
            if isinstance(exc, ReproError):
                self._send_repro_error(400, exc)
            else:
                self._send_error_json(400, str(exc), code="bad_request")
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(
                500, f"internal error: {exc}", code="internal"
            )
        finally:
            if admitted:
                app.admission.release(time.monotonic() - started)

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        self._handle_request(_POST_KINDS)

    def do_PUT(self) -> None:  # noqa: N802 - http.server contract
        self._handle_request(_PUT_KINDS)

    def do_DELETE(self) -> None:  # noqa: N802 - http.server contract
        self._handle_request(_DELETE_KINDS)


class _BodyTooLarge(Exception):
    def __init__(self, length: int):
        super().__init__(
            f"request body of {length} bytes exceeds the "
            f"{MAX_BODY_BYTES}-byte limit"
        )


class ReproServer:
    """Serve one or more databases over HTTP from the current process.

    ``databases`` maps collection names to opened
    :class:`~repro.api.database.Database` objects (a bare ``Database``
    is accepted and served as ``"default"``).  ``port=0`` binds an
    ephemeral port — read :attr:`port` after construction.
    """

    def __init__(
        self,
        databases: Union[Database, Mapping[str, Database]],
        *,
        default: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 8080,
        verbose: bool = False,
        close_databases: bool = False,
        max_concurrency: int = 8,
        max_queue: int = 16,
        queue_timeout: float = 2.0,
        default_deadline: Optional[float] = None,
        slow_query_ms: Optional[float] = None,
    ):
        if isinstance(databases, Database):
            databases = {"default": databases}
        if not databases:
            raise ReproError("ReproServer needs at least one database")
        self.databases: Dict[str, Database] = dict(databases)
        if default is None:
            default = next(iter(self.databases))
        if default not in self.databases:
            raise ReproError(
                f"default collection {default!r} is not among "
                f"{sorted(self.databases)}"
            )
        self.default = default
        self.verbose = verbose
        self.admission = AdmissionController(
            max_concurrency=max_concurrency,
            max_queue=max_queue,
            queue_timeout=queue_timeout,
        )
        #: Seconds granted to a request that states no deadline of its
        #: own (``None``: unbounded, the embedded-use default).
        self.default_deadline = default_deadline
        #: Requests slower than this (milliseconds) get a WARNING line
        #: in the access log, with their spans when traced.  ``None``
        #: disables the slow-query log.
        self.slow_query_ms = slow_query_ms
        self.metrics = MetricsRegistry()
        self._requests_total = self.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by route and status.",
            labels=("route", "status"),
        )
        self._request_latency = self.metrics.histogram(
            "repro_http_request_duration_seconds",
            "Wall-clock request latency, by route.",
            labels=("route",),
        )
        self.deadline_exhaustions = self.metrics.counter(
            "repro_deadline_exhaustions_total",
            "Requests that ran out of their deadline budget.",
        )
        self._close_databases = close_databases
        self._warmed = False
        self._serving = False
        self._thread: Optional[threading.Thread] = None
        for metric in self.admission.metric_objects():
            self.metrics.register(metric)
        # Component metrics are per-collection — constant `collection`
        # labels keep one family per name.  Databases may share a
        # result cache or an executor; each shared object is
        # registered once, under the first collection that owns it.
        seen: set = set()
        for name, database in self.databases.items():
            for metric in database.metrics():
                if id(metric) in seen:
                    continue
                seen.add(id(metric))
                self.metrics.register(metric, labels={"collection": name})
        self._httpd = _ReproHTTPServer((host, port), _Handler, self)

    # -- addressing -----------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def names(self) -> list:
        return sorted(self.databases)

    # -- serving --------------------------------------------------------
    def warm_up(self) -> None:
        """Build every derived index before the first request lands."""
        if self._warmed:
            return
        for database in self.databases.values():
            database.warm_up()
        self._warmed = True

    def serve_forever(self) -> None:
        """Warm up, then block serving until :meth:`shutdown`."""
        self.warm_up()
        self._serving = True
        try:
            self._httpd.serve_forever()
        finally:
            self._serving = False

    def start(self) -> "ReproServer":
        """Warm up and serve from a daemon thread (tests, embedding)."""
        self.warm_up()
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def shutdown(self) -> bool:
        """Stop serving and release the port; never hangs.

        ``BaseServer.shutdown()`` blocks on an event that only the
        serve loop sets — calling it when the loop never ran (a Ctrl-C
        before startup completes, an exception out of warm-up) would
        deadlock.  The guard skips it entirely in that state, and the
        bounded waits cover the window where the loop is still
        starting.

        Returns ``True`` on a clean stop.  A thread surviving its
        bounded join (a handler wedged past the 5 s grace) is **not**
        silent: it is logged as a warning and reported as ``False`` so
        operators and tests can tell a clean shutdown from an
        abandoned thread.
        """
        clean = True
        if self._serving:
            stopper = threading.Thread(
                target=self._httpd.shutdown, daemon=True
            )
            stopper.start()
            stopper.join(timeout=5)
            if stopper.is_alive():
                clean = False
                logger.warning(
                    "server shutdown did not complete within 5s; "
                    "the serve loop is being abandoned (daemon thread)"
                )
            self._serving = False
        if self._thread is not None:
            self._thread.join(timeout=5)
            if self._thread.is_alive():
                clean = False
                logger.warning(
                    "serve thread %r did not exit within 5s after "
                    "shutdown; abandoning it (daemon thread)",
                    self._thread.name,
                )
            self._thread = None
        self._httpd.server_close()
        if self._close_databases:
            for database in self.databases.values():
                database.close()
        return clean

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- request handling ------------------------------------------------
    def observe_request(
        self, route: str, status: int, elapsed_seconds: float
    ) -> None:
        """Fold one finished response into the request metrics."""
        self._requests_total.labels(route=route, status=status).inc()
        self._request_latency.labels(route=route).observe(elapsed_seconds)

    def database_for(self, collection: Optional[str]) -> Database:
        if collection is None:
            return self.databases[self.default]
        try:
            return self.databases[collection]
        except KeyError:
            raise _UnknownCollection(
                f"unknown collection {collection!r}: "
                f"choose from {self.names()}"
            ) from None

    def dispatch(self, database: Database, request: Request):
        if isinstance(request, SearchRequest):
            return database.search(request)
        if isinstance(request, NearestRequest):
            return database.nearest(request)
        if isinstance(request, QueryRequest):
            return database.query(request)
        if isinstance(request, PrepareRequest):
            return database.prepare(request)
        if isinstance(request, ExecuteRequest):
            return database.execute(request)
        if isinstance(request, PutDocumentRequest):
            if request.replace:
                return database.replace(request.name, request.xml)
            return database.put(request.name, request.xml)
        if isinstance(request, DeleteDocumentRequest):
            return database.delete(request.name)
        if isinstance(request, CompactRequest):
            return database.compact()
        raise EnvelopeError(
            f"unsupported request type {type(request).__name__}"
        )  # pragma: no cover - the route table prevents this

    def readiness(self) -> Dict[str, object]:
        """Aggregate readiness: the worst collection wins.

        ``ok`` — every shard of every collection has replica headroom;
        ``degraded`` — some shard is on its *last* healthy replica
        (still serving, but the next failure loses availability);
        ``unavailable`` — some shard has no healthy replica at all.
        """
        rank = {"ok": 0, "degraded": 1, "unavailable": 2}
        worst = "ok"
        collections = {}
        for name, database in self.databases.items():
            health = database.health()
            collections[name] = health
            if rank.get(health["status"], 2) > rank[worst]:
                worst = health["status"]
        return {
            "status": worst,
            "collections": collections,
            "admission": self.admission.snapshot(),
        }

    def stats(self) -> Dict[str, object]:
        from ..core.lca_index import lca_index_cache_info
        from ..fulltext.index import fulltext_index_cache_info
        from ..valueindex import value_index_cache_info

        # Process-*tree* counters: the serving process plus every
        # worker-pool process of every sharded collection (workers
        # report their process-local counters with each response; the
        # executors fold them in).  Without the merge a pooled setup
        # would silently undercount — any build after warm-up means a
        # request paid for an index, the zero-rebuild invariant the
        # tests assert, and it must hold across the whole tree.
        lca_builds = lca_index_cache_info().builds
        fulltext_builds = fulltext_index_cache_info().builds
        valueindex_builds = value_index_cache_info().builds
        seen_executors = set()
        workers = 0
        for database in self.databases.values():
            if database.sharded is None:
                continue
            executor = database.sharded.executor
            if id(executor) in seen_executors:
                continue
            seen_executors.add(id(executor))
            executor_stats = executor.stats()
            workers += executor_stats.get("workers", 0)
            merged = executor_stats.get("index_builds") or {}
            lca_builds += merged.get("lca", 0)
            fulltext_builds += merged.get("fulltext", 0)
            valueindex_builds += merged.get("valueindex", 0)
        return {
            "default": self.default,
            "collections": {
                name: db.stats() for name, db in self.databases.items()
            },
            "workers": workers,
            "index_builds": {
                "lca": lca_builds,
                "fulltext": fulltext_builds,
                "valueindex": valueindex_builds,
            },
            "admission": self.admission.snapshot(),
            "metrics": self.metrics.snapshot(),
        }
