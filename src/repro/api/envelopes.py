"""Typed request/response envelopes with a stable JSON codec.

The facade and the HTTP service speak one vocabulary:

* :class:`SearchRequest` — raw full-text hits for one term;
* :class:`NearestRequest` — the paper's nearest-concept query (two or
  more terms, §4 restriction knobs, ranked answers);
* :class:`QueryRequest` — the select/from/where language of §3.2;
* :class:`ResultEnvelope` — the uniform response: answers with their
  ranking keys, the query table (via
  :meth:`~repro.query.executor.QueryResult.to_dict` — the same
  representation ``render_answer`` consumes), execution timing, and
  cache/backend statistics.

Every type round-trips losslessly through ``to_dict()`` /
``from_dict()``: the dict form is pure JSON (lists, dicts, strings,
numbers, booleans, null), and ``from_dict(x.to_dict()).to_dict() ==
x.to_dict()`` holds structurally — that invariant is what lets the
HTTP client and server, the CLI, and offline tooling exchange results
without private parsing.  Malformed payloads raise
:class:`EnvelopeError` (a :class:`~repro.datamodel.errors.ReproError`,
so the CLI and server map it to their standard error paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, Optional, Tuple, Union

from ..datamodel.errors import ReproError

__all__ = [
    "ENVELOPE_FORMAT",
    "ENVELOPE_VERSION",
    "CompactRequest",
    "DeleteDocumentRequest",
    "EnvelopeError",
    "ExecuteRequest",
    "NearestRequest",
    "PrepareRequest",
    "PutDocumentRequest",
    "QueryRequest",
    "Request",
    "ResultEnvelope",
    "SearchRequest",
    "request_from_dict",
]

ENVELOPE_FORMAT = "repro-result-envelope"
ENVELOPE_VERSION = 1


class EnvelopeError(ReproError):
    """A request or envelope payload that does not follow the codec."""


def _require(payload: Dict[str, object], kind: str) -> Dict[str, object]:
    if not isinstance(payload, dict):
        raise EnvelopeError(f"{kind} payload must be a JSON object")
    return payload


def _opt_int(payload: Dict[str, object], key: str, kind: str) -> Optional[int]:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool):
        raise EnvelopeError(f"{kind} field {key!r} must be an integer")
    return value


def _opt_str(payload: Dict[str, object], key: str, kind: str) -> Optional[str]:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, str):
        raise EnvelopeError(f"{kind} field {key!r} must be a string")
    return value


def _flag(payload: Dict[str, object], key: str, kind: str) -> bool:
    value = payload.get(key, False)
    if not isinstance(value, bool):
        raise EnvelopeError(f"{kind} field {key!r} must be a boolean")
    return value


def _opt_params(
    payload: Dict[str, object], key: str, kind: str
) -> Optional[Dict[str, str]]:
    """A parameter-binding map: names to JSON scalars, coerced to str.

    Bindings substitute for query literals, which are strings, so
    numbers are accepted on the wire but normalized here — one code
    path downstream, and cache keys see one spelling per value.
    """
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, dict) or not all(
        isinstance(name, str)
        and isinstance(bound, (str, int, float))
        and not isinstance(bound, bool)
        for name, bound in value.items()
    ):
        raise EnvelopeError(
            f"{kind} field {key!r} must map parameter names to "
            "string or number values"
        )
    return {name: str(bound) for name, bound in value.items()}


def _reject_unknown(
    payload: Dict[str, object], known: Tuple[str, ...], kind: str
) -> None:
    unknown = sorted(set(payload) - set(known) - {"kind"})
    if unknown:
        raise EnvelopeError(f"unknown {kind} field(s): {', '.join(unknown)}")


@dataclass(frozen=True, slots=True)
class SearchRequest:
    """Raw full-text hits of one term (token or substring semantics)."""

    kind: ClassVar[str] = "search"

    term: str
    limit: Optional[int] = None
    collection: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "term": self.term,
            "limit": self.limit,
            "collection": self.collection,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SearchRequest":
        payload = _require(payload, cls.kind)
        _reject_unknown(payload, ("term", "limit", "collection"), cls.kind)
        term = payload.get("term")
        if not isinstance(term, str) or not term:
            raise EnvelopeError("search request needs a non-empty 'term' string")
        return cls(
            term=term,
            limit=_opt_int(payload, "limit", cls.kind),
            collection=_opt_str(payload, "collection", cls.kind),
        )


@dataclass(frozen=True, slots=True)
class NearestRequest:
    """A nearest-concept query: the paper's headline, as one value."""

    kind: ClassVar[str] = "nearest"

    terms: Tuple[str, ...]
    exclude_root: bool = False
    require_all_terms: bool = False
    within: Optional[int] = None
    limit: Optional[int] = 10
    snippets: bool = False
    collection: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(self.terms))

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "terms": list(self.terms),
            "exclude_root": self.exclude_root,
            "require_all_terms": self.require_all_terms,
            "within": self.within,
            "limit": self.limit,
            "snippets": self.snippets,
            "collection": self.collection,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "NearestRequest":
        payload = _require(payload, cls.kind)
        _reject_unknown(
            payload,
            (
                "terms",
                "exclude_root",
                "require_all_terms",
                "within",
                "limit",
                "snippets",
                "collection",
            ),
            cls.kind,
        )
        terms = payload.get("terms")
        if (
            not isinstance(terms, (list, tuple))
            or not terms
            or not all(isinstance(term, str) and term for term in terms)
        ):
            raise EnvelopeError(
                "nearest request needs 'terms': a non-empty list of strings"
            )
        return cls(
            terms=tuple(terms),
            exclude_root=_flag(payload, "exclude_root", cls.kind),
            require_all_terms=_flag(payload, "require_all_terms", cls.kind),
            within=_opt_int(payload, "within", cls.kind),
            limit=_opt_int(payload, "limit", cls.kind),
            snippets=_flag(payload, "snippets", cls.kind),
            collection=_opt_str(payload, "collection", cls.kind),
        )


@dataclass(frozen=True, slots=True)
class QueryRequest:
    """One select/from/where query string (optionally explain/render).

    ``params`` binds any ``$name`` placeholders in ``text`` for this
    execution — the ad-hoc sibling of the prepare/execute pair.
    """

    kind: ClassVar[str] = "query"

    text: str
    explain: bool = False
    render: bool = False
    params: Optional[Dict[str, str]] = None
    collection: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "text": self.text,
            "explain": self.explain,
            "render": self.render,
            "params": None if self.params is None else dict(self.params),
            "collection": self.collection,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "QueryRequest":
        payload = _require(payload, cls.kind)
        _reject_unknown(
            payload,
            ("text", "explain", "render", "params", "collection"),
            cls.kind,
        )
        text = payload.get("text")
        if not isinstance(text, str) or not text.strip():
            raise EnvelopeError("query request needs a non-empty 'text' string")
        return cls(
            text=text,
            explain=_flag(payload, "explain", cls.kind),
            render=_flag(payload, "render", cls.kind),
            params=_opt_params(payload, "params", cls.kind),
            collection=_opt_str(payload, "collection", cls.kind),
        )


@dataclass(frozen=True, slots=True)
class PrepareRequest:
    """Parse and plan one parameterized query, returning a handle."""

    kind: ClassVar[str] = "prepare"

    text: str
    collection: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "text": self.text,
            "collection": self.collection,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PrepareRequest":
        payload = _require(payload, cls.kind)
        _reject_unknown(payload, ("text", "collection"), cls.kind)
        text = payload.get("text")
        if not isinstance(text, str) or not text.strip():
            raise EnvelopeError("prepare request needs a non-empty 'text' string")
        return cls(
            text=text,
            collection=_opt_str(payload, "collection", cls.kind),
        )


@dataclass(frozen=True, slots=True)
class ExecuteRequest:
    """Run a prepared statement, binding its parameters for this call."""

    kind: ClassVar[str] = "execute"

    handle: str
    params: Optional[Dict[str, str]] = None
    render: bool = False
    collection: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "handle": self.handle,
            "params": None if self.params is None else dict(self.params),
            "render": self.render,
            "collection": self.collection,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExecuteRequest":
        payload = _require(payload, cls.kind)
        _reject_unknown(
            payload, ("handle", "params", "render", "collection"), cls.kind
        )
        handle = payload.get("handle")
        if not isinstance(handle, str) or not handle:
            raise EnvelopeError(
                "execute request needs a non-empty 'handle' string"
            )
        return cls(
            handle=handle,
            params=_opt_params(payload, "params", cls.kind),
            render=_flag(payload, "render", cls.kind),
            collection=_opt_str(payload, "collection", cls.kind),
        )


@dataclass(frozen=True, slots=True)
class PutDocumentRequest:
    """Add (or, with ``replace``, upsert) one named document."""

    kind: ClassVar[str] = "put_document"

    name: str
    xml: str
    replace: bool = False
    collection: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "name": self.name,
            "xml": self.xml,
            "replace": self.replace,
            "collection": self.collection,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "PutDocumentRequest":
        payload = _require(payload, cls.kind)
        _reject_unknown(
            payload, ("name", "xml", "replace", "collection"), cls.kind
        )
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise EnvelopeError(
                "put_document request needs a non-empty 'name' string"
            )
        xml = payload.get("xml")
        if not isinstance(xml, str) or not xml.strip():
            raise EnvelopeError(
                "put_document request needs a non-empty 'xml' string"
            )
        return cls(
            name=name,
            xml=xml,
            replace=_flag(payload, "replace", cls.kind),
            collection=_opt_str(payload, "collection", cls.kind),
        )


@dataclass(frozen=True, slots=True)
class DeleteDocumentRequest:
    """Remove one named document (its OID range is tombstoned)."""

    kind: ClassVar[str] = "delete_document"

    name: str
    collection: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "name": self.name,
            "collection": self.collection,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "DeleteDocumentRequest":
        payload = _require(payload, cls.kind)
        _reject_unknown(payload, ("name", "collection"), cls.kind)
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise EnvelopeError(
                "delete_document request needs a non-empty 'name' string"
            )
        return cls(
            name=name,
            collection=_opt_str(payload, "collection", cls.kind),
        )


@dataclass(frozen=True, slots=True)
class CompactRequest:
    """Fold tombstones and the delta tail into a dense base."""

    kind: ClassVar[str] = "compact"

    collection: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "collection": self.collection}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CompactRequest":
        payload = _require(payload, cls.kind)
        _reject_unknown(payload, ("collection",), cls.kind)
        return cls(collection=_opt_str(payload, "collection", cls.kind))


Request = Union[
    SearchRequest,
    NearestRequest,
    QueryRequest,
    PrepareRequest,
    ExecuteRequest,
    PutDocumentRequest,
    DeleteDocumentRequest,
    CompactRequest,
]

_REQUEST_KINDS: Dict[str, type] = {
    SearchRequest.kind: SearchRequest,
    NearestRequest.kind: NearestRequest,
    QueryRequest.kind: QueryRequest,
    PrepareRequest.kind: PrepareRequest,
    ExecuteRequest.kind: ExecuteRequest,
    PutDocumentRequest.kind: PutDocumentRequest,
    DeleteDocumentRequest.kind: DeleteDocumentRequest,
    CompactRequest.kind: CompactRequest,
}


def request_from_dict(payload: Dict[str, object]) -> Request:
    """Rebuild any request from its dict form, dispatching on 'kind'."""
    payload = _require(payload, "request")
    kind = payload.get("kind")
    if kind not in _REQUEST_KINDS:
        raise EnvelopeError(
            f"unknown request kind {kind!r}: "
            f"choose from {sorted(_REQUEST_KINDS)}"
        )
    return _REQUEST_KINDS[kind].from_dict(payload)


@dataclass(frozen=True, slots=True)
class ResultEnvelope:
    """The uniform response: answers, ranking keys, timings, stats.

    ``answers`` is the ranked list (nearest: one dict per concept with
    its full §4 ranking key; search: one dict per hit).  ``columns`` /
    ``rows`` carry the query table for ``kind == "query"`` (the
    :meth:`QueryResult.to_dict` representation), with ``rendered``
    optionally holding the paper's ``<answer>`` block when the request
    asked for it.  ``stats`` reports origin, backend, case mode, store
    generation and result-cache counters; when the caller opted into
    tracing (the ``X-Repro-Trace`` header over HTTP, ``--trace`` on
    the CLI), ``stats["trace"]`` carries the request's spans —
    ``{"trace_id", "spans": [{"name", "ms", ...}], "span_count"}`` —
    including spans produced inside remote shard-worker processes
    (those carry a ``pid`` attribute).
    """

    kind: str
    request: Dict[str, object]
    answers: Tuple[Dict[str, object], ...] = ()
    columns: Optional[Tuple[str, ...]] = None
    rows: Optional[Tuple[Tuple[object, ...], ...]] = None
    rendered: Optional[str] = None
    count: int = 0
    elapsed_ms: float = 0.0
    stats: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "answers", tuple(self.answers))
        if self.columns is not None:
            object.__setattr__(self, "columns", tuple(self.columns))
        if self.rows is not None:
            object.__setattr__(
                self, "rows", tuple(tuple(row) for row in self.rows)
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": ENVELOPE_FORMAT,
            "version": ENVELOPE_VERSION,
            "kind": self.kind,
            "request": dict(self.request),
            "answers": [dict(answer) for answer in self.answers],
            "columns": None if self.columns is None else list(self.columns),
            "rows": None
            if self.rows is None
            else [list(row) for row in self.rows],
            "rendered": self.rendered,
            "count": self.count,
            "elapsed_ms": self.elapsed_ms,
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ResultEnvelope":
        payload = _require(payload, "envelope")
        if payload.get("format") != ENVELOPE_FORMAT:
            raise EnvelopeError(
                f"not a result envelope: format={payload.get('format')!r}"
            )
        if payload.get("version") != ENVELOPE_VERSION:
            raise EnvelopeError(
                f"unsupported envelope version {payload.get('version')!r}"
            )
        kind = payload.get("kind")
        if kind not in _REQUEST_KINDS:
            raise EnvelopeError(f"unknown envelope kind {kind!r}")
        request = payload.get("request")
        if not isinstance(request, dict):
            raise EnvelopeError("envelope field 'request' must be an object")
        answers = payload.get("answers")
        if not isinstance(answers, list) or not all(
            isinstance(answer, dict) for answer in answers
        ):
            raise EnvelopeError("envelope field 'answers' must be a list of objects")
        columns = payload.get("columns")
        if columns is not None and not isinstance(columns, list):
            raise EnvelopeError("envelope field 'columns' must be a list or null")
        rows = payload.get("rows")
        if rows is not None and (
            not isinstance(rows, list)
            or not all(isinstance(row, list) for row in rows)
        ):
            raise EnvelopeError("envelope field 'rows' must be a list of lists")
        count = payload.get("count")
        if not isinstance(count, int) or isinstance(count, bool):
            raise EnvelopeError("envelope field 'count' must be an integer")
        elapsed_ms = payload.get("elapsed_ms")
        if not isinstance(elapsed_ms, (int, float)) or isinstance(
            elapsed_ms, bool
        ):
            raise EnvelopeError("envelope field 'elapsed_ms' must be a number")
        stats = payload.get("stats")
        if not isinstance(stats, dict):
            raise EnvelopeError("envelope field 'stats' must be an object")
        return cls(
            kind=kind,
            request=request,
            answers=tuple(answers),
            columns=None if columns is None else tuple(columns),
            rows=None if rows is None else tuple(tuple(row) for row in rows),
            rendered=_opt_str(payload, "rendered", "envelope"),
            count=count,
            elapsed_ms=elapsed_ms,
            stats=stats,
        )
