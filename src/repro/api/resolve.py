"""Source resolution: one name in, one ready store out.

This is the front door's dispatcher, promoted from the CLI (where it
lived as ``cli._load_store``) so every caller — CLI, HTTP service,
library users — shares one set of rules for turning *whatever the
user names* into a loaded :class:`~repro.monet.engine.MonetXML` store:

* a ``.snap`` path → binary snapshot bundle, indexes pre-seeded;
* a ``.json`` path → legacy persisted Monet image;
* any other existing file → XML, parsed and Monet-transformed —
  *unless* the catalog holds a fresh snapshot built from that very
  file (same resolved path, identical (size, mtime) fingerprint, same
  case mode), which is then preferred over re-parsing;
* a non-file name that matches a catalog collection → that
  collection's bundle (the facade's spelling of ``--snapshot NAME``);
* an explicit ``snapshot=`` argument → a bundle file or catalog
  collection, never a parse.

Every resolution reports its ``origin`` — ``parse``, ``json image``,
``snapshot <file>`` or ``snapshot <catalog>:<name>`` — so cold starts
stay observable end-to-end (the CLI's ``--stats``, the server's
``/v1/stats``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path as FsPath
from typing import Optional, Tuple, Union

from ..datamodel.errors import ReproError, StorageError
from ..datamodel.parser import parse_document
from ..monet import storage
from ..monet.engine import MonetXML
from ..monet.transform import monet_transform
from ..snapshot import Catalog, read_snapshot
from ..snapshot.codec import Snapshot

__all__ = [
    "DEFAULT_CATALOG",
    "ResolvedSource",
    "ShardedBundles",
    "default_catalog_dir",
    "resolve_source",
]

#: Fallback catalog directory (also via the REPRO_CATALOG env var).
DEFAULT_CATALOG = ".repro-catalog"

SourceLike = Union[str, FsPath]


def default_catalog_dir(explicit: Optional[SourceLike] = None) -> FsPath:
    """The catalog directory: explicit > $REPRO_CATALOG > default."""
    if explicit:
        return FsPath(explicit)
    return FsPath(os.environ.get("REPRO_CATALOG", DEFAULT_CATALOG))


@dataclass(frozen=True)
class ShardedBundles:
    """A resolved *sharded* collection: bundle paths plus the layout.

    The stores stay on disk — whoever opens the database decides
    whether to load them serially in-process or hand the paths to a
    worker pool.
    """

    paths: Tuple[str, ...]
    layout: Dict[str, object]
    case_sensitive: bool
    generation: int


@dataclass(frozen=True)
class ResolvedSource:
    """One resolved source: the store, how it loaded, and the bundle."""

    store: Optional[MonetXML]
    origin: str
    snapshot: Optional[Snapshot] = None
    sharded: Optional[ShardedBundles] = None

    @property
    def from_snapshot(self) -> bool:
        return self.snapshot is not None


def _load_bundle(path: FsPath, use_mmap: bool) -> ResolvedSource:
    # Tolerate a torn delta tail: an append interrupted mid-crash was
    # never acknowledged, and dropping it is the only way the bundle
    # opens at all.  A truncated *base* section still fails loudly —
    # the codec requires every base section to be present.
    snapshot = read_snapshot(path, use_mmap=use_mmap, tolerate_torn_tail=True)
    return ResolvedSource(snapshot.store, f"snapshot {path}", snapshot)


def _open_collection(catalog: Catalog, name: str, use_mmap: bool) -> ResolvedSource:
    meta = catalog.info(name)
    shards = meta.get("shards")
    if isinstance(shards, dict):
        try:
            generation = int(meta.get("generation", 0))
        except (TypeError, ValueError):
            generation = 0
        return ResolvedSource(
            store=None,
            origin=(
                f"snapshot {catalog.root}:{name} "
                f"({shards.get('count')} shards)"
            ),
            sharded=ShardedBundles(
                paths=tuple(str(p) for p in catalog.shard_files(name)),
                layout=dict(shards),
                case_sensitive=bool(meta.get("case_sensitive")),
                generation=generation,
            ),
        )
    snapshot = catalog.open(name, use_mmap=use_mmap, tolerate_torn_tail=True)
    return ResolvedSource(
        snapshot.store, f"snapshot {catalog.root}:{name}", snapshot
    )


def _resolve_explicit_snapshot(
    explicit: SourceLike, catalog_root: FsPath, use_mmap: bool
) -> ResolvedSource:
    """The ``snapshot=`` argument: a bundle file or a collection name.

    A catalog collection of that name wins over a same-named stray
    file or directory in the working directory.  A corrupt manifest
    must not block loading a file the user named; its error surfaces
    only when the file fallback cannot apply.
    """
    candidate = FsPath(explicit)
    catalog: Optional[Catalog] = None
    catalog_error: Optional[StorageError] = None
    has_collection = False
    if (catalog_root / "catalog.json").exists():
        try:
            catalog = Catalog(catalog_root, create=False)
            has_collection = str(explicit) in catalog
        except StorageError as exc:
            catalog, catalog_error = None, exc
    if candidate.suffix == ".snap" or (
        candidate.is_file() and not has_collection
    ):
        return _load_bundle(candidate, use_mmap)
    if catalog_error is not None:
        raise catalog_error
    if catalog is None:
        # Raises the precise "no such catalog directory" error.
        catalog = Catalog(catalog_root, create=False)
    return _open_collection(catalog, str(explicit), use_mmap)


def _probe_catalog(
    source: FsPath,
    catalog_root: FsPath,
    case_sensitive: Optional[bool],
    use_mmap: bool,
) -> Optional[ResolvedSource]:
    """Best-effort fresh-hit probe for a file the caller named.

    The user asked for the file itself, so a corrupt or foreign
    catalog must not break the parse path — and a bundle whose case
    mode differs from what this caller will search with must not
    silently change its answers.
    """
    if not (catalog_root / "catalog.json").exists():
        return None
    requested_case = bool(case_sensitive)
    try:
        catalog = Catalog(catalog_root, create=False)
        name = catalog.find_source(source)
        if name is not None and (
            bool(catalog.info(name).get("case_sensitive")) == requested_case
        ):
            return _open_collection(catalog, name, use_mmap)
    except StorageError:
        pass
    return None


def resolve_source(
    source: Optional[SourceLike] = None,
    *,
    snapshot: Optional[SourceLike] = None,
    catalog: Optional[SourceLike] = None,
    case_sensitive: Optional[bool] = None,
    use_mmap: bool = False,
) -> ResolvedSource:
    """Resolve a user-named source to a loaded store (see module doc).

    ``case_sensitive`` is the case mode the caller intends to search
    with; the catalog fresh-hit probe only substitutes a bundle whose
    recorded case mode matches, so resolution never changes answers.
    """
    catalog_root = default_catalog_dir(catalog)
    if snapshot is not None:
        return _resolve_explicit_snapshot(snapshot, catalog_root, use_mmap)
    if source is None:
        raise ReproError("no source given: pass a file, collection or snapshot=")
    path = FsPath(source)
    if not path.exists():
        # The facade's bare-name spelling of a catalog collection.
        if (catalog_root / "catalog.json").exists():
            try:
                collection_catalog = Catalog(catalog_root, create=False)
                if str(source) in collection_catalog:
                    return _open_collection(
                        collection_catalog, str(source), use_mmap
                    )
            except StorageError:
                pass
        raise ReproError(f"no such file: {source}")
    if path.suffix == ".snap":
        return _load_bundle(path, use_mmap)
    # The catalog probe runs before the .json branch: bundles built
    # from JSON images are warm starts too.
    hit = _probe_catalog(path, catalog_root, case_sensitive, use_mmap)
    if hit is not None:
        return hit
    if path.suffix == ".json":
        return ResolvedSource(storage.load(path), "json image")
    text = path.read_text(encoding="utf-8")
    return ResolvedSource(
        monet_transform(parse_document(text, first_oid=1)), "parse"
    )
