"""Delta sections: the write-ahead tail of a live snapshot bundle.

A mutation against a snapshot-backed collection must not rewrite the
whole bundle — that would turn every ``put`` into an O(store) stall.
Instead each acknowledged mutation appends one ``delta/NNNNNNNN``
section to the existing ``.snap`` container: the original operation
(kind, document name, XML payload) as JSON, CRC-framed exactly like
every base section.  Opening the bundle loads the base store and
replays the delta tail in sequence order through
:mod:`repro.monet.mutate` — puts re-append at the same OID tail they
first landed on, so replay reproduces the mutated collection exactly.
Compaction (:meth:`repro.snapshot.catalog.Catalog.compact`) folds the
tail back into a fresh dense base bundle.

Torn tails: an append interrupted mid-write leaves trailing bytes that
fail framing or checksum at end-of-file.  Write-capable openers pass
``tolerate_torn_tail=True`` so the torn section is dropped — that
mutation was never acknowledged — and the next append truncates the
garbage away before framing its own section.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path as FsPath
from typing import List, Optional, Union

from ..datamodel.errors import StorageError
from ..monet.engine import MonetXML
from .format import SnapshotReader, append_section

__all__ = [
    "DELTA_PREFIX",
    "DeltaOp",
    "append_delta",
    "apply_delta_ops",
    "delta_section_name",
    "next_delta_sequence",
    "read_delta_ops",
]

#: Section-name prefix of every delta; the base codec ignores them.
DELTA_PREFIX = "delta/"

_DELTA_RE = re.compile(r"^delta/(\d{8,})$")
_KINDS = ("put", "delete", "replace")


@dataclass(frozen=True)
class DeltaOp:
    """One durable mutation: the operation as the caller issued it.

    Deltas persist operations, not column diffs — replay goes through
    the same :mod:`repro.monet.mutate` code path as the original call,
    so the on-disk format stays independent of the store layout.
    ``xml`` is the document payload for ``put``/``replace`` and
    ``None`` for ``delete``.
    """

    op: str
    name: str
    xml: Optional[str] = None

    def to_payload(self) -> bytes:
        if self.op not in _KINDS:
            raise StorageError(f"unknown delta operation {self.op!r}")
        if (self.xml is None) != (self.op == "delete"):
            raise StorageError(
                f"delta operation {self.op!r} on {self.name!r} has "
                f"{'no' if self.xml is None else 'an'} XML payload"
            )
        body = {"op": self.op, "name": self.name}
        if self.xml is not None:
            body["xml"] = self.xml
        return json.dumps(body, sort_keys=True).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes, section: str, source: str) -> "DeltaOp":
        try:
            body = json.loads(bytes(payload).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StorageError(
                f"corrupt delta section {section!r} in {source}: {exc}"
            ) from exc
        if (
            not isinstance(body, dict)
            or body.get("op") not in _KINDS
            or not isinstance(body.get("name"), str)
        ):
            raise StorageError(
                f"malformed delta section {section!r} in {source}"
            )
        xml = body.get("xml")
        if (xml is None) != (body["op"] == "delete") or not isinstance(
            xml, (str, type(None))
        ):
            raise StorageError(
                f"malformed delta section {section!r} in {source}: "
                f"operation {body['op']!r} with xml={type(xml).__name__}"
            )
        return cls(op=body["op"], name=body["name"], xml=xml)


def delta_section_name(sequence: int) -> str:
    return f"{DELTA_PREFIX}{sequence:08d}"


def _delta_sections(reader: SnapshotReader) -> List[tuple]:
    """(sequence, section name) pairs in replay (sequence) order."""
    found = []
    for name in reader.section_names():
        match = _DELTA_RE.match(name)
        if match:
            found.append((int(match.group(1)), name))
        elif name.startswith(DELTA_PREFIX):
            raise StorageError(f"malformed delta section name {name!r}")
    found.sort()
    return found


def next_delta_sequence(reader: SnapshotReader) -> int:
    sections = _delta_sections(reader)
    return sections[-1][0] + 1 if sections else 1


def read_delta_ops(reader: SnapshotReader) -> List[DeltaOp]:
    """The bundle's delta tail, decoded, in replay order."""
    source = getattr(reader, "_source", "<bytes>")
    return [
        DeltaOp.from_payload(reader.raw(name), name, source)
        for _, name in _delta_sections(reader)
    ]


def append_delta(
    path: Union[str, FsPath],
    op: DeltaOp,
    *,
    reader: Optional[SnapshotReader] = None,
) -> str:
    """Durably append one mutation to the bundle; returns its section name.

    Re-reads the bundle (tolerantly) to find the next sequence number
    and the clean tail offset unless the caller passes a fresh
    ``reader`` — a torn tail from a previous interrupted append is
    truncated away before the new section is framed.
    """
    if reader is None:
        reader = SnapshotReader.open(path, tolerate_torn_tail=True)
    name = delta_section_name(next_delta_sequence(reader))
    append_section(
        path,
        name,
        op.to_payload(),
        truncate_to=reader.valid_size if reader.torn_tail else None,
    )
    return name


def apply_delta_ops(store: MonetXML, ops: List[DeltaOp]) -> int:
    """Replay decoded deltas over the freshly loaded base store."""
    from ..monet.mutate import delete_document, put_document, replace_document

    for op in ops:
        if op.op == "put":
            put_document(store, op.name, op.xml)
        elif op.op == "delete":
            delete_document(store, op.name)
        else:
            replace_document(store, op.name, op.xml)
    return len(ops)
